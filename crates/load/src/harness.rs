//! Run a replicated-log workload against the rendezvous star fabric.
//!
//! The harness glues the pieces together: materialize an open-loop
//! [`ArrivalSchedule`], fold it into writer [`Batch`]es, stand up a star
//! fabric (writer front-ends + log-head holders behind the object-routed
//! switch), install an optional fault [`Blip`], drive every batch through
//! `Sim::schedule_batch` (open loop: issue times come from the schedule,
//! never from completions), and distill the outcome into SLO series, a
//! `load.*` counter tally, and a canonical fingerprint the chaos soak can
//! compare across shard counts.

use crate::arrivals::{ArrivalSchedule, OpenLoopSpec};
use crate::replog::{batches, ReplogSpec};
use crate::slo::SloSeries;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rdv_core::scenarios::{build_star_fabric_sharded, host_link_rack};
use rdv_discovery::hier::plan_gossip_peers;
use rdv_discovery::{DiscoveryMode, HostConfig, HostNode};
use rdv_gossip::GossipConfig;
use rdv_metrics::MetricSet;
use rdv_netsim::{Counters, FaultPlan, LinkSpec, Node, NodeId, SimTime};
use rdv_objspace::{ObjId, ObjectKind};
use rdv_trace::{EventId, SampleSpec, Tracer};

/// Gossip neighbourhood size for the background plane: hosts are grouped
/// into rack-sized regions of this many and peered via
/// [`plan_gossip_peers`] (in-region ring + head chain), so every host has
/// O(1) peers regardless of fabric size.
const GOSSIP_REGION: usize = 64;

/// Trace-ring capacity for sampled runs. Sampling keeps the recorded
/// stream far below this; the ring only allocates what it records.
const TRACE_CAPACITY: usize = 1 << 20;

/// Per-ring capacity when the crash flight recorder is armed: enough
/// recent history for a postmortem's ancestry walk, bounded so the rings
/// stay cheap on 100 k-host fabrics.
const FLIGHT_CAPACITY: usize = 4096;

/// Fabric shape and service parameters for a load run.
#[derive(Debug, Clone, Copy)]
pub struct LoadFabricSpec {
    /// Log-head holder hosts behind the switch (heads spread modulo).
    pub holders: usize,
    /// Engine shard count (0 inherits the process default).
    pub shards: usize,
    /// Random loss on every host link, permille.
    pub link_loss_permille: u16,
    /// Fixed service delay at each holder.
    pub serve_delay: SimTime,
    /// Writer-side access watchdog window.
    pub access_timeout: SimTime,
    /// Watchdog re-sends before an access surfaces a typed failure.
    pub max_access_retries: u32,
    /// SLO window length for the derived series.
    pub slo_interval: SimTime,
    /// Arm the engine's shard-ownership race detector for the run (see
    /// `rdv_netsim::Sim::enable_shard_audit`). The detector reads state
    /// only, so fingerprints are identical either way; soak suites turn
    /// it on, figure generation leaves it off.
    pub shard_audit: bool,
    /// Passive hosts attached behind the switch after the holders. They
    /// hold no log heads and serve no batches, but they join the gossip
    /// plane when one is configured — the F8 scale rows use them to grow
    /// the fabric to 1 k/10 k/100 k hosts with real background traffic.
    pub bystanders: usize,
    /// Anti-entropy period for a background gossip plane across every
    /// host (writers, holders, bystanders), peered in rack-sized regions.
    /// `None` (the default) runs no gossip and changes nothing.
    pub gossip_period: Option<SimTime>,
    /// Arm the engine's crash flight recorder for the run (see
    /// `rdv_netsim::Sim::enable_flight_recorder`). The rings record
    /// passively and dump only on a failure, so a clean run's
    /// fingerprint is identical either way; soak suites turn it on so
    /// any invariant panic carries a postmortem.
    pub flight_recorder: bool,
}

impl LoadFabricSpec {
    /// A small healthy fabric: 3 holders, lossless rack links, 2 µs
    /// service, 200 µs watchdog, 50 µs SLO windows.
    pub fn small() -> LoadFabricSpec {
        LoadFabricSpec {
            holders: 3,
            shards: 0,
            link_loss_permille: 0,
            serve_delay: SimTime::from_micros(2),
            access_timeout: SimTime::from_micros(200),
            max_access_retries: 8,
            slo_interval: SimTime::from_micros(50),
            shard_audit: false,
            bystanders: 0,
            gossip_period: None,
            flight_recorder: false,
        }
    }
}

/// A fault window injected mid-load: partition one holder off the switch
/// and/or crash-restart another for the window's duration.
#[derive(Debug, Clone, Copy)]
pub struct Blip {
    /// Window start.
    pub at: SimTime,
    /// Window length (partition heals and crashed node restarts at
    /// `at + dur`).
    pub dur: SimTime,
    /// Holder index to partition off the switch, if any.
    pub partition_holder: Option<usize>,
    /// Holder index to crash-stop and restart, if any.
    pub crash_holder: Option<usize>,
}

/// Outcome of one load run.
#[derive(Debug)]
pub struct LoadRun {
    /// Batches the schedule offered to the fabric.
    pub scheduled_batches: usize,
    /// `(completed_at_ns, latency_ns)` per completed batch, sorted by
    /// `(completed, issued)` — canonical across shard counts.
    pub completions: Vec<(u64, u64)>,
    /// Entries carried by completed batches.
    pub completed_entries: u64,
    /// Issue times (ns) of every batch access, completed or failed,
    /// ascending — the open-loop saturation test diffs these across
    /// service-latency settings.
    pub issued_ns: Vec<u64>,
    /// Batch accesses that gave up with a typed failure.
    pub failed: usize,
    /// Aggregate counters: `load.*` tallies merged with every host's
    /// counters and the engine's deterministic counters.
    pub counters: Counters,
    /// Final sim clock, nanoseconds.
    pub clock_ns: u64,
    /// Windowed SLO series (offered/goodput in batches per second).
    pub slo: SloSeries,
    /// The telemetry plane, with the SLO gauges emitted, when requested.
    pub metrics: Option<MetricSet>,
    /// `(completed_at_ns, latency_ns, span_end)` per completed batch whose
    /// `load.batch` span was kept by the sampler, sorted by completion —
    /// the join input for critical-path tail attribution (F8).
    pub traced_batches: Vec<(u64, u64, EventId)>,
    /// The trace ring, when sampled tracing was requested.
    pub tracer: Option<Tracer>,
}

impl LoadRun {
    /// Execute the workload. Pure function of its arguments: equal inputs
    /// produce equal [`LoadRun::fingerprint`]s for any shard count.
    pub fn execute(
        fabric: &LoadFabricSpec,
        open: &OpenLoopSpec,
        replog: &ReplogSpec,
        blip: Option<&Blip>,
        seed: u64,
        metrics: bool,
    ) -> LoadRun {
        Self::run(fabric, open, replog, blip, seed, metrics, None)
    }

    /// [`LoadRun::execute`] with deterministic sampled tracing: operation
    /// chains kept by `sample` are recorded, the ring is returned in
    /// [`LoadRun::tracer`], and each traced batch's span-end lands in
    /// [`LoadRun::traced_batches`]. Sampling verdicts are pure in the op's
    /// origin stamp, so the recorded bytes are identical across shard
    /// counts and processes.
    pub fn execute_traced(
        fabric: &LoadFabricSpec,
        open: &OpenLoopSpec,
        replog: &ReplogSpec,
        blip: Option<&Blip>,
        seed: u64,
        sample: &SampleSpec,
    ) -> LoadRun {
        Self::run(fabric, open, replog, blip, seed, false, Some(sample))
    }

    fn run(
        fabric: &LoadFabricSpec,
        open: &OpenLoopSpec,
        replog: &ReplogSpec,
        blip: Option<&Blip>,
        seed: u64,
        metrics: bool,
        sample: Option<&SampleSpec>,
    ) -> LoadRun {
        assert!(fabric.holders >= 1, "need at least one holder");
        let schedule = ArrivalSchedule::generate(open, seed);
        let plan_batches = batches(&schedule, replog);

        let mut rng = StdRng::seed_from_u64(seed ^ 0x10AD); // rdv-lint: allow(rng-stream) -- workload-shape generator stream, salt-split from the scenario seed before the sim starts
        let writers = replog.writers as usize;
        let host_cfg = HostConfig {
            mode: DiscoveryMode::Controller,
            read_len: (replog.entry_bytes as u64).max(1),
            serve_delay: fabric.serve_delay,
            access_timeout: fabric.access_timeout,
            max_access_retries: fabric.max_access_retries,
            ..HostConfig::default()
        };
        let link = host_link_rack().with_loss(fabric.link_loss_permille);

        // Writers occupy fabric positions 0..writers, holders follow; the
        // star builder maps position to switch port, so obj routes point
        // at `writers + holder_idx`.
        let mut writer_nodes: Vec<HostNode> = (0..writers)
            .map(|w| {
                let mut n =
                    HostNode::new(format!("w{w}"), ObjId(0x10AD_0000 + w as u128), host_cfg);
                // Writers trace their accesses as replicated-log batches:
                // a `load.batch` span from issue to ack, and a
                // `load.head_advance` mark per completed batch.
                n.load_spans = true;
                n
            })
            .collect();
        let mut holder_nodes: Vec<HostNode> = (0..fabric.holders)
            .map(|h| HostNode::new(format!("lh{h}"), ObjId(0x10AD_8000 + h as u128), host_cfg))
            .collect();
        // Bystander inboxes start past the holder range so sampling
        // origin stamps (low inbox bits) stay distinct per host.
        let mut bystander_nodes: Vec<HostNode> = (0..fabric.bystanders)
            .map(|b| HostNode::new(format!("x{b}"), ObjId(0x10AD_A000 + b as u128), host_cfg))
            .collect();
        let mut obj_routes = Vec::new();
        let mut head_objs = Vec::with_capacity(replog.heads as usize);
        let payload = (replog.entry_bytes as u64).max(64) * 2;
        for head in 0..replog.heads as usize {
            let holder_idx = head % fabric.holders;
            let store = &mut holder_nodes[holder_idx].store;
            let obj = store.create(&mut rng, ObjectKind::Data);
            let off = store.get_mut(obj).unwrap().alloc(payload).unwrap();
            store.get_mut(obj).unwrap().write_u64(off, head as u64).unwrap();
            obj_routes.push((obj, writers + holder_idx));
            head_objs.push(obj);
        }

        // Batch order is canonical (at, writer, head); plan indices and
        // timer tags follow it, so issue order is schedule order.
        let mut timers: Vec<(SimTime, usize, u64)> = Vec::with_capacity(plan_batches.len());
        let mut batch_keys: Vec<Vec<((u64, u128), u32)>> = vec![Vec::new(); writers];
        for b in &plan_batches {
            let w = b.writer as usize;
            let obj = head_objs[b.head as usize];
            let tag = writer_nodes[w].plan.len() as u64;
            writer_nodes[w].plan.push(obj);
            timers.push((b.at, w, tag));
            batch_keys[w].push(((b.at.as_nanos(), obj.0), b.entries));
        }
        for keys in &mut batch_keys {
            keys.sort_unstable_by_key(|&(k, _)| k);
        }

        if let Some(period) = fabric.gossip_period {
            // Background anti-entropy plane: every host journals its
            // holdings and gossips in rack-sized regions. Peer plans are a
            // pure function of the inbox layout, so the plane is identical
            // at every shard count.
            let cfg = GossipConfig { period, ..GossipConfig::default() };
            let mut all: Vec<&mut HostNode> = writer_nodes
                .iter_mut()
                .chain(holder_nodes.iter_mut())
                .chain(bystander_nodes.iter_mut())
                .collect();
            let inboxes: Vec<ObjId> = all.iter().map(|n| n.inbox()).collect();
            let regions: Vec<Vec<ObjId>> =
                inboxes.chunks(GOSSIP_REGION).map(|c| c.to_vec()).collect();
            for (i, plan) in plan_gossip_peers(&regions).iter().enumerate() {
                debug_assert_eq!(plan.host, inboxes[i], "plan order follows fabric position");
                all[i].enable_gossip(i as u64 + 1, cfg);
                for &(peer, relay) in &plan.peers {
                    all[i].add_gossip_peer(peer, relay);
                }
            }
        }

        let mut nodes: Vec<(Box<dyn Node>, ObjId, LinkSpec)> = Vec::new();
        for (w, node) in writer_nodes.into_iter().enumerate() {
            nodes.push((Box::new(node), ObjId(0x10AD_0000 + w as u128), link));
        }
        for (h, node) in holder_nodes.into_iter().enumerate() {
            nodes.push((Box::new(node), ObjId(0x10AD_8000 + h as u128), link));
        }
        for (b, node) in bystander_nodes.into_iter().enumerate() {
            nodes.push((Box::new(node), ObjId(0x10AD_A000 + b as u128), link));
        }

        let (mut sim, ids) = build_star_fabric_sharded(seed, fabric.shards, nodes, &obj_routes);
        let switch = NodeId(ids.len());
        if metrics {
            sim.enable_metrics(rdv_metrics::MetricsConfig::default());
        }
        if fabric.shard_audit {
            sim.enable_shard_audit();
        }
        if fabric.flight_recorder {
            sim.enable_flight_recorder(FLIGHT_CAPACITY);
        }
        if let Some(spec) = sample {
            sim.enable_trace_sampled(TRACE_CAPACITY, spec.clone());
        }

        if let Some(blip) = blip {
            let until = SimTime::from_nanos(blip.at.as_nanos() + blip.dur.as_nanos());
            let mut plan = FaultPlan::new();
            if let Some(p) = blip.partition_holder {
                assert!(p < fabric.holders, "partition victim out of range");
                plan = plan.partition(blip.at, until, &[switch], &[ids[writers + p]]);
            }
            if let Some(c) = blip.crash_holder {
                assert!(c < fabric.holders, "crash victim out of range");
                plan = plan.crash(blip.at, ids[writers + c]).restart(until, ids[writers + c]);
            }
            sim.install_fault_plan(&plan);
        }

        sim.schedule_batch(timers.iter().map(|&(at, w, tag)| (at, ids[w], tag)));
        if fabric.gossip_period.is_some() {
            // A gossip plane re-arms its round timer forever, so the sim
            // never goes idle: run to a deterministic horizon instead —
            // past the last batch's full watchdog patience and the blip's
            // heal, so every access resolves before the clock stops.
            let last = timers.iter().map(|&(at, _, _)| at.as_nanos()).max().unwrap_or(0);
            let heal = blip.map(|b| b.at.as_nanos() + b.dur.as_nanos()).unwrap_or(0);
            let patience =
                fabric.access_timeout.as_nanos() * (u64::from(fabric.max_access_retries) + 2);
            sim.run_until(SimTime::from_nanos(last.max(heal) + patience));
        } else {
            sim.run_until_idle();
        }

        let mut set = metrics.then(|| {
            sim.flush_metrics(sim.now());
            sim.take_metrics()
        });

        let mut counters = Counters::new();
        let mut completions: Vec<(u64, u64, u64)> = Vec::new(); // (completed, issued, latency)
        let mut issued_ns = Vec::new();
        let mut completed_entries = 0u64;
        let mut failed = 0usize;
        let mut traced_batches: Vec<(u64, u64, EventId)> = Vec::new();
        for (w, keys) in batch_keys.iter().enumerate() {
            let host = sim.node_as::<HostNode>(ids[w]).expect("writer");
            assert_eq!(
                host.records.len() + host.failed.len(),
                host.plan.len(),
                "every batch must complete or fail typed"
            );
            assert_eq!(host.outstanding(), 0, "no batch may wedge");
            for r in &host.records {
                let key = (r.issued.as_nanos(), r.target.0);
                let i = keys.binary_search_by_key(&key, |&(k, _)| k).expect("batch for record");
                completed_entries += keys[i].1 as u64;
                completions.push((
                    r.completed.as_nanos(),
                    r.issued.as_nanos(),
                    r.latency().as_nanos(),
                ));
                issued_ns.push(r.issued.as_nanos());
                if let Some(end) = r.trace_end {
                    traced_batches.push((r.completed.as_nanos(), r.latency().as_nanos(), end));
                }
            }
            for f in &host.failed {
                issued_ns.push(f.issued.as_nanos());
            }
            failed += host.failed.len();
            counters.merge(&host.counters);
        }
        for id in ids.iter().take(writers + fabric.holders + fabric.bystanders).skip(writers) {
            let host = sim.node_as::<HostNode>(*id).expect("holder or bystander");
            counters.merge(&host.counters);
        }
        counters.merge(&sim.counters);
        completions.sort_unstable();
        issued_ns.sort_unstable();
        traced_batches.sort_unstable_by_key(|&(done, lat, id)| (done, lat, id.0));

        counters.add("load.arrivals", schedule.arrivals.len() as u64);
        counters.add("load.batches", plan_batches.len() as u64);
        counters.add("load.entries", completed_entries);
        counters.add("load.completions", completions.len() as u64);
        counters.add("load.failures", failed as u64);
        counters.add("load.churn_joins", schedule.churn_joins);
        counters.add("load.churn_leaves", schedule.churn_leaves);

        let completions: Vec<(u64, u64)> =
            completions.into_iter().map(|(done, _, lat)| (done, lat)).collect();
        let offered_ns: Vec<u64> = plan_batches.iter().map(|b| b.at.as_nanos()).collect();
        let until = sim.now().as_nanos().max(open.start.as_nanos() + open.duration.as_nanos());
        let slo =
            SloSeries::compute(&offered_ns, &completions, fabric.slo_interval.as_nanos(), until);
        if let Some(set) = set.as_mut() {
            slo.emit(set);
        }

        let tracer = sample.is_some().then(|| sim.take_tracer());

        LoadRun {
            scheduled_batches: plan_batches.len(),
            completions,
            completed_entries,
            issued_ns,
            failed,
            counters,
            clock_ns: sim.now().as_nanos(),
            slo,
            metrics: set,
            traced_batches,
            tracer,
        }
    }

    /// Canonical run fingerprint: final clock, every completion, the
    /// failure count, and the full name-sorted counter tally. Equal
    /// fingerprints mean byte-equal outcomes.
    pub fn fingerprint(&self) -> String {
        let mut out = format!(
            "clock={};batches={};failed={};entries={};",
            self.clock_ns, self.scheduled_batches, self.failed, self.completed_entries
        );
        for &(done, lat) in &self.completions {
            out.push_str(&format!("c{done}:{lat};"));
        }
        for (name, value) in self.counters.iter() {
            out.push_str(&format!("{name}={value};"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdv_netsim::SimTime;

    fn small_inputs() -> (LoadFabricSpec, OpenLoopSpec, ReplogSpec) {
        let fabric = LoadFabricSpec::small();
        let replog = ReplogSpec::small();
        let mut open = OpenLoopSpec::flat(1000, replog.heads, 400_000, SimTime::from_micros(500));
        open.zipf_skew_permille = 900;
        (fabric, open, replog)
    }

    #[test]
    fn healthy_run_completes_every_batch() {
        let (fabric, open, replog) = small_inputs();
        let run = LoadRun::execute(&fabric, &open, &replog, None, 3, false);
        assert!(run.scheduled_batches > 10, "workload too small to mean anything");
        assert_eq!(run.completions.len(), run.scheduled_batches);
        assert_eq!(run.failed, 0);
        assert_eq!(run.counters.get("load.completions"), run.completions.len() as u64);
        assert!(run.completed_entries >= run.scheduled_batches as u64);
        assert!(run.slo.points.iter().any(|p| p.goodput_per_s > 0));
    }

    #[test]
    fn fingerprint_is_deterministic() {
        let (fabric, open, replog) = small_inputs();
        let a = LoadRun::execute(&fabric, &open, &replog, None, 9, false);
        let b = LoadRun::execute(&fabric, &open, &replog, None, 9, false);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = LoadRun::execute(&fabric, &open, &replog, None, 10, false);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn blip_dips_goodput_then_recovers() {
        let (fabric, mut open, replog) = small_inputs();
        open.duration = SimTime::from_millis(1);
        let blip = Blip {
            at: SimTime::from_micros(300),
            dur: SimTime::from_micros(200),
            partition_holder: Some(0),
            crash_holder: Some(1),
        };
        let run = LoadRun::execute(&fabric, &open, &replog, Some(&blip), 5, false);
        // Accounting holds under the blip: everything completes or fails
        // typed (asserted inside execute), and the watchdog did real work.
        assert!(run.counters.get("access_timeouts") > 0, "blip should force retries");
        let healthy = LoadRun::execute(&fabric, &open, &replog, None, 5, false);
        assert_eq!(healthy.counters.get("load.failures"), 0);
        assert!(run.completions.len() + run.failed == run.scheduled_batches);
    }

    #[test]
    fn sampled_tracing_joins_every_kept_batch_without_perturbing() {
        let (fabric, open, replog) = small_inputs();
        let plain = LoadRun::execute(&fabric, &open, &replog, None, 11, false);
        let spec = SampleSpec::keep_all(11);
        let traced = LoadRun::execute_traced(&fabric, &open, &replog, None, 11, &spec);
        // The observer must not change what happened — only record it.
        assert_eq!(plain.completions, traced.completions);
        assert_eq!(plain.failed, traced.failed);
        assert_eq!(
            traced.traced_batches.len(),
            traced.completions.len(),
            "keep-all samples every batch span"
        );
        let tracer = traced.tracer.as_ref().expect("tracer returned");
        for &(_, _, end) in &traced.traced_batches {
            let ev = tracer.get(end).expect("span end retained");
            assert_eq!(ev.kind.label(), Some("load.batch"));
        }
        // Half-rate sampling keeps a strict, deterministic subset.
        let half = SampleSpec { seed: 11, default_permille: 500, classes: Vec::new() };
        let a = LoadRun::execute_traced(&fabric, &open, &replog, None, 11, &half);
        let b = LoadRun::execute_traced(&fabric, &open, &replog, None, 11, &half);
        assert!(!a.traced_batches.is_empty() && a.traced_batches.len() < a.completions.len());
        assert_eq!(a.traced_batches, b.traced_batches, "sampled set is seed-pure");
    }

    #[test]
    fn background_gossip_plane_runs_on_bystanders_deterministically() {
        let (mut fabric, open, replog) = small_inputs();
        fabric.bystanders = 29;
        fabric.gossip_period = Some(SimTime::from_micros(40));
        let a = LoadRun::execute(&fabric, &open, &replog, None, 13, false);
        assert!(a.counters.get("gossip.rounds") > 0, "the plane must actually gossip");
        assert_eq!(a.failed, 0, "background gossip must not break the workload");
        let b = LoadRun::execute(&fabric, &open, &replog, None, 13, false);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut sharded = fabric;
        sharded.shards = 2;
        let c = LoadRun::execute(&sharded, &open, &replog, None, 13, false);
        assert_eq!(a.fingerprint(), c.fingerprint(), "plane is shard-invariant");
    }

    #[test]
    fn metrics_run_emits_slo_gauges_without_perturbing() {
        let (fabric, open, replog) = small_inputs();
        let plain = LoadRun::execute(&fabric, &open, &replog, None, 7, false);
        let with = LoadRun::execute(&fabric, &open, &replog, None, 7, true);
        assert_eq!(plain.fingerprint(), with.fingerprint(), "observation must not perturb");
        let set = with.metrics.expect("metrics on");
        for g in [
            "load.offered_per_s",
            "load.goodput_per_s",
            "load.p50_us",
            "load.p99_us",
            "load.p999_us",
        ] {
            let series = set.series_by_name(g).unwrap_or_else(|| panic!("{g} missing"));
            assert!(series.points().count() > 0, "{g} empty");
        }
    }
}
