//! # rdv-load — the million-user traffic plane
//!
//! Every figure before this crate was a closed-loop microbenchmark: the
//! driver issued the next access when the previous one finished, so the
//! offered load collapsed exactly when the fabric slowed down — the
//! classic coordinated-omission trap. This crate is the open-loop
//! antidote, the workload plane ROADMAP item 2 calls for:
//!
//! - [`arrivals`] — seed-deterministic **open-loop** arrival processes.
//!   An [`arrivals::ArrivalSchedule`] is a pure function of its spec and
//!   seed: arrival times are drawn from sim time alone and are *never*
//!   gated on completions, so the offered rate survives saturation (the
//!   regression tests inflate service latency 10× and assert the
//!   schedule's issue times do not move).
//! - [`zipf`] — heavy-tailed object popularity with a configurable skew,
//!   the access asymmetry the paper argues fabrics must absorb at scale.
//! - [`curve`] — diurnal load curves and flash-crowd spikes as integer
//!   permille multipliers over the run.
//! - [`churn`] — client join/leave as seeded Poisson streams over a
//!   million-client id space.
//! - [`replog`] — a multi-writer replicated-log workload in the Autobahn
//!   style: entries batch at each writer, batches contend on a small set
//!   of Zipf-hot log heads.
//! - [`slo`] — p50/p99/p999 latency and goodput series computed per
//!   sim-time window and emitted straight into the rdv-metrics gauge
//!   plane (`load.*` gauges, D3-validated).
//! - [`harness`] — glue that runs a replicated-log workload against the
//!   rendezvous star fabric (multiple writer drivers, object-routed
//!   switch, optional fault "blip") and returns a canonical fingerprint;
//!   experiment F6 and the chaos soak both build on it.
//!
//! Determinism contract: everything here is a pure function of
//! `(spec, seed)`. Generation draws from split sub-streams (times,
//! thinning, clients, objects, churn), so e.g. changing the popularity
//! skew never perturbs arrival *times*. Schedules are byte-identical
//! across processes, `--jobs`, and `--shards` — the property tests and
//! the chaos soak hold them to the same bar as every other artifact.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::disallowed_types, clippy::disallowed_methods)]

pub mod arrivals;
pub mod churn;
pub mod curve;
pub mod harness;
pub mod replog;
pub mod slo;
pub mod zipf;

pub use arrivals::{Arrival, ArrivalSchedule, OpenLoopSpec};
pub use churn::ChurnSpec;
pub use curve::{LoadCurve, Spike};
pub use harness::{Blip, LoadFabricSpec, LoadRun};
pub use replog::{Batch, ReplogSpec};
pub use slo::{nearest_rank, SloPoint, SloSeries};
pub use zipf::Zipf;

/// Canonical `load.*` counter names. Every string literal passed to the
/// stats counter API with a `load.` prefix must appear here — rdv-lint
/// parses this table from source and cross-checks call sites, exactly as
/// it does for the engine's `ENGINE_SLOTS` and the metrics plane's
/// `GAUGE_NAMES`.
pub const LOAD_COUNTERS: [&str; 7] = [
    "load.arrivals",
    "load.batches",
    "load.entries",
    "load.completions",
    "load.failures",
    "load.churn_joins",
    "load.churn_leaves",
];

/// Whether `name` is one of the canonical [`LOAD_COUNTERS`].
pub fn is_registered_counter(name: &str) -> bool {
    LOAD_COUNTERS.contains(&name)
}
