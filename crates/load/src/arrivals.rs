//! Open-loop arrival generation.
//!
//! The schedule is computed **before** the simulation runs, purely from
//! `(spec, seed)`: a non-homogeneous Poisson process (exponential gaps at
//! the curve's peak rate, integer-permille thinning down to the curve)
//! assigns arrival times; separate sub-RNG streams then pick the client
//! and the target object for each accepted arrival. Because times come
//! from their own stream, changing the popularity skew, the client pool,
//! or churn rates never moves an arrival time — and because the schedule
//! exists before the sim does, completions *cannot* influence arrivals.
//! That is the open-loop invariant: offered load is what the spec says,
//! not what the system under test manages to absorb.

use crate::churn::{exp_gap_ns, ChurnPool, ChurnSpec};
use crate::curve::LoadCurve;
use crate::zipf::Zipf;
use rand::{rngs::StdRng, Rng, SeedableRng};
use rdv_netsim::SimTime;

/// Everything that determines an arrival schedule (besides the seed).
#[derive(Debug, Clone)]
pub struct OpenLoopSpec {
    /// Id space for clients with no churn; with churn, the initial pool
    /// comes from [`ChurnSpec::initial_active`] instead.
    pub clients: u32,
    /// Number of distinct target objects (Zipf ranks).
    pub objects: u32,
    /// Zipf skew in permille of the exponent (0 = uniform popularity).
    pub zipf_skew_permille: u32,
    /// Base arrival rate, arrivals/s, before the curve multiplier.
    pub base_rate_per_s: u64,
    /// First instant arrivals may occur.
    pub start: SimTime,
    /// Length of the arrival window; the schedule covers
    /// `[start, start + duration)`.
    pub duration: SimTime,
    /// Rate multiplier over the window (diurnal shape, spikes).
    pub curve: LoadCurve,
    /// Optional client churn; `None` keeps the whole id space active.
    pub churn: Option<ChurnSpec>,
}

impl OpenLoopSpec {
    /// A small flat-rate spec, handy as a test baseline.
    pub fn flat(clients: u32, objects: u32, rate_per_s: u64, duration: SimTime) -> OpenLoopSpec {
        OpenLoopSpec {
            clients,
            objects,
            zipf_skew_permille: 0,
            base_rate_per_s: rate_per_s,
            start: SimTime::from_micros(10),
            duration,
            curve: LoadCurve::flat(),
            churn: None,
        }
    }
}

/// One scheduled arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// When the client issues the operation (sim time).
    pub at: SimTime,
    /// Issuing client id.
    pub client: u32,
    /// Target object rank (0 = hottest).
    pub obj: u32,
}

/// A fully-materialized, time-sorted arrival schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalSchedule {
    /// Arrivals sorted by time (ties keep generation order).
    pub arrivals: Vec<Arrival>,
    /// Churn joins applied while generating (0 without churn).
    pub churn_joins: u64,
    /// Churn leaves applied while generating (0 without churn).
    pub churn_leaves: u64,
    /// Candidate arrivals skipped because the churned pool was empty.
    pub skipped_empty_pool: u64,
}

// Sub-stream salts: each concern draws from its own generator so tuning
// one knob never perturbs another's stream.
const SALT_TIMES: u64 = 0x54_49_4D_45; // "TIME"
const SALT_THIN: u64 = 0x54_48_49_4E; // "THIN"
const SALT_CLIENT: u64 = 0x43_4C_49_45; // "CLIE"
const SALT_OBJ: u64 = 0x4F_42_4A_53; // "OBJS"
const SALT_CHURN: u64 = 0x43_48_52_4E; // "CHRN"

impl ArrivalSchedule {
    /// Materialize the schedule for `(spec, seed)`. Pure function; two
    /// calls with equal inputs return equal schedules.
    pub fn generate(spec: &OpenLoopSpec, seed: u64) -> ArrivalSchedule {
        assert!(spec.base_rate_per_s > 0, "open-loop rate must be positive");
        assert!(spec.objects >= 1, "need at least one object");
        assert!(spec.duration.as_nanos() > 0, "empty arrival window");

        let mut rng_times = StdRng::seed_from_u64(seed ^ SALT_TIMES); // rdv-lint: allow(rng-stream) -- open-loop generator sub-stream, salt-split from the scenario seed before the sim starts
        let mut rng_thin = StdRng::seed_from_u64(seed ^ SALT_THIN); // rdv-lint: allow(rng-stream) -- open-loop generator sub-stream, salt-split from the scenario seed before the sim starts
        let mut rng_client = StdRng::seed_from_u64(seed ^ SALT_CLIENT); // rdv-lint: allow(rng-stream) -- open-loop generator sub-stream, salt-split from the scenario seed before the sim starts
        let mut rng_obj = StdRng::seed_from_u64(seed ^ SALT_OBJ); // rdv-lint: allow(rng-stream) -- open-loop generator sub-stream, salt-split from the scenario seed before the sim starts

        let zipf = Zipf::new(spec.objects, spec.zipf_skew_permille);
        let peak = spec.curve.peak_permille();
        let start_ns = spec.start.as_nanos();
        let dur_ns = spec.duration.as_nanos();
        let end_ns = start_ns + dur_ns;

        let mut churn = spec
            .churn
            .as_ref()
            .map(|c| ChurnPool::new(c, spec.start, spec.duration, seed ^ SALT_CHURN));

        let mut arrivals = Vec::new();
        let mut skipped = 0u64;
        let mut at_ns = start_ns;
        loop {
            // Candidate stream: homogeneous Poisson at the curve's peak
            // rate, then thinned by mult/peak at the candidate's position.
            // The thinning draw is consumed for EVERY candidate, accepted
            // or not, so acceptance of one arrival never shifts another's
            // time.
            at_ns = at_ns.saturating_add(exp_gap_ns(&mut rng_times, spec.base_rate_per_s, peak));
            if at_ns >= end_ns {
                break;
            }
            let pos_permille = ((at_ns - start_ns).saturating_mul(1000) / dur_ns) as u32;
            let mult = spec.curve.multiplier_permille(pos_permille);
            let accept = rng_thin.gen_range(0..peak) < mult;
            if !accept {
                continue;
            }
            let at = SimTime::from_nanos(at_ns);
            let client = match churn.as_mut() {
                Some(pool) => {
                    pool.advance(at);
                    match pool.pick(&mut rng_client) {
                        Some(c) => c,
                        None => {
                            skipped += 1;
                            continue;
                        }
                    }
                }
                None => rng_client.gen_range(0..spec.clients.max(1)),
            };
            let obj = zipf.sample(&mut rng_obj);
            arrivals.push(Arrival { at, client, obj });
        }

        let (churn_joins, churn_leaves) = match churn.as_mut() {
            Some(pool) => {
                // Account for churn past the last arrival too.
                pool.advance(SimTime::from_nanos(end_ns));
                (pool.joins, pool.leaves)
            }
            None => (0, 0),
        };
        ArrivalSchedule { arrivals, churn_joins, churn_leaves, skipped_empty_pool: skipped }
    }

    /// Mean offered rate over the window, arrivals per second.
    pub fn offered_per_s(&self, spec: &OpenLoopSpec) -> f64 {
        self.arrivals.len() as f64 * 1e9 / spec.duration.as_nanos() as f64
    }

    /// Canonical fingerprint: every arrival as `at:client:obj;` plus the
    /// churn tallies. Byte-equal fingerprints mean byte-equal schedules.
    pub fn fingerprint(&self) -> String {
        let mut out = String::with_capacity(self.arrivals.len() * 16 + 64);
        for a in &self.arrivals {
            out.push_str(&format!("{}:{}:{};", a.at.as_nanos(), a.client, a.obj));
        }
        out.push_str(&format!(
            "|joins={} leaves={} skipped={}",
            self.churn_joins, self.churn_leaves, self.skipped_empty_pool
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::Spike;

    #[test]
    fn schedule_is_sorted_and_in_range() {
        let spec = OpenLoopSpec::flat(100, 16, 2_000_000, SimTime::from_millis(1));
        let s = ArrivalSchedule::generate(&spec, 17);
        assert!(!s.arrivals.is_empty());
        for w in s.arrivals.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for a in &s.arrivals {
            assert!(a.at >= spec.start);
            assert!(a.at.as_nanos() < spec.start.as_nanos() + spec.duration.as_nanos());
            assert!(a.client < 100);
            assert!(a.obj < 16);
        }
    }

    #[test]
    fn mean_rate_tracks_the_spec() {
        let spec = OpenLoopSpec::flat(100, 16, 2_000_000, SimTime::from_millis(2));
        let s = ArrivalSchedule::generate(&spec, 23);
        let rate = s.offered_per_s(&spec);
        assert!(
            (1_700_000.0..2_300_000.0).contains(&rate),
            "offered {rate} not within 15% of 2M/s"
        );
    }

    #[test]
    fn skew_changes_objects_but_not_times() {
        let mut spec = OpenLoopSpec::flat(100, 64, 1_000_000, SimTime::from_millis(1));
        let a = ArrivalSchedule::generate(&spec, 5);
        spec.zipf_skew_permille = 1100;
        let b = ArrivalSchedule::generate(&spec, 5);
        assert_eq!(a.arrivals.len(), b.arrivals.len());
        for (x, y) in a.arrivals.iter().zip(&b.arrivals) {
            assert_eq!(x.at, y.at, "skew moved an arrival time");
            assert_eq!(x.client, y.client, "skew moved a client draw");
        }
        let objs_a: Vec<u32> = a.arrivals.iter().map(|v| v.obj).collect();
        let objs_b: Vec<u32> = b.arrivals.iter().map(|v| v.obj).collect();
        assert_ne!(objs_a, objs_b, "skew had no effect on objects");
    }

    #[test]
    fn flash_crowd_raises_local_rate() {
        let spec = OpenLoopSpec {
            curve: LoadCurve::flat().with_spike(Spike {
                at_permille: 500,
                dur_permille: 200,
                add_permille: 4000,
            }),
            ..OpenLoopSpec::flat(100, 16, 1_000_000, SimTime::from_millis(2))
        };
        let s = ArrivalSchedule::generate(&spec, 31);
        let start = spec.start.as_nanos();
        let dur = spec.duration.as_nanos();
        let in_window = |a: &&Arrival, lo: u64, hi: u64| {
            let pos = (a.at.as_nanos() - start) * 1000 / dur;
            (lo..hi).contains(&pos)
        };
        let before = s.arrivals.iter().filter(|a| in_window(a, 300, 500)).count();
        let during = s.arrivals.iter().filter(|a| in_window(a, 500, 700)).count();
        assert!(during > 3 * before, "spike window not hot: {during} during vs {before} before");
    }

    #[test]
    fn churn_draws_from_the_live_pool() {
        let spec = OpenLoopSpec {
            churn: Some(ChurnSpec { initial_active: 8, join_per_s: 400_000, leave_per_s: 100_000 }),
            ..OpenLoopSpec::flat(8, 16, 1_000_000, SimTime::from_millis(1))
        };
        let s = ArrivalSchedule::generate(&spec, 41);
        assert!(s.churn_joins > 0);
        // Late arrivals can come from joined clients (ids >= 8).
        assert!(s.arrivals.iter().any(|a| a.client >= 8), "no joined client ever drew traffic");
    }

    #[test]
    fn empty_pool_skips_without_stalling_times() {
        let spec = OpenLoopSpec {
            churn: Some(ChurnSpec { initial_active: 0, join_per_s: 0, leave_per_s: 0 }),
            ..OpenLoopSpec::flat(8, 4, 500_000, SimTime::from_millis(1))
        };
        let s = ArrivalSchedule::generate(&spec, 47);
        assert!(s.arrivals.is_empty());
        assert!(s.skipped_empty_pool > 0);
    }
}
