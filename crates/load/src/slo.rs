//! SLO series: windowed latency quantiles and goodput over sim time.
//!
//! Latency SLOs are stated as nearest-rank quantiles (p50/p99/p999) of
//! the completion latencies inside each sample window, alongside the
//! offered and achieved (goodput) rates. The series are plain data and
//! can be emitted into the rdv-metrics gauge plane (`load.*` gauges,
//! D3-validated against `GAUGE_NAMES`), so `figures --metrics` renders
//! them with the same exporters as every engine gauge.

use rdv_metrics::MetricSet;

/// Nearest-rank quantile of an ascending-sorted sample set.
///
/// `permille` is the quantile in permille (500 = p50, 999 = p999). The
/// nearest-rank definition: rank `⌈permille·n/1000⌉`, 1-based, clamped
/// to `[1, n]`; an empty sample set yields 0. With a single sample every
/// quantile is that sample; with all-equal samples every quantile is the
/// common value — the oracle cases the SLO correctness test pins down.
pub fn nearest_rank(sorted: &[u64], permille: u64) -> u64 {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "samples must be sorted");
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = (permille * n).div_ceil(1000).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// One SLO sample window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloPoint {
    /// Window end (ns); the window covers `(at - interval, at]`.
    pub at_ns: u64,
    /// Offered arrivals in the window, scaled to per-second.
    pub offered_per_s: u64,
    /// Completions in the window, scaled to per-second (goodput).
    pub goodput_per_s: u64,
    /// p50 completion latency in the window, microseconds (0 if empty).
    pub p50_us: u64,
    /// p99 completion latency in the window, microseconds (0 if empty).
    pub p99_us: u64,
    /// p999 completion latency in the window, microseconds (0 if empty).
    pub p999_us: u64,
}

/// A windowed SLO series over one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloSeries {
    /// Window length, nanoseconds.
    pub interval_ns: u64,
    /// One point per window, time-ascending.
    pub points: Vec<SloPoint>,
}

impl SloSeries {
    /// Compute the windowed series.
    ///
    /// `arrivals_ns` are scheduled arrival times; `completions` are
    /// `(completed_at_ns, latency_ns)` pairs. Windows are
    /// `(k·interval, (k+1)·interval]` for `k·interval < until_ns`,
    /// matching the rdv-metrics tick convention (first tick at one
    /// interval, covering the window since 0). Neither input needs to be
    /// sorted; windowing buckets by timestamp.
    pub fn compute(
        arrivals_ns: &[u64],
        completions: &[(u64, u64)],
        interval_ns: u64,
        until_ns: u64,
    ) -> SloSeries {
        assert!(interval_ns > 0, "interval must be positive");
        let windows = until_ns.div_ceil(interval_ns).max(1) as usize;
        let mut offered = vec![0u64; windows];
        let mut lats: Vec<Vec<u64>> = vec![Vec::new(); windows];
        let bucket = |at_ns: u64| -> usize {
            // Window k covers (k·I, (k+1)·I]; time 0 lands in window 0.
            (at_ns.saturating_sub(1) / interval_ns).min(windows as u64 - 1) as usize
        };
        for &a in arrivals_ns {
            offered[bucket(a)] += 1;
        }
        for &(done, lat) in completions {
            lats[bucket(done)].push(lat);
        }
        let points = (0..windows)
            .map(|k| {
                let mut l = std::mem::take(&mut lats[k]);
                l.sort_unstable();
                let scale =
                    |count: u64| (count as u128 * 1_000_000_000 / interval_ns as u128) as u64;
                SloPoint {
                    at_ns: (k as u64 + 1) * interval_ns,
                    offered_per_s: scale(offered[k]),
                    goodput_per_s: scale(l.len() as u64),
                    p50_us: nearest_rank(&l, 500) / 1000,
                    p99_us: nearest_rank(&l, 990) / 1000,
                    p999_us: nearest_rank(&l, 999) / 1000,
                }
            })
            .collect();
        SloSeries { interval_ns, points }
    }

    /// Emit the series into a [`MetricSet`] as the five `load.*` gauges.
    pub fn emit(&self, set: &mut MetricSet) {
        for p in &self.points {
            let mut s = set.sampler(p.at_ns);
            s.gauge("load.offered_per_s", p.offered_per_s);
            s.gauge("load.goodput_per_s", p.goodput_per_s);
            s.gauge("load.p50_us", p.p50_us);
            s.gauge("load.p99_us", p.p99_us);
            s.gauge("load.p999_us", p.p999_us);
        }
    }

    /// Mean goodput (per-second) over windows ending in `(from, to]`.
    pub fn mean_goodput(&self, from_ns: u64, to_ns: u64) -> u64 {
        let vals: Vec<u64> = self
            .points
            .iter()
            .filter(|p| p.at_ns > from_ns && p.at_ns <= to_ns)
            .map(|p| p.goodput_per_s)
            .collect();
        if vals.is_empty() {
            0
        } else {
            vals.iter().sum::<u64>() / vals.len() as u64
        }
    }

    /// First window ending after `after_ns` whose goodput is at or above
    /// `floor_per_s`; returns its end time. `None` if goodput never
    /// recovers. The F6 recovery-time column is
    /// `recovery_ns(blip_end, 90% of pre-blip mean) - blip_end`.
    pub fn recovery_ns(&self, after_ns: u64, floor_per_s: u64) -> Option<u64> {
        self.points
            .iter()
            .find(|p| p.at_ns > after_ns && p.goodput_per_s >= floor_per_s)
            .map(|p| p.at_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_edge_cases() {
        assert_eq!(nearest_rank(&[], 500), 0);
        assert_eq!(nearest_rank(&[], 999), 0);
        assert_eq!(nearest_rank(&[7], 500), 7);
        assert_eq!(nearest_rank(&[7], 999), 7);
        assert_eq!(nearest_rank(&[5, 5, 5, 5], 500), 5);
        assert_eq!(nearest_rank(&[5, 5, 5, 5], 999), 5);
    }

    #[test]
    fn nearest_rank_textbook_values() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&s, 500), 50);
        assert_eq!(nearest_rank(&s, 990), 99);
        assert_eq!(nearest_rank(&s, 999), 100);
        let s: Vec<u64> = (1..=10).collect();
        assert_eq!(nearest_rank(&s, 500), 5);
        assert_eq!(nearest_rank(&s, 990), 10);
    }

    #[test]
    fn windows_bucket_and_scale() {
        // interval 1000 ns: window 0 = (0,1000], window 1 = (1000,2000].
        let arrivals = [1, 500, 1000, 1001, 1500];
        let completions = [(900, 3000), (1999, 7000), (2000, 9000)];
        let s = SloSeries::compute(&arrivals, &completions, 1000, 2000);
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.points[0].offered_per_s, 3_000_000);
        assert_eq!(s.points[1].offered_per_s, 2_000_000);
        assert_eq!(s.points[0].goodput_per_s, 1_000_000);
        assert_eq!(s.points[1].goodput_per_s, 2_000_000);
        assert_eq!(s.points[0].p50_us, 3);
        assert_eq!(s.points[1].p50_us, 7);
        assert_eq!(s.points[1].p999_us, 9);
    }

    #[test]
    fn empty_window_reports_zeroes() {
        let s = SloSeries::compute(&[], &[], 1000, 3000);
        assert_eq!(s.points.len(), 3);
        for p in &s.points {
            assert_eq!(
                (p.offered_per_s, p.goodput_per_s, p.p50_us, p.p99_us, p.p999_us),
                (0, 0, 0, 0, 0)
            );
        }
    }

    #[test]
    fn recovery_and_mean_goodput() {
        let completions: Vec<(u64, u64)> = (0..10)
            .flat_map(|w| {
                // Dip in windows 4 and 5.
                let n = if w == 4 || w == 5 { 1 } else { 10 };
                (0..n).map(move |i| (w * 1000 + 100 + i, 2000u64))
            })
            .collect();
        let s = SloSeries::compute(&[], &completions, 1000, 10_000);
        let before = s.mean_goodput(0, 4000);
        assert_eq!(before, 10_000_000);
        assert!(s.mean_goodput(4000, 6000) < before / 5);
        // Recovers at the window ending 7000 (covering (6000,7000]).
        assert_eq!(s.recovery_ns(6000, before * 9 / 10), Some(7000));
        assert_eq!(s.recovery_ns(60_000, 1), None);
    }
}
