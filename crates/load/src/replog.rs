//! Multi-writer replicated-log workload, Autobahn style.
//!
//! Clients' operations are append requests routed to one of a few
//! `writers` (client id mod writers). Each writer batches pending entries
//! per log head: the first entry opens a batch and starts the batch
//! window; everything that lands on the same `(writer, head)` before the
//! window expires rides in the same batch; the batch flushes (one fabric
//! operation) when the window closes. Contention concentrates on the
//! Zipf-hot log heads — the scale asymmetry ISSUE 7 wants exercised.

use crate::arrivals::ArrivalSchedule;
use rdv_netsim::SimTime;

/// Replicated-log workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplogSpec {
    /// Number of writer front-ends; clients map to writers by id modulo.
    pub writers: u32,
    /// Number of log heads (the arrival schedule's object space).
    pub heads: u32,
    /// Payload bytes per appended entry.
    pub entry_bytes: u32,
    /// How long a writer holds an open batch before flushing it.
    pub batch_window: SimTime,
}

impl ReplogSpec {
    /// A small default: 4 writers, 8 heads, 64-byte entries, 20 µs window.
    pub fn small() -> ReplogSpec {
        ReplogSpec { writers: 4, heads: 8, entry_bytes: 64, batch_window: SimTime::from_micros(20) }
    }
}

/// One flushed batch: a single fabric operation carrying `entries`
/// appends to `head`, issued by `writer` at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Batch {
    /// Flush time (open time + batch window, or end of schedule).
    pub at: SimTime,
    /// Issuing writer index, `0..writers`.
    pub writer: u32,
    /// Target log head, `0..heads`.
    pub head: u32,
    /// Entries folded into this batch.
    pub entries: u32,
}

impl Batch {
    /// Payload bytes this batch carries under `spec`.
    pub fn bytes(&self, spec: &ReplogSpec) -> u64 {
        self.entries as u64 * spec.entry_bytes as u64
    }
}

/// Fold an arrival schedule into flushed batches, sorted by
/// `(at, writer, head)` — a pure, deterministic function of its inputs.
pub fn batches(schedule: &ArrivalSchedule, spec: &ReplogSpec) -> Vec<Batch> {
    assert!(spec.writers >= 1, "need at least one writer");
    assert!(spec.heads >= 1, "need at least one log head");
    // Open batches keyed densely by writer * heads + head.
    let slots = spec.writers as usize * spec.heads as usize;
    let mut open: Vec<Option<(SimTime, u32)>> = vec![None; slots]; // (opened_at, entries)
    let mut out = Vec::new();
    let window = spec.batch_window.as_nanos();

    let flush = |open: &mut Vec<Option<(SimTime, u32)>>, slot: usize, out: &mut Vec<Batch>| {
        if let Some((opened, entries)) = open[slot].take() {
            out.push(Batch {
                at: SimTime::from_nanos(opened.as_nanos() + window),
                writer: (slot / spec.heads as usize) as u32,
                head: (slot % spec.heads as usize) as u32,
                entries,
            });
        }
    };

    for a in &schedule.arrivals {
        // Flush every batch whose window closed before this arrival.
        // Arrivals are time-sorted, so a linear scan per arrival keeps
        // flush order deterministic; slot order breaks flush-time ties.
        for slot in 0..slots {
            if let Some((opened, _)) = open[slot] {
                if opened.as_nanos() + window <= a.at.as_nanos() {
                    flush(&mut open, slot, &mut out);
                }
            }
        }
        let writer = a.client % spec.writers;
        let head = a.obj % spec.heads;
        let slot = writer as usize * spec.heads as usize + head as usize;
        match &mut open[slot] {
            Some((_, entries)) => *entries += 1,
            None => open[slot] = Some((a.at, 1)),
        }
    }
    for slot in 0..slots {
        flush(&mut open, slot, &mut out);
    }
    out.sort_by_key(|b| (b.at, b.writer, b.head));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{Arrival, ArrivalSchedule};

    fn sched(arrivals: Vec<(u64, u32, u32)>) -> ArrivalSchedule {
        ArrivalSchedule {
            arrivals: arrivals
                .into_iter()
                .map(|(us, client, obj)| Arrival { at: SimTime::from_micros(us), client, obj })
                .collect(),
            churn_joins: 0,
            churn_leaves: 0,
            skipped_empty_pool: 0,
        }
    }

    fn spec() -> ReplogSpec {
        ReplogSpec { writers: 2, heads: 2, entry_bytes: 64, batch_window: SimTime::from_micros(10) }
    }

    #[test]
    fn same_window_same_head_coalesces() {
        // Clients 0 and 2 both map to writer 0; obj 0 on both.
        let s = sched(vec![(100, 0, 0), (105, 2, 0)]);
        let b = batches(&s, &spec());
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].entries, 2);
        assert_eq!(b[0].writer, 0);
        assert_eq!(b[0].head, 0);
        assert_eq!(b[0].at, SimTime::from_micros(110));
        assert_eq!(b[0].bytes(&spec()), 128);
    }

    #[test]
    fn window_expiry_splits_batches() {
        let s = sched(vec![(100, 0, 0), (115, 0, 0)]);
        let b = batches(&s, &spec());
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].at, SimTime::from_micros(110));
        assert_eq!(b[1].at, SimTime::from_micros(125));
        assert!(b.iter().all(|x| x.entries == 1));
    }

    #[test]
    fn writers_and_heads_partition_batches() {
        // Same instant, four distinct (writer, head) slots.
        let s = sched(vec![(100, 0, 0), (100, 1, 0), (100, 0, 1), (100, 1, 1)]);
        let b = batches(&s, &spec());
        assert_eq!(b.len(), 4);
        let mut slots: Vec<(u32, u32)> = b.iter().map(|x| (x.writer, x.head)).collect();
        slots.sort_unstable();
        assert_eq!(slots, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        // Canonical sort: flush-time ties broken by (writer, head).
        assert!(b
            .windows(2)
            .all(|w| (w[0].at, w[0].writer, w[0].head) <= (w[1].at, w[1].writer, w[1].head)));
    }

    #[test]
    fn batching_conserves_entries() {
        let s = sched(vec![
            (100, 0, 0),
            (101, 1, 1),
            (102, 2, 0),
            (130, 3, 3),
            (131, 0, 2),
            (160, 1, 0),
        ]);
        let b = batches(&s, &spec());
        let total: u32 = b.iter().map(|x| x.entries).sum();
        assert_eq!(total, 6, "entries lost or duplicated in batching");
    }
}
