//! Client churn: seeded Poisson join/leave streams over the client pool.
//!
//! Churn is modelled in aggregate — two homogeneous Poisson processes
//! (joins and leaves) over the *pool*, not per-client session machines —
//! so a million-client id space costs memory proportional to the number
//! of concurrently-active clients, not the id space. Leaves pick a
//! uniform victim from the active pool with `swap_remove`, which is
//! deterministic because the pool's order is itself a pure function of
//! the event stream.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rdv_netsim::SimTime;

/// Aggregate churn parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnSpec {
    /// Clients active at t = start (ids `0..initial_active`).
    pub initial_active: u32,
    /// Mean pool joins per second (fresh, monotonically increasing ids).
    pub join_per_s: u64,
    /// Mean pool leaves per second (uniform victim from the active pool).
    pub leave_per_s: u64,
}

/// One churn event on the pool timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChurnEvent {
    Join,
    Leave,
}

/// The active-client pool, advanced along a precomputed churn timeline.
#[derive(Debug, Clone)]
pub(crate) struct ChurnPool {
    /// `(at, event)` sorted by time; merged join/leave streams.
    timeline: Vec<(SimTime, ChurnEvent)>,
    next: usize,
    active: Vec<u32>,
    next_id: u32,
    rng: StdRng,
    /// Joins applied so far.
    pub joins: u64,
    /// Leaves applied so far.
    pub leaves: u64,
}

/// Exponential inter-event gap (nanoseconds) at `rate` events/s, drawn
/// from 53 uniform mantissa bits with a nonzero guard so the stream can
/// never stall on a zero gap.
pub(crate) fn exp_gap_ns(rng: &mut StdRng, rate_per_s: u64, permille: u64) -> u64 {
    debug_assert!(rate_per_s > 0 && permille > 0);
    let mut u: f64 = rng.gen();
    if u <= 0.0 {
        u = f64::from_bits(1); // smallest positive; -ln stays finite
    }
    let mean_ns = 1e9 * 1000.0 / (rate_per_s as f64 * permille as f64);
    ((-u.ln()) * mean_ns).max(1.0) as u64
}

impl ChurnPool {
    /// Precompute the join/leave timeline over `[start, start+duration)`
    /// and seat the initial pool.
    pub(crate) fn new(spec: &ChurnSpec, start: SimTime, duration: SimTime, seed: u64) -> ChurnPool {
        let mut timeline = Vec::new();
        let end = start.as_nanos() + duration.as_nanos();
        // Separate sub-streams per process so tuning one rate never
        // perturbs the other's event times.
        for (rate, ev, salt) in [
            (spec.join_per_s, ChurnEvent::Join, 0x4A4F_494Eu64),
            (spec.leave_per_s, ChurnEvent::Leave, 0x4C45_4156u64),
        ] {
            if rate == 0 {
                continue;
            }
            let mut rng = StdRng::seed_from_u64(seed ^ salt); // rdv-lint: allow(rng-stream) -- per-phase churn sub-stream, salt-split from the scenario seed before the sim starts
            let mut at = start.as_nanos();
            loop {
                at = at.saturating_add(exp_gap_ns(&mut rng, rate, 1000));
                if at >= end {
                    break;
                }
                timeline.push((SimTime::from_nanos(at), ev));
            }
        }
        // Stable merge: ties resolve Join-before-Leave (enum order), then
        // by original push order — all deterministic.
        timeline.sort_by_key(|&(at, ev)| (at, matches!(ev, ChurnEvent::Leave)));
        ChurnPool {
            timeline,
            next: 0,
            active: (0..spec.initial_active).collect(),
            next_id: spec.initial_active,
            rng: StdRng::seed_from_u64(seed ^ 0x504F_4F4C), // rdv-lint: allow(rng-stream) -- client-pool sub-stream, salt-split from the scenario seed before the sim starts
            joins: 0,
            leaves: 0,
        }
    }

    /// Apply every churn event at or before `now`.
    pub(crate) fn advance(&mut self, now: SimTime) {
        while self.next < self.timeline.len() && self.timeline[self.next].0 <= now {
            let (_, ev) = self.timeline[self.next];
            self.next += 1;
            match ev {
                ChurnEvent::Join => {
                    self.active.push(self.next_id);
                    self.next_id += 1;
                    self.joins += 1;
                }
                ChurnEvent::Leave => {
                    if !self.active.is_empty() {
                        let idx = self.rng.gen_range(0..self.active.len());
                        self.active.swap_remove(idx);
                        self.leaves += 1;
                    }
                }
            }
        }
    }

    /// Pick a uniformly-random active client, if any are active.
    pub(crate) fn pick(&mut self, rng: &mut StdRng) -> Option<u32> {
        if self.active.is_empty() {
            None
        } else {
            Some(self.active[rng.gen_range(0..self.active.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ChurnSpec {
        ChurnSpec { initial_active: 4, join_per_s: 200_000, leave_per_s: 100_000 }
    }

    #[test]
    fn pool_grows_under_net_positive_churn() {
        let mut pool = ChurnPool::new(&spec(), SimTime::ZERO, SimTime::from_millis(1), 9);
        pool.advance(SimTime::from_millis(1));
        assert!(pool.joins > pool.leaves, "{} joins vs {} leaves", pool.joins, pool.leaves);
        assert!(pool.active.len() > 4);
        // Fresh ids are monotonically assigned past the initial pool.
        assert!(pool.active.iter().any(|&id| id >= 4));
    }

    #[test]
    fn timeline_is_seed_deterministic() {
        let a = ChurnPool::new(&spec(), SimTime::ZERO, SimTime::from_millis(1), 42);
        let b = ChurnPool::new(&spec(), SimTime::ZERO, SimTime::from_millis(1), 42);
        assert_eq!(a.timeline, b.timeline);
        let c = ChurnPool::new(&spec(), SimTime::ZERO, SimTime::from_millis(1), 43);
        assert_ne!(a.timeline, c.timeline);
    }

    #[test]
    fn leave_on_empty_pool_is_a_no_op() {
        let spec = ChurnSpec { initial_active: 0, join_per_s: 0, leave_per_s: 500_000 };
        let mut pool = ChurnPool::new(&spec, SimTime::ZERO, SimTime::from_millis(1), 1);
        pool.advance(SimTime::from_millis(1));
        assert_eq!(pool.leaves, 0);
        assert!(pool.active.is_empty());
        let mut rng = StdRng::seed_from_u64(0); // rdv-lint: allow(rng-stream) -- test-local stream with a fixed seed; never crosses a node or shard boundary
        assert_eq!(pool.pick(&mut rng), None);
    }
}
