//! Property tests for the open-loop generator's determinism contract
//! (ISSUE 7 satellite): same seed ⇒ byte-identical arrival schedule,
//! regardless of the process shard default, and with every structural
//! invariant (sorted times, in-range ids, window containment) holding
//! across the whole spec space.

use proptest::prelude::*;
use rdv_load::{ArrivalSchedule, ChurnSpec, LoadCurve, OpenLoopSpec, Spike};
use rdv_netsim::{set_default_shards, SimTime};

/// Build a spec from raw proptest draws. Ranges are chosen so every
/// combination is generatable in well under a millisecond of wall time.
#[allow(clippy::too_many_arguments)]
fn spec(
    clients: u32,
    objects: u32,
    skew: u32,
    rate_k: u64,
    dur_us: u64,
    spike: Option<(u32, u32, u32)>,
    churn: Option<(u32, u64, u64)>,
) -> OpenLoopSpec {
    let mut curve = LoadCurve::diurnal();
    if let Some((at, dur, add)) = spike {
        curve = curve.with_spike(Spike { at_permille: at, dur_permille: dur, add_permille: add });
    }
    OpenLoopSpec {
        clients,
        objects,
        zipf_skew_permille: skew,
        base_rate_per_s: rate_k * 1000,
        start: SimTime::from_micros(10),
        duration: SimTime::from_micros(dur_us),
        curve,
        churn: churn.map(|(initial, join, leave)| ChurnSpec {
            initial_active: initial,
            join_per_s: join * 1000,
            leave_per_s: leave * 1000,
        }),
    }
}

proptest! {
    /// Same (spec, seed) ⇒ byte-identical fingerprint, for any process
    /// shard default — the schedule is computed before any engine exists,
    /// so `--shards` / `--jobs` cannot reach it.
    #[test]
    fn same_seed_same_schedule_any_shards(
        seed in any::<u64>(),
        clients in 1u32..2000,
        objects in 1u32..64,
        skew in 0u32..1500,
        rate_k in 50u64..2000,
        dur_us in 50u64..400,
        spike_at in 0u32..800,
        churn_join in 0u64..500,
    ) {
        let spike = Some((spike_at, 200, 2500));
        let churn = if churn_join % 2 == 0 {
            Some((clients.min(64), churn_join, churn_join / 2))
        } else {
            None
        };
        let s = spec(clients, objects, skew, rate_k, dur_us, spike, churn);
        let baseline = ArrivalSchedule::generate(&s, seed).fingerprint();
        for shards in [1usize, 2, 8] {
            set_default_shards(shards);
            let again = ArrivalSchedule::generate(&s, seed).fingerprint();
            prop_assert_eq!(
                &again, &baseline,
                "schedule changed under default shards = {}", shards
            );
        }
        set_default_shards(1);
    }

    /// Structural invariants hold everywhere in the spec space: arrivals
    /// are time-sorted, stay inside the window, and draw in-range ids.
    #[test]
    fn schedules_are_sorted_and_in_range(
        seed in any::<u64>(),
        clients in 1u32..500,
        objects in 1u32..32,
        skew in 0u32..1200,
        rate_k in 50u64..1000,
        dur_us in 50u64..300,
    ) {
        let s = spec(clients, objects, skew, rate_k, dur_us, None, None);
        let sched = ArrivalSchedule::generate(&s, seed);
        let end = s.start.as_nanos() + s.duration.as_nanos();
        for w in sched.arrivals.windows(2) {
            prop_assert!(w[0].at <= w[1].at, "arrivals out of order");
        }
        for a in &sched.arrivals {
            prop_assert!(a.at >= s.start && a.at.as_nanos() < end, "arrival outside window");
            prop_assert!(a.client < clients, "client id out of range");
            prop_assert!(a.obj < objects, "object id out of range");
        }
    }

    /// Different seeds diverge (the generator actually uses its seed) on
    /// any spec dense enough to produce arrivals.
    #[test]
    fn different_seeds_diverge(
        seed in any::<u64>(),
        clients in 2u32..500,
        objects in 2u32..32,
    ) {
        let s = spec(clients, objects, 800, 1000, 200, None, None);
        let a = ArrivalSchedule::generate(&s, seed).fingerprint();
        let b = ArrivalSchedule::generate(&s, seed.wrapping_add(1)).fingerprint();
        prop_assert_ne!(a, b, "seed had no effect");
    }
}
