//! SLO quantile correctness (ISSUE 7 satellite): the p50/p99/p999 values
//! read back out of the rdv-metrics gauge plane must match an exact
//! nearest-rank oracle computed from the raw sorted samples — including
//! the edge cases (empty window, single sample, all-equal values).

use rdv_load::SloSeries;
use rdv_metrics::{MetricSet, MetricsConfig};

/// Exact nearest-rank oracle, written independently of the library code:
/// sort ascending, take the `⌈p·n⌉`-th sample (1-based), clamped.
fn oracle(samples: &[u64], p_num: u64, p_den: u64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut s = samples.to_vec();
    s.sort_unstable();
    let n = s.len() as u64;
    let mut rank = (p_num * n).div_ceil(p_den);
    rank = rank.clamp(1, n);
    s[(rank - 1) as usize]
}

/// Compute a series over one window, emit it into a fresh MetricSet, and
/// read the quantiles back from the gauge series.
fn roundtrip(latencies_ns: &[u64]) -> (u64, u64, u64) {
    let interval = 1_000_000; // one 1 ms window
    let completions: Vec<(u64, u64)> = latencies_ns.iter().map(|&l| (500_000u64, l)).collect();
    let series = SloSeries::compute(&[], &completions, interval, interval);
    let mut set = MetricSet::enabled(MetricsConfig::default());
    series.emit(&mut set);
    let read = |name: &str| {
        set.series_by_name(name)
            .unwrap_or_else(|| panic!("{name} not emitted"))
            .points()
            .next()
            .expect("one window")
            .1
    };
    (read("load.p50_us"), read("load.p99_us"), read("load.p999_us"))
}

#[test]
fn quantiles_match_oracle_on_synthetic_series() {
    let cases: Vec<Vec<u64>> = vec![
        (1..=100).map(|v| v * 1000).collect(),
        (1..=10).map(|v| v * 1000).collect(),
        (1..=1000).rev().map(|v| v * 1000).collect(), // unsorted input
        vec![5000, 1000, 3000, 3000, 2000, 9000, 7000],
        (0..997).map(|v| (v * 37 % 991) * 1000).collect(), // scrambled
    ];
    for samples in &cases {
        let (p50, p99, p999) = roundtrip(samples);
        assert_eq!(p50, oracle(samples, 500, 1000) / 1000, "p50 on {} samples", samples.len());
        assert_eq!(p99, oracle(samples, 990, 1000) / 1000, "p99 on {} samples", samples.len());
        assert_eq!(p999, oracle(samples, 999, 1000) / 1000, "p999 on {} samples", samples.len());
    }
}

#[test]
fn empty_window_reads_zero() {
    let (p50, p99, p999) = roundtrip(&[]);
    assert_eq!((p50, p99, p999), (0, 0, 0));
}

#[test]
fn single_sample_is_every_quantile() {
    let (p50, p99, p999) = roundtrip(&[42_000]);
    assert_eq!((p50, p99, p999), (42, 42, 42));
}

#[test]
fn all_equal_samples_collapse_every_quantile() {
    let samples = vec![7000u64; 64];
    let (p50, p99, p999) = roundtrip(&samples);
    assert_eq!((p50, p99, p999), (7, 7, 7));
}

#[test]
fn offered_and_goodput_scale_exactly() {
    // 8 arrivals and 6 completions inside a 1 ms window scale to per-second.
    let arrivals: Vec<u64> = (1..=8).map(|i| i * 100_000).collect();
    let completions: Vec<(u64, u64)> = (1..=6).map(|i| (i * 150_000, 2000)).collect();
    let series = SloSeries::compute(&arrivals, &completions, 1_000_000, 1_000_000);
    let mut set = MetricSet::enabled(MetricsConfig::default());
    series.emit(&mut set);
    let point = |name: &str| set.series_by_name(name).unwrap().points().next().unwrap().1;
    assert_eq!(point("load.offered_per_s"), 8000);
    assert_eq!(point("load.goodput_per_s"), 6000);
}
