//! The open-loop invariant under saturation (ISSUE 7 acceptance
//! criterion): offered load is a pure function of the schedule. When
//! service latency is inflated 10× — enough to push completions far
//! behind arrivals — the issue times of every batch access are byte
//! identical, and only the completion side (latency quantiles, goodput
//! timing) moves. A closed-loop driver would fail this instantly: its
//! next issue waits on the previous completion.

use rdv_load::{
    ArrivalSchedule, LoadCurve, LoadFabricSpec, LoadRun, OpenLoopSpec, ReplogSpec, Spike,
};
use rdv_netsim::SimTime;

fn workload() -> (LoadFabricSpec, OpenLoopSpec, ReplogSpec) {
    let fabric = LoadFabricSpec::small();
    let replog = ReplogSpec::small();
    let open = OpenLoopSpec {
        zipf_skew_permille: 900,
        curve: LoadCurve::flat().with_spike(Spike {
            at_permille: 400,
            dur_permille: 200,
            add_permille: 2000,
        }),
        ..OpenLoopSpec::flat(10_000, replog.heads, 400_000, SimTime::from_micros(600))
    };
    (fabric, open, replog)
}

#[test]
fn offered_rate_survives_10x_service_inflation() {
    let (fabric, open, replog) = workload();
    let normal = LoadRun::execute(&fabric, &open, &replog, None, 0xA11CE, false);

    let mut slow = fabric;
    slow.serve_delay = SimTime::from_nanos(fabric.serve_delay.as_nanos() * 10);
    // Keep the watchdog from reclassifying slow-but-alive accesses.
    slow.access_timeout = SimTime::from_nanos(fabric.access_timeout.as_nanos() * 10);
    let inflated = LoadRun::execute(&slow, &open, &replog, None, 0xA11CE, false);

    // The open-loop core: every issue time is identical. Offered load
    // never bent to the slower fabric.
    assert_eq!(
        normal.issued_ns, inflated.issued_ns,
        "issue times moved when service latency was inflated 10x"
    );
    assert_eq!(normal.scheduled_batches, inflated.scheduled_batches);
    assert_eq!(normal.counters.get("load.arrivals"), inflated.counters.get("load.arrivals"));

    // And the inflation was real: completions got slower.
    let mean = |run: &LoadRun| {
        run.completions.iter().map(|&(_, lat)| lat).sum::<u64>() / run.completions.len() as u64
    };
    assert!(
        mean(&inflated) > mean(&normal),
        "10x service delay did not slow completions ({} vs {})",
        mean(&inflated),
        mean(&normal)
    );
}

#[test]
fn issue_times_equal_the_precomputed_schedule() {
    let (fabric, open, replog) = workload();
    let schedule = ArrivalSchedule::generate(&open, 0xA11CE);
    let batches = rdv_load::replog::batches(&schedule, &replog);
    let run = LoadRun::execute(&fabric, &open, &replog, None, 0xA11CE, false);
    let mut expected: Vec<u64> = batches.iter().map(|b| b.at.as_nanos()).collect();
    expected.sort_unstable();
    assert_eq!(run.issued_ns, expected, "the fabric issued at times other than the schedule's");
}

#[test]
fn saturation_with_blip_still_keeps_issue_times() {
    use rdv_load::Blip;
    let (fabric, open, replog) = workload();
    let blip = Blip {
        at: SimTime::from_micros(200),
        dur: SimTime::from_micros(150),
        partition_holder: Some(0),
        crash_holder: Some(1),
    };
    let healthy = LoadRun::execute(&fabric, &open, &replog, None, 0xB11B, false);
    let blipped = LoadRun::execute(&fabric, &open, &replog, Some(&blip), 0xB11B, false);
    // Even a mid-run fault window cannot move offered load: arrivals are
    // scheduled, not reactive. Only completions/failures differ.
    assert_eq!(healthy.issued_ns, blipped.issued_ns);
    assert!(
        blipped.counters.get("access_timeouts") > healthy.counters.get("access_timeouts"),
        "blip should force watchdog work"
    );
}
