//! The RPC client node.
//!
//! Drives a plan of calls (scheduled via `Sim::schedule` with the plan
//! index as the timer tag) and records per-call latency. Clients also model
//! the *sender-side serialization cost*: a planned call may carry
//! `serialize_ns`, which the client spends (as simulated time) before the
//! request leaves — the producer half of the §2 cost story.

use rdv_det::DetMap;

use rdv_netsim::{Node, NodeCtx, Packet, PortId, SimTime};
use rdv_objspace::ObjId;

use crate::error::RpcError;
use crate::proto::{RpcBody, RpcMsg};

/// One planned call.
#[derive(Debug, Clone)]
pub struct PlannedCall {
    /// Server inbox (or middleware inbox when calling through a proxy).
    pub server: ObjId,
    /// Service ID.
    pub service: u32,
    /// Method ID.
    pub method: u32,
    /// Serialized arguments.
    pub args: Vec<u8>,
    /// Simulated sender-side serialization time before transmission.
    pub serialize_ns: u64,
    /// Look the server up by name through this discovery service first
    /// (adds the lookup round trip; experiment A2).
    pub lookup_via: Option<(ObjId, String)>,
    /// Give up after this long (0 = wait forever).
    pub timeout_ns: u64,
}

/// A completed call.
#[derive(Debug, Clone)]
pub struct CallRecord {
    /// Plan index.
    pub index: usize,
    /// Issue time (when the timer fired, before serialization).
    pub issued: SimTime,
    /// Completion time.
    pub completed: SimTime,
    /// The reply payload or the error.
    pub result: Result<Vec<u8>, RpcError>,
}

impl CallRecord {
    /// End-to-end latency including sender-side serialization.
    pub fn latency(&self) -> SimTime {
        self.completed.saturating_sub(self.issued)
    }
}

#[derive(Debug)]
enum PendingState {
    LookingUp { index: usize },
    Called { index: usize },
}

#[derive(Debug)]
struct Pending {
    issued: SimTime,
    state: PendingState,
}

/// The client node.
pub struct ClientNode {
    label: String,
    inbox: ObjId,
    /// The call plan; timer tag `i` issues `plan[i]`.
    pub plan: Vec<PlannedCall>,
    pending: DetMap<u64, Pending>,
    deferred: DetMap<u64, (u64, RpcMsg)>, // defer id -> (req, msg)
    next_req: u64,
    next_defer: u64,
    next_trace: u64,
    /// Completed calls in completion order.
    pub records: Vec<CallRecord>,
}

/// Timer-tag bit marking a deferred (post-serialization) transmission.
const DEFER: u64 = 1 << 62;
/// Timer-tag bit marking a call deadline (low bits = req id).
const TIMEOUT: u64 = 1 << 61;

impl ClientNode {
    /// Create a client whose reply address is `inbox`.
    pub fn new(label: impl Into<String>, inbox: ObjId) -> ClientNode {
        ClientNode {
            label: label.into(),
            inbox,
            plan: Vec::new(),
            pending: DetMap::new(),
            deferred: DetMap::new(),
            next_req: 1,
            next_defer: 0,
            next_trace: 1,
            records: Vec::new(),
        }
    }

    /// The client's inbox.
    pub fn inbox(&self) -> ObjId {
        self.inbox
    }

    /// Calls still in flight.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    fn transmit(&mut self, ctx: &mut NodeCtx<'_>, msg: RpcMsg) {
        let trace = self.next_trace;
        self.next_trace += 1;
        ctx.send(PortId(0), Packet::new(msg.encode(), trace));
    }

    fn issue(&mut self, ctx: &mut NodeCtx<'_>, index: usize) {
        let call = self.plan[index].clone();
        let req = self.next_req;
        self.next_req += 1;
        if call.timeout_ns > 0 {
            ctx.set_timer(SimTime::from_nanos(call.timeout_ns), TIMEOUT | req);
        }
        match &call.lookup_via {
            Some((directory, name)) => {
                self.pending.insert(
                    req,
                    Pending { issued: ctx.now, state: PendingState::LookingUp { index } },
                );
                let msg = RpcMsg::new(
                    *directory,
                    self.inbox,
                    RpcBody::Lookup { req, name: name.clone() },
                );
                self.transmit(ctx, msg);
            }
            None => {
                self.pending.insert(
                    req,
                    Pending { issued: ctx.now, state: PendingState::Called { index } },
                );
                self.send_request(ctx, req, call.server, &call);
            }
        }
    }

    fn send_request(&mut self, ctx: &mut NodeCtx<'_>, req: u64, server: ObjId, call: &PlannedCall) {
        let msg = RpcMsg::new(
            server,
            self.inbox,
            RpcBody::Request {
                req,
                service: call.service,
                method: call.method,
                args: call.args.clone(),
            },
        );
        if call.serialize_ns == 0 {
            self.transmit(ctx, msg);
        } else {
            let id = self.next_defer;
            self.next_defer += 1;
            self.deferred.insert(id, (req, msg));
            ctx.set_timer(SimTime::from_nanos(call.serialize_ns), DEFER | id);
        }
    }

    fn complete(&mut self, now: SimTime, req: u64, result: Result<Vec<u8>, RpcError>) {
        if let Some(p) = self.pending.remove(&req) {
            let index = match p.state {
                PendingState::Called { index } | PendingState::LookingUp { index } => index,
            };
            self.records.push(CallRecord { index, issued: p.issued, completed: now, result });
        }
    }
}

impl Node for ClientNode {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _port: PortId, packet: Packet) {
        let Ok(Some(msg)) = RpcMsg::decode(&packet.payload) else { return };
        if msg.dst != self.inbox {
            return;
        }
        match msg.body {
            RpcBody::Response { req, payload } => self.complete(ctx.now, req, Ok(payload)),
            RpcBody::Error { req, code } => {
                self.complete(ctx.now, req, Err(RpcError::from_code(code)));
            }
            RpcBody::LookupResp { req, server } => {
                let Some(p) = self.pending.get_mut(&req) else { return };
                let PendingState::LookingUp { index } = p.state else { return };
                if server.is_nil() {
                    self.complete(ctx.now, req, Err(RpcError::NoSuchService(0)));
                    return;
                }
                p.state = PendingState::Called { index };
                let call = self.plan[index].clone();
                self.send_request(ctx, req, server, &call);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        if tag & DEFER != 0 {
            if let Some((_req, msg)) = self.deferred.remove(&(tag & !DEFER)) {
                self.transmit(ctx, msg);
            }
        } else if tag & TIMEOUT != 0 {
            let req = tag & !TIMEOUT;
            if self.pending.contains_key(&req) {
                self.complete(ctx.now, req, Err(RpcError::Timeout));
            }
        } else if (tag as usize) < self.plan.len() {
            self.issue(ctx, tag as usize);
        }
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerNode;
    use crate::service::{echo_methods, EchoService};
    use rdv_netsim::{LinkSpec, Sim, SimConfig};

    fn wire_pair() -> (Sim, rdv_netsim::NodeId, rdv_netsim::NodeId) {
        let mut sim = Sim::new(SimConfig::default());
        let mut client = ClientNode::new("cli", ObjId(0xC));
        client.plan = vec![PlannedCall {
            server: ObjId(0x5),
            service: 1,
            method: echo_methods::ECHO,
            args: b"ping".to_vec(),
            serialize_ns: 0,
            lookup_via: None,
            timeout_ns: 0,
        }];
        let mut server = ServerNode::new("srv", ObjId(0x5));
        server.register(1, Box::new(EchoService::default()));
        let c = sim.add_node(Box::new(client));
        let s = sim.add_node(Box::new(server));
        sim.connect(c, s, LinkSpec::rack());
        (sim, c, s)
    }

    #[test]
    fn call_roundtrip_on_a_wire() {
        let (mut sim, c, s) = wire_pair();
        sim.schedule(SimTime::from_micros(1), c, 0);
        sim.run_until_idle();
        let client = sim.node_as::<ClientNode>(c).unwrap();
        assert_eq!(client.records.len(), 1);
        assert_eq!(client.records[0].result.as_deref(), Ok(&b"ping"[..]));
        assert!(client.records[0].latency() > SimTime::ZERO);
        assert_eq!(sim.node_as::<ServerNode>(s).unwrap().requests, 1);
    }

    #[test]
    fn serialization_delay_shows_up_in_latency() {
        let (mut sim0, c0, _) = wire_pair();
        sim0.schedule(SimTime::from_micros(1), c0, 0);
        sim0.run_until_idle();
        let base = sim0.node_as::<ClientNode>(c0).unwrap().records[0].latency();

        let (mut sim1, c1, _) = wire_pair();
        sim1.node_as_mut::<ClientNode>(c1).unwrap().plan[0].serialize_ns = 50_000;
        sim1.schedule(SimTime::from_micros(1), c1, 0);
        sim1.run_until_idle();
        let slow = sim1.node_as::<ClientNode>(c1).unwrap().records[0].latency();
        assert_eq!(slow - base, SimTime::from_nanos(50_000));
    }

    #[test]
    fn timeout_fires_when_the_server_never_answers() {
        // Client wired to a sink that swallows requests.
        struct Blackhole;
        impl rdv_netsim::Node for Blackhole {
            fn on_packet(&mut self, _: &mut NodeCtx<'_>, _: PortId, _: rdv_netsim::Packet) {}
        }
        let mut sim = rdv_netsim::Sim::new(rdv_netsim::SimConfig::default());
        let mut client = ClientNode::new("cli", ObjId(0xC));
        client.plan = vec![PlannedCall {
            server: ObjId(0xDEAD),
            service: 1,
            method: 0,
            args: vec![],
            serialize_ns: 0,
            lookup_via: None,
            timeout_ns: 500_000, // 500 µs deadline
        }];
        let c = sim.add_node(Box::new(client));
        let b = sim.add_node(Box::new(Blackhole));
        sim.connect(c, b, rdv_netsim::LinkSpec::rack());
        sim.schedule(SimTime::from_micros(1), c, 0);
        sim.run_until_idle();
        let client = sim.node_as::<ClientNode>(c).unwrap();
        assert_eq!(client.records.len(), 1);
        assert_eq!(client.records[0].result, Err(RpcError::Timeout));
        assert_eq!(client.records[0].latency(), SimTime::from_micros(500));
        assert_eq!(client.outstanding(), 0);
    }

    #[test]
    fn timeout_does_not_fire_on_answered_calls() {
        let (mut sim, c, _) = wire_pair();
        sim.node_as_mut::<ClientNode>(c).unwrap().plan[0].timeout_ns = 10_000_000;
        sim.schedule(SimTime::from_micros(1), c, 0);
        sim.run_until_idle();
        let client = sim.node_as::<ClientNode>(c).unwrap();
        assert_eq!(client.records.len(), 1, "no duplicate timeout record");
        assert!(client.records[0].result.is_ok());
    }

    #[test]
    fn unknown_service_yields_error_record() {
        let (mut sim, c, _) = wire_pair();
        sim.node_as_mut::<ClientNode>(c).unwrap().plan[0].service = 99;
        sim.schedule(SimTime::from_micros(1), c, 0);
        sim.run_until_idle();
        let client = sim.node_as::<ClientNode>(c).unwrap();
        assert!(client.records[0].result.is_err());
        assert_eq!(client.outstanding(), 0);
    }
}
