//! Server-side service abstraction.
//!
//! A [`Service`] dispatches method calls and reports the **compute cost**
//! of each call in model-nanoseconds; the server node turns that into
//! simulated time before the response leaves. This is how request-time
//! deserialization/loading (the §2 "70%" cost) becomes visible in measured
//! RPC latencies.

use crate::error::RpcError;
use rdv_wire::cost::{CostMeter, Phase};
use rdv_wire::sparsemodel::{self, SparseModel};
use rdv_wire::{WireReader, WireWriter};

/// A successful dispatch: the reply bytes plus the simulated compute time
/// the server must spend before sending them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceReply {
    /// Serialized return value.
    pub payload: Vec<u8>,
    /// Simulated server-side processing time, nanoseconds.
    pub compute_ns: u64,
}

/// A dispatchable service.
///
/// `Send` because the server node holding the service migrates across the
/// sharded engine's worker threads (see `rdv_netsim::Node`).
pub trait Service: std::any::Any + Send {
    /// Handle `method(args)`.
    fn dispatch(&mut self, method: u32, args: &[u8]) -> Result<ServiceReply, RpcError>;

    /// Service name (for discovery-service registration).
    fn name(&self) -> &str;
}

/// Method IDs of [`EchoService`].
pub mod echo_methods {
    /// Return the arguments unchanged.
    pub const ECHO: u32 = 0;
    /// Return the byte length of the arguments.
    pub const LEN: u32 = 1;
}

/// A trivial echo service (latency-floor measurements).
#[derive(Debug, Default)]
pub struct EchoService {
    /// Calls served.
    pub calls: u64,
}

impl Service for EchoService {
    fn dispatch(&mut self, method: u32, args: &[u8]) -> Result<ServiceReply, RpcError> {
        self.calls += 1;
        match method {
            echo_methods::ECHO => Ok(ServiceReply { payload: args.to_vec(), compute_ns: 100 }),
            echo_methods::LEN => {
                let mut w = WireWriter::new();
                w.put_uvarint(args.len() as u64);
                Ok(ServiceReply { payload: w.into_vec(), compute_ns: 100 })
            }
            m => Err(RpcError::NoSuchMethod(m)),
        }
    }

    fn name(&self) -> &str {
        "echo"
    }
}

/// Method IDs of [`ModelServingService`].
pub mod model_methods {
    /// args = serialized model ‖ activation; returns the output vector.
    /// The call-by-value path: the model travels with every request.
    pub const INFER_WITH_MODEL: u32 = 0;
    /// args = model name ‖ activation; the server holds the *serialized*
    /// personalized model and must deserialize + load it at request time —
    /// the TrIMS-style scenario behind the paper's "70%" claim.
    pub const INFER_BY_NAME: u32 = 1;
}

/// The paper's §2 model-serving workload, RPC style: every request carries
/// the serialized personalized model, which the server must deserialize and
/// load before inference — at request time, on the critical path.
#[derive(Debug, Default)]
pub struct ModelServingService {
    /// Requests served.
    pub calls: u64,
    /// Phase accounting across all calls (for S1 reporting).
    pub meter: CostMeter,
    /// Serialized models stored server-side, by name (`INFER_BY_NAME`).
    pub stored: rdv_det::DetMap<String, Vec<u8>>,
}

impl ModelServingService {
    /// Store a serialized model under `name` for `INFER_BY_NAME`.
    pub fn store_model(&mut self, name: impl Into<String>, bytes: Vec<u8>) {
        self.stored.insert(name.into(), bytes);
    }

    /// Encode arguments for `INFER_BY_NAME`.
    pub fn encode_name_args(name: &str, activation: &[f32]) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(name.len() + activation.len() * 4 + 16);
        w.put_len_prefixed(name.as_bytes());
        w.put_uvarint(activation.len() as u64);
        for a in activation {
            w.put_f32(*a);
        }
        w.into_vec()
    }

    fn decode_name_args(args: &[u8]) -> Result<(String, Vec<f32>), RpcError> {
        let mut r = WireReader::new(args);
        let name =
            String::from_utf8(r.get_len_prefixed(1 << 16).map_err(|_| RpcError::BadArgs)?.to_vec())
                .map_err(|_| RpcError::BadArgs)?;
        let n = r.get_uvarint().map_err(|_| RpcError::BadArgs)? as usize;
        let mut activation = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            activation.push(r.get_f32().map_err(|_| RpcError::BadArgs)?);
        }
        Ok((name, activation))
    }

    fn infer_from_bytes(
        &mut self,
        model_bytes: &[u8],
        activation: &[f32],
    ) -> Result<ServiceReply, RpcError> {
        // Per-request meter so compute_ns reflects THIS call; also folded
        // into the service-lifetime meter for S1 reporting.
        let mut meter = CostMeter::new();
        let model: SparseModel = sparsemodel::deserialize_model(model_bytes, &mut meter)
            .map_err(|_| RpcError::BadArgs)?;
        let loaded = sparsemodel::load_model(model, &mut meter);
        let output = loaded.infer(activation, &mut meter);
        let compute_ns = meter.phase_ns(Phase::Deserialize)
            + meter.phase_ns(Phase::Load)
            + meter.phase_ns(Phase::Compute);
        for phase in [Phase::Deserialize, Phase::Load, Phase::Compute] {
            self.meter.charge_direct_ns(phase, meter.phase_ns(phase));
        }
        let mut w = WireWriter::with_capacity(output.len() * 4 + 8);
        w.put_uvarint(output.len() as u64);
        for v in &output {
            w.put_f32(*v);
        }
        Ok(ServiceReply { payload: w.into_vec(), compute_ns })
    }

    /// Encode arguments for `INFER_WITH_MODEL`.
    pub fn encode_args(model_bytes: &[u8], activation: &[f32]) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(model_bytes.len() + activation.len() * 4 + 16);
        w.put_len_prefixed(model_bytes);
        w.put_uvarint(activation.len() as u64);
        for a in activation {
            w.put_f32(*a);
        }
        w.into_vec()
    }

    fn decode_args(args: &[u8]) -> Result<(Vec<u8>, Vec<f32>), RpcError> {
        let mut r = WireReader::new(args);
        let model = r.get_len_prefixed(1 << 30).map_err(|_| RpcError::BadArgs)?.to_vec();
        let n = r.get_uvarint().map_err(|_| RpcError::BadArgs)? as usize;
        let mut activation = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            activation.push(r.get_f32().map_err(|_| RpcError::BadArgs)?);
        }
        Ok((model, activation))
    }
}

impl Service for ModelServingService {
    fn dispatch(&mut self, method: u32, args: &[u8]) -> Result<ServiceReply, RpcError> {
        self.calls += 1;
        match method {
            model_methods::INFER_WITH_MODEL => {
                let (model_bytes, activation) = Self::decode_args(args)?;
                self.infer_from_bytes(&model_bytes, &activation)
            }
            model_methods::INFER_BY_NAME => {
                let (name, activation) = Self::decode_name_args(args)?;
                let bytes = self.stored.remove(&name).ok_or(RpcError::BadArgs)?;
                let out = self.infer_from_bytes(&bytes, &activation);
                self.stored.insert(name, bytes);
                out
            }
            m => Err(RpcError::NoSuchMethod(m)),
        }
    }

    fn name(&self) -> &str {
        "model_serving"
    }
}

/// Decode the output vector returned by `INFER_WITH_MODEL`.
pub fn decode_infer_output(payload: &[u8]) -> Result<Vec<f32>, RpcError> {
    let mut r = WireReader::new(payload);
    let n = r.get_uvarint().map_err(|_| RpcError::BadArgs)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(r.get_f32().map_err(|_| RpcError::BadArgs)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdv_wire::sparsemodel::SparseModelSpec;

    #[test]
    fn echo_roundtrip() {
        let mut s = EchoService::default();
        let reply = s.dispatch(echo_methods::ECHO, b"hello").unwrap();
        assert_eq!(reply.payload, b"hello");
        assert!(reply.compute_ns > 0);
        assert_eq!(s.calls, 1);
        assert!(matches!(s.dispatch(99, b""), Err(RpcError::NoSuchMethod(99))));
    }

    #[test]
    fn model_serving_call_by_value() {
        let spec =
            SparseModelSpec { layers: 2, rows: 64, cols: 64, nnz_per_row: 4, vocab: 32, seed: 5 };
        let model = SparseModel::generate(&spec);
        let mut meter = CostMeter::new();
        let model_bytes = sparsemodel::serialize_model(&model, &mut meter);
        let activation = vec![1.0f32; 64];
        let args = ModelServingService::encode_args(&model_bytes, &activation);

        let mut svc = ModelServingService::default();
        let reply = svc.dispatch(model_methods::INFER_WITH_MODEL, &args).unwrap();
        let out = decode_infer_output(&reply.payload).unwrap();
        assert_eq!(out.len(), 64);
        // The server paid deserialization + loading at request time.
        assert!(svc.meter.phase_ns(Phase::Deserialize) > 0);
        assert!(svc.meter.phase_ns(Phase::Load) > 0);
        assert!(reply.compute_ns >= svc.meter.phase_ns(Phase::Deserialize));
    }

    #[test]
    fn corrupt_args_rejected() {
        let mut svc = ModelServingService::default();
        assert!(matches!(
            svc.dispatch(model_methods::INFER_WITH_MODEL, &[1, 2, 3]),
            Err(RpcError::BadArgs)
        ));
    }

    #[test]
    fn deser_load_dominates_compute_for_sparse_models() {
        // The S1 claim at service granularity: request-time deserialize +
        // load is the majority of server processing for sparse models.
        let spec = SparseModelSpec {
            layers: 4,
            rows: 512,
            cols: 512,
            nnz_per_row: 8,
            vocab: 512,
            seed: 6,
        };
        let model = SparseModel::generate(&spec);
        let mut meter = CostMeter::new();
        let model_bytes = sparsemodel::serialize_model(&model, &mut meter);
        let activation = vec![0.5f32; 512];
        let args = ModelServingService::encode_args(&model_bytes, &activation);
        let mut svc = ModelServingService::default();
        svc.dispatch(model_methods::INFER_WITH_MODEL, &args).unwrap();
        let deser_load = svc.meter.phase_ns(Phase::Deserialize) + svc.meter.phase_ns(Phase::Load);
        let compute = svc.meter.phase_ns(Phase::Compute);
        assert!(
            deser_load as f64 > 0.5 * (deser_load + compute) as f64,
            "deser+load {deser_load} vs compute {compute}"
        );
    }
}
