//! # rdv-rpc — the call-by-value RPC baseline
//!
//! The paper's §1–2 indict RPC as *"fundamentally location- and
//! compute-centric"*: the invoker names the executor, arguments and returns
//! are serialized in their entirety, and operators bolt on *"discovery
//! services, load balancers, or other forms of middleware"* to soften the
//! location-coupling — at the cost of extra hops and complexity.
//!
//! To measure any of that, the baseline has to exist. This crate is a
//! complete, from-scratch RPC framework over the same simulated fabric the
//! rendezvous system uses:
//!
//! - [`proto`] — the RPC wire protocol (riding the same 33-byte objnet
//!   header, addressed to *host inboxes* — location! — not objects).
//! - [`service`] — server-side service/dispatch abstraction. Service
//!   handlers return a *compute cost* that the server node converts into
//!   simulated time, so serialization and deserialization costs show up in
//!   measured latencies exactly as they would on a real server.
//! - [`server`] / [`client`] — `rdv-netsim` nodes for both ends.
//! - [`middleware`] — the indirection layers the paper calls out: a
//!   round-robin load balancer and a name-lookup discovery service
//!   (experiment A2 measures what each hop costs).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod error;
pub mod middleware;
pub mod proto;
pub mod server;
pub mod service;

pub use client::{CallRecord, ClientNode, PlannedCall};
pub use error::RpcError;
pub use proto::{RpcBody, RpcMsg};
pub use server::ServerNode;
pub use service::{Service, ServiceReply};
