//! RPC error codes.

use std::fmt;

/// Errors surfaced to RPC callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// No service with the requested ID at this server.
    NoSuchService(u32),
    /// The service does not implement the requested method.
    NoSuchMethod(u32),
    /// Arguments failed to decode.
    BadArgs,
    /// Transport-level failure.
    Transport,
    /// The callee refused (overload, shutdown).
    Unavailable,
    /// No response within the caller's deadline.
    Timeout,
}

impl RpcError {
    /// Stable wire code.
    pub fn code(self) -> u8 {
        match self {
            RpcError::NoSuchService(_) => 1,
            RpcError::NoSuchMethod(_) => 2,
            RpcError::BadArgs => 3,
            RpcError::Transport => 4,
            RpcError::Unavailable => 5,
            RpcError::Timeout => 6,
        }
    }

    /// Reconstruct from a wire code (detail fields are lost).
    pub fn from_code(code: u8) -> RpcError {
        match code {
            1 => RpcError::NoSuchService(0),
            2 => RpcError::NoSuchMethod(0),
            3 => RpcError::BadArgs,
            5 => RpcError::Unavailable,
            6 => RpcError::Timeout,
            _ => RpcError::Transport,
        }
    }
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::NoSuchService(s) => write!(f, "no such service {s}"),
            RpcError::NoSuchMethod(m) => write!(f, "no such method {m}"),
            RpcError::BadArgs => write!(f, "arguments failed to decode"),
            RpcError::Transport => write!(f, "transport failure"),
            RpcError::Unavailable => write!(f, "service unavailable"),
            RpcError::Timeout => write!(f, "call timed out"),
        }
    }
}

impl std::error::Error for RpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip_modulo_detail() {
        for e in [
            RpcError::NoSuchService(7),
            RpcError::NoSuchMethod(9),
            RpcError::BadArgs,
            RpcError::Transport,
            RpcError::Unavailable,
            RpcError::Timeout,
        ] {
            let back = RpcError::from_code(e.code());
            assert_eq!(back.code(), e.code());
        }
    }
}
