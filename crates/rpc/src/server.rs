//! The RPC server node.

use rdv_det::DetMap;

use rdv_netsim::{Node, NodeCtx, Packet, PortId, SimTime};
use rdv_objspace::ObjId;

use crate::proto::{RpcBody, RpcMsg};
use crate::service::Service;

/// An RPC server: a host inbox plus registered services.
pub struct ServerNode {
    label: String,
    inbox: ObjId,
    services: DetMap<u32, Box<dyn Service>>,
    /// Fixed per-request software overhead (request parse, scheduling).
    pub base_delay: SimTime,
    deferred: DetMap<u64, RpcMsg>,
    next_defer: u64,
    next_trace: u64,
    /// Requests served (including errors).
    pub requests: u64,
}

impl ServerNode {
    /// Create a server reachable at `inbox`.
    pub fn new(label: impl Into<String>, inbox: ObjId) -> ServerNode {
        ServerNode {
            label: label.into(),
            inbox,
            services: DetMap::new(),
            base_delay: SimTime::from_micros(2),
            deferred: DetMap::new(),
            next_defer: 0,
            next_trace: 1,
            requests: 0,
        }
    }

    /// The server's inbox.
    pub fn inbox(&self) -> ObjId {
        self.inbox
    }

    /// Register `service` under `id`.
    pub fn register(&mut self, id: u32, service: Box<dyn Service>) {
        self.services.insert(id, service);
    }

    /// Borrow a registered service, downcast to its concrete type.
    pub fn service_as<T: Service>(&self, id: u32) -> Option<&T> {
        self.services.get(&id).and_then(|s| (s.as_ref() as &dyn std::any::Any).downcast_ref())
    }

    fn reply_later(&mut self, ctx: &mut NodeCtx<'_>, delay: SimTime, msg: RpcMsg) {
        let id = self.next_defer;
        self.next_defer += 1;
        self.deferred.insert(id, msg);
        ctx.set_timer(delay, id);
    }
}

impl Node for ServerNode {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _port: PortId, packet: Packet) {
        let Ok(Some(msg)) = RpcMsg::decode(&packet.payload) else { return };
        if msg.dst != self.inbox {
            return; // flooded copy for someone else
        }
        if let RpcBody::Request { req, service, method, args } = msg.body {
            self.requests += 1;
            let reply_body = match self.services.get_mut(&service) {
                Some(svc) => match svc.dispatch(method, &args) {
                    Ok(reply) => {
                        let delay = self.base_delay + SimTime::from_nanos(reply.compute_ns);
                        let out = RpcMsg::new(
                            msg.src,
                            self.inbox,
                            RpcBody::Response { req, payload: reply.payload },
                        );
                        self.reply_later(ctx, delay, out);
                        return;
                    }
                    Err(e) => RpcBody::Error { req, code: e.code() },
                },
                None => RpcBody::Error {
                    req,
                    code: crate::error::RpcError::NoSuchService(service).code(),
                },
            };
            let out = RpcMsg::new(msg.src, self.inbox, reply_body);
            let delay = self.base_delay;
            self.reply_later(ctx, delay, out);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        if let Some(msg) = self.deferred.remove(&tag) {
            let trace = self.next_trace;
            self.next_trace += 1;
            ctx.send(PortId(0), Packet::new(msg.encode(), trace));
        }
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::EchoService;

    #[test]
    fn register_and_introspect() {
        let mut s = ServerNode::new("srv", ObjId(0xF00));
        s.register(1, Box::new(EchoService::default()));
        assert!(s.service_as::<EchoService>(1).is_some());
        assert!(s.service_as::<EchoService>(2).is_none());
        assert_eq!(s.inbox(), ObjId(0xF00));
    }
}
