//! The middleware the paper says operators deploy to soften RPC's
//! location-coupling (§1): *"data center operators often deploy discovery
//! services, load balancers, or other forms of middleware … These extra
//! indirection layers make the execution endpoint abstract, but at the cost
//! of increased latency and added system complexity."*
//!
//! Experiment A2 measures exactly that cost by inserting these nodes
//! between client and server.

use rdv_det::DetMap;

use rdv_netsim::{Node, NodeCtx, Packet, PortId, SimTime};
use rdv_objspace::ObjId;

use crate::proto::{RpcBody, RpcMsg};

/// A round-robin L7 load balancer: proxies requests to backends and relays
/// responses back to the original caller.
pub struct LoadBalancerNode {
    label: String,
    inbox: ObjId,
    backends: Vec<ObjId>,
    rr: usize,
    /// Per-request proxy processing time (per direction).
    pub proc_delay: SimTime,
    /// req → original caller inbox.
    inflight: DetMap<u64, ObjId>,
    deferred: DetMap<u64, RpcMsg>,
    next_defer: u64,
    next_trace: u64,
    /// Requests proxied.
    pub proxied: u64,
}

impl LoadBalancerNode {
    /// Balance across `backends`, reachable at `inbox`.
    pub fn new(label: impl Into<String>, inbox: ObjId, backends: Vec<ObjId>) -> LoadBalancerNode {
        assert!(!backends.is_empty(), "LB needs at least one backend");
        LoadBalancerNode {
            label: label.into(),
            inbox,
            backends,
            rr: 0,
            proc_delay: SimTime::from_micros(5),
            inflight: DetMap::new(),
            deferred: DetMap::new(),
            next_defer: 0,
            next_trace: 1,
            proxied: 0,
        }
    }

    /// The LB's inbox.
    pub fn inbox(&self) -> ObjId {
        self.inbox
    }

    fn forward_later(&mut self, ctx: &mut NodeCtx<'_>, msg: RpcMsg) {
        let id = self.next_defer;
        self.next_defer += 1;
        self.deferred.insert(id, msg);
        ctx.set_timer(self.proc_delay, id);
    }
}

impl Node for LoadBalancerNode {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _port: PortId, packet: Packet) {
        let Ok(Some(msg)) = RpcMsg::decode(&packet.payload) else { return };
        if msg.dst != self.inbox {
            return;
        }
        match msg.body {
            RpcBody::Request { req, service, method, args } => {
                self.proxied += 1;
                let backend = self.backends[self.rr % self.backends.len()];
                self.rr += 1;
                self.inflight.insert(req, msg.src);
                // The proxy speaks for the client: replies come back here.
                let fwd = RpcMsg::new(
                    backend,
                    self.inbox,
                    RpcBody::Request { req, service, method, args },
                );
                self.forward_later(ctx, fwd);
            }
            RpcBody::Response { req, payload } => {
                if let Some(caller) = self.inflight.remove(&req) {
                    let back = RpcMsg::new(caller, self.inbox, RpcBody::Response { req, payload });
                    self.forward_later(ctx, back);
                }
            }
            RpcBody::Error { req, code } => {
                if let Some(caller) = self.inflight.remove(&req) {
                    let back = RpcMsg::new(caller, self.inbox, RpcBody::Error { req, code });
                    self.forward_later(ctx, back);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        if let Some(msg) = self.deferred.remove(&tag) {
            let trace = self.next_trace;
            self.next_trace += 1;
            ctx.send(PortId(0), Packet::new(msg.encode(), trace));
        }
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// A name → server discovery service (the lookup half of service meshes).
pub struct DiscoveryServiceNode {
    label: String,
    inbox: ObjId,
    directory: DetMap<String, ObjId>,
    /// Lookup processing time.
    pub proc_delay: SimTime,
    deferred: DetMap<u64, RpcMsg>,
    next_defer: u64,
    next_trace: u64,
    /// Lookups served.
    pub lookups: u64,
}

impl DiscoveryServiceNode {
    /// Create a directory service at `inbox`.
    pub fn new(label: impl Into<String>, inbox: ObjId) -> DiscoveryServiceNode {
        DiscoveryServiceNode {
            label: label.into(),
            inbox,
            directory: DetMap::new(),
            proc_delay: SimTime::from_micros(5),
            deferred: DetMap::new(),
            next_defer: 0,
            next_trace: 1,
            lookups: 0,
        }
    }

    /// The directory's inbox.
    pub fn inbox(&self) -> ObjId {
        self.inbox
    }

    /// Register that `name` is served at `server`.
    pub fn register(&mut self, name: impl Into<String>, server: ObjId) {
        self.directory.insert(name.into(), server);
    }
}

impl Node for DiscoveryServiceNode {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _port: PortId, packet: Packet) {
        let Ok(Some(msg)) = RpcMsg::decode(&packet.payload) else { return };
        if msg.dst != self.inbox {
            return;
        }
        if let RpcBody::Lookup { req, name } = msg.body {
            self.lookups += 1;
            let server = self.directory.get(&name).copied().unwrap_or(ObjId::NIL);
            let reply = RpcMsg::new(msg.src, self.inbox, RpcBody::LookupResp { req, server });
            let id = self.next_defer;
            self.next_defer += 1;
            self.deferred.insert(id, reply);
            ctx.set_timer(self.proc_delay, id);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        if let Some(msg) = self.deferred.remove(&tag) {
            let trace = self.next_trace;
            self.next_trace += 1;
            ctx.send(PortId(0), Packet::new(msg.encode(), trace));
        }
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientNode, PlannedCall};
    use crate::server::ServerNode;
    use crate::service::{echo_methods, EchoService};
    use rdv_netsim::{LinkSpec, NodeId, Sim, SimConfig};
    use rdv_p4rt::header::objnet_format;
    use rdv_p4rt::pipeline::{Pipeline, SwitchConfig, SwitchNode};
    use rdv_p4rt::table::{Action, MatchKind, Table};

    /// Star topology: client, servers, middleware all on one learning
    /// switch (flood-on-miss trains inbox routes automatically).
    fn star(nodes: Vec<Box<dyn Node>>) -> (Sim, Vec<NodeId>) {
        let mut sim = Sim::new(SimConfig::default());
        let mut pl = Pipeline::new(objnet_format(), Action::Flood);
        pl.add_table(Table::new(
            "objroute",
            vec![rdv_p4rt::header::OBJNET_DST_OBJ],
            MatchKind::Exact,
            128,
            rdv_p4rt::capacity::SramBudget::tofino(),
        ));
        let cfg = SwitchConfig { learn_src_routes: true, dedup_floods: true, ..Default::default() };
        let hub = sim.add_node(Box::new(SwitchNode::new("hub", pl, cfg)));
        let ids: Vec<NodeId> = nodes.into_iter().map(|n| sim.add_node(n)).collect();
        for &id in &ids {
            sim.connect(id, hub, LinkSpec::rack());
        }
        (sim, ids)
    }

    #[test]
    fn lb_proxies_and_round_robins() {
        let mut s1 = ServerNode::new("s1", ObjId(0x51));
        s1.register(1, Box::new(EchoService::default()));
        let mut s2 = ServerNode::new("s2", ObjId(0x52));
        s2.register(1, Box::new(EchoService::default()));
        let lb = LoadBalancerNode::new("lb", ObjId(0x1B), vec![ObjId(0x51), ObjId(0x52)]);
        let mut client = ClientNode::new("cli", ObjId(0xC));
        for _ in 0..4 {
            client.plan.push(PlannedCall {
                server: ObjId(0x1B), // call THROUGH the LB
                service: 1,
                method: echo_methods::ECHO,
                args: b"x".to_vec(),
                serialize_ns: 0,
                lookup_via: None,
                timeout_ns: 0,
            });
        }
        let (mut sim, ids) = star(vec![Box::new(client), Box::new(s1), Box::new(s2), Box::new(lb)]);
        for i in 0..4u64 {
            sim.schedule(SimTime::from_micros(100 + 200 * i), ids[0], i);
        }
        sim.run_until_idle();
        let cli = sim.node_as::<ClientNode>(ids[0]).unwrap();
        assert_eq!(cli.records.len(), 4);
        assert!(cli.records.iter().all(|r| r.result.is_ok()));
        // Round robin: each backend saw 2.
        assert_eq!(sim.node_as::<ServerNode>(ids[1]).unwrap().requests, 2);
        assert_eq!(sim.node_as::<ServerNode>(ids[2]).unwrap().requests, 2);
        assert_eq!(sim.node_as::<LoadBalancerNode>(ids[3]).unwrap().proxied, 4);
    }

    #[test]
    fn lb_adds_latency_over_direct() {
        // Direct call.
        let mut s = ServerNode::new("s", ObjId(0x51));
        s.register(1, Box::new(EchoService::default()));
        let mut direct = ClientNode::new("cli", ObjId(0xC));
        direct.plan.push(PlannedCall {
            server: ObjId(0x51),
            service: 1,
            method: echo_methods::ECHO,
            args: b"x".to_vec(),
            serialize_ns: 0,
            lookup_via: None,
            timeout_ns: 0,
        });
        let (mut sim, ids) = star(vec![Box::new(direct), Box::new(s)]);
        sim.schedule(SimTime::from_micros(100), ids[0], 0);
        sim.run_until_idle();
        let direct_lat = sim.node_as::<ClientNode>(ids[0]).unwrap().records[0].latency();

        // Via LB.
        let mut s = ServerNode::new("s", ObjId(0x51));
        s.register(1, Box::new(EchoService::default()));
        let lb = LoadBalancerNode::new("lb", ObjId(0x1B), vec![ObjId(0x51)]);
        let mut via = ClientNode::new("cli", ObjId(0xC));
        via.plan.push(PlannedCall {
            server: ObjId(0x1B),
            service: 1,
            method: echo_methods::ECHO,
            args: b"x".to_vec(),
            serialize_ns: 0,
            lookup_via: None,
            timeout_ns: 0,
        });
        let (mut sim, ids) = star(vec![Box::new(via), Box::new(s), Box::new(lb)]);
        sim.schedule(SimTime::from_micros(100), ids[0], 0);
        sim.run_until_idle();
        let lb_lat = sim.node_as::<ClientNode>(ids[0]).unwrap().records[0].latency();
        assert!(
            lb_lat > direct_lat + SimTime::from_micros(8),
            "LB must add ≥ 2×proc_delay: {lb_lat} vs {direct_lat}"
        );
    }

    #[test]
    fn discovery_service_lookup_then_call() {
        let mut s = ServerNode::new("s", ObjId(0x51));
        s.register(1, Box::new(EchoService::default()));
        let mut dir = DiscoveryServiceNode::new("dir", ObjId(0xD1));
        dir.register("echo", ObjId(0x51));
        let mut client = ClientNode::new("cli", ObjId(0xC));
        client.plan.push(PlannedCall {
            server: ObjId::NIL, // resolved via lookup
            service: 1,
            method: echo_methods::ECHO,
            args: b"x".to_vec(),
            serialize_ns: 0,
            lookup_via: Some((ObjId(0xD1), "echo".into())),
            timeout_ns: 0,
        });
        client.plan.push(PlannedCall {
            server: ObjId::NIL,
            service: 1,
            method: echo_methods::ECHO,
            args: b"x".to_vec(),
            serialize_ns: 0,
            lookup_via: Some((ObjId(0xD1), "missing".into())),
            timeout_ns: 0,
        });
        let (mut sim, ids) = star(vec![Box::new(client), Box::new(s), Box::new(dir)]);
        sim.schedule(SimTime::from_micros(100), ids[0], 0);
        sim.schedule(SimTime::from_micros(500), ids[0], 1);
        sim.run_until_idle();
        let cli = sim.node_as::<ClientNode>(ids[0]).unwrap();
        assert_eq!(cli.records.len(), 2);
        let ok = cli.records.iter().find(|r| r.index == 0).unwrap();
        assert!(ok.result.is_ok());
        let missing = cli.records.iter().find(|r| r.index == 1).unwrap();
        assert!(missing.result.is_err());
        assert_eq!(sim.node_as::<DiscoveryServiceNode>(ids[2]).unwrap().lookups, 2);
    }
}
