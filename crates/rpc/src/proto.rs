//! The RPC wire protocol.
//!
//! Rides the same 33-byte objnet header as every other packet in the
//! repository (so the same switches carry it), but — this is the point of
//! the baseline — the destination is a **host inbox**, a location, never a
//! data object. Message types live in the 0x60 range, disjoint from
//! `rdv-memproto` (0x01–0x41) and p4rt control (0xF0+).

use rdv_objspace::ObjId;
use rdv_wire::{WireError, WireReader, WireResult, WireWriter};

/// RPC message bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcBody {
    /// Invoke `service.method(args)` — args serialized in their entirety,
    /// the "call-by-small-value" the paper criticizes.
    Request {
        /// Request correlation ID.
        req: u64,
        /// Service ID.
        service: u32,
        /// Method ID within the service.
        method: u32,
        /// Serialized arguments.
        args: Vec<u8>,
    },
    /// Successful reply.
    Response {
        /// Correlates with the request.
        req: u64,
        /// Serialized return value.
        payload: Vec<u8>,
    },
    /// Failed reply.
    Error {
        /// Correlates with the request.
        req: u64,
        /// [`crate::error::RpcError`] wire code.
        code: u8,
    },
    /// Ask a discovery service where `name` is served.
    Lookup {
        /// Request correlation ID.
        req: u64,
        /// Service name.
        name: String,
    },
    /// Discovery reply.
    LookupResp {
        /// Correlates with the request.
        req: u64,
        /// Inbox of a server for the service (nil if unknown).
        server: ObjId,
    },
}

impl RpcBody {
    fn msg_type(&self) -> u8 {
        match self {
            RpcBody::Request { .. } => 0x60,
            RpcBody::Response { .. } => 0x61,
            RpcBody::Error { .. } => 0x62,
            RpcBody::Lookup { .. } => 0x63,
            RpcBody::LookupResp { .. } => 0x64,
        }
    }
}

/// A full RPC message (header + body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcMsg {
    /// Destination host inbox.
    pub dst: ObjId,
    /// Source host inbox (reply address).
    pub src: ObjId,
    /// The body.
    pub body: RpcBody,
}

impl RpcMsg {
    /// Build a message.
    pub fn new(dst: ObjId, src: ObjId, body: RpcBody) -> RpcMsg {
        RpcMsg { dst, src, body }
    }

    /// Serialize to packet bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(64);
        w.put_u8(self.body.msg_type());
        w.put_u128(self.dst.as_u128());
        w.put_u128(self.src.as_u128());
        match &self.body {
            RpcBody::Request { req, service, method, args } => {
                w.put_uvarint(*req);
                w.put_u32(*service);
                w.put_u32(*method);
                w.put_len_prefixed(args);
            }
            RpcBody::Response { req, payload } => {
                w.put_uvarint(*req);
                w.put_len_prefixed(payload);
            }
            RpcBody::Error { req, code } => {
                w.put_uvarint(*req);
                w.put_u8(*code);
            }
            RpcBody::Lookup { req, name } => {
                w.put_uvarint(*req);
                w.put_len_prefixed(name.as_bytes());
            }
            RpcBody::LookupResp { req, server } => {
                w.put_uvarint(*req);
                w.put_u128(server.as_u128());
            }
        }
        w.into_vec()
    }

    /// Parse packet bytes; returns `None` for non-RPC message types (so a
    /// node can share a port with other protocols).
    pub fn decode(data: &[u8]) -> WireResult<Option<RpcMsg>> {
        let mut r = WireReader::new(data);
        let t = r.get_u8()?;
        if !(0x60..=0x64).contains(&t) {
            return Ok(None);
        }
        let dst = ObjId(r.get_u128()?);
        let src = ObjId(r.get_u128()?);
        const MAX: u64 = 1 << 30;
        let body = match t {
            0x60 => RpcBody::Request {
                req: r.get_uvarint()?,
                service: r.get_u32()?,
                method: r.get_u32()?,
                args: r.get_len_prefixed(MAX)?.to_vec(),
            },
            0x61 => RpcBody::Response {
                req: r.get_uvarint()?,
                payload: r.get_len_prefixed(MAX)?.to_vec(),
            },
            0x62 => RpcBody::Error { req: r.get_uvarint()?, code: r.get_u8()? },
            0x63 => {
                let req = r.get_uvarint()?;
                let bytes = r.get_len_prefixed(1 << 16)?;
                let name = String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidUtf8)?;
                RpcBody::Lookup { req, name }
            }
            0x64 => RpcBody::LookupResp { req: r.get_uvarint()?, server: ObjId(r.get_u128()?) },
            _ => unreachable!("range-checked above"),
        };
        if !r.is_exhausted() {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(Some(RpcMsg { dst, src, body }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_bodies_roundtrip() {
        let bodies = vec![
            RpcBody::Request { req: 1, service: 2, method: 3, args: vec![1, 2, 3] },
            RpcBody::Response { req: 1, payload: vec![9; 100] },
            RpcBody::Error { req: 1, code: 4 },
            RpcBody::Lookup { req: 2, name: "model_serving".into() },
            RpcBody::LookupResp { req: 2, server: ObjId(0xFEED) },
        ];
        for body in bodies {
            let msg = RpcMsg::new(ObjId(1), ObjId(2), body);
            let back = RpcMsg::decode(&msg.encode()).unwrap().unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn foreign_types_yield_none() {
        // A memproto-style packet (type 0x01) is not RPC.
        let mut bytes = vec![0x01];
        bytes.extend(1u128.to_le_bytes());
        bytes.extend(2u128.to_le_bytes());
        assert_eq!(RpcMsg::decode(&bytes).unwrap(), None);
    }

    #[test]
    fn header_is_switch_parsable() {
        let msg = RpcMsg::new(
            ObjId(0xAB),
            ObjId(0xCD),
            RpcBody::Request { req: 1, service: 0, method: 0, args: vec![] },
        );
        let bytes = msg.encode();
        assert_eq!(bytes[0], 0x60);
        assert_eq!(u128::from_le_bytes(bytes[1..17].try_into().unwrap()), 0xAB);
        assert_eq!(u128::from_le_bytes(bytes[17..33].try_into().unwrap()), 0xCD);
    }

    #[test]
    fn truncation_never_panics() {
        let msg = RpcMsg::new(
            ObjId(1),
            ObjId(2),
            RpcBody::Request { req: 1, service: 2, method: 3, args: vec![5; 50] },
        );
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            let _ = RpcMsg::decode(&bytes[..cut]);
        }
    }
}
