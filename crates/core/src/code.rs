//! Code as objects.
//!
//! §5: *"In our system, code (like data) is global and referenceable from
//! anywhere."* A code object is an ordinary object (kind `Code`) whose heap
//! holds a [`CodeDesc`]: which function to run and its cost model. Because
//! we cannot ship actual machine code between simulated hosts, every host
//! carries the same [`FnRegistry`] (think of it as the ISA — identical
//! everywhere), and the *code object* is what moves, caches, and is named
//! by references. This preserves exactly the property the paper needs:
//! invoking `code_ref` on `data_refs` works on any host that can fetch the
//! code object.

use rdv_det::DetMap;
use std::sync::Arc;

use rdv_memproto::cache::ObjectCache;
use rdv_objspace::{ObjId, Object, ObjectKind, ObjectStore};

use crate::error::{CoreError, CoreResult};

/// Descriptor stored in a code object's heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeDesc {
    /// Registry function ID.
    pub fn_id: u64,
    /// Fixed invocation cost, model-nanoseconds (at speed 1.0).
    pub base_ns: u64,
    /// Additional cost per argument byte touched, model-picoseconds.
    pub ps_per_byte: u64,
}

const DESC_OFFSET: u64 = 8;

/// Write `desc` into a new code object with identity `id`.
pub fn make_code_object(id: ObjId, desc: CodeDesc) -> Object {
    let mut obj = Object::with_capacity(id, ObjectKind::Code, 4096);
    let block = obj.alloc(24).expect("fresh object has room");
    debug_assert_eq!(block, DESC_OFFSET);
    obj.write_u64(block, desc.fn_id).expect("in bounds");
    obj.write_u64(block + 8, desc.base_ns).expect("in bounds");
    obj.write_u64(block + 16, desc.ps_per_byte).expect("in bounds");
    obj
}

/// Read the descriptor back out of a code object.
pub fn read_code_desc(obj: &Object) -> CoreResult<CodeDesc> {
    if obj.kind() != ObjectKind::Code {
        return Err(CoreError::MalformedObject(obj.id(), "not a code object"));
    }
    let read = |off| {
        obj.read_u64(off).map_err(|_| CoreError::MalformedObject(obj.id(), "truncated descriptor"))
    };
    Ok(CodeDesc {
        fn_id: read(DESC_OFFSET)?,
        base_ns: read(DESC_OFFSET + 8)?,
        ps_per_byte: read(DESC_OFFSET + 16)?,
    })
}

/// Object access handed to executing functions: local store first, cache
/// second — the function neither knows nor cares which copy it reads.
pub struct ExecCtx<'a> {
    store: &'a ObjectStore,
    cache: &'a mut ObjectCache,
}

impl<'a> ExecCtx<'a> {
    /// Build a context over a host's store and cache.
    pub fn new(store: &'a ObjectStore, cache: &'a mut ObjectCache) -> ExecCtx<'a> {
        ExecCtx { store, cache }
    }

    /// Read an object by reference.
    pub fn object(&mut self, id: ObjId) -> CoreResult<&Object> {
        if let Ok(obj) = self.store.get(id) {
            return Ok(obj);
        }
        self.cache.get(id).ok_or(CoreError::ObjectUnavailable(id))
    }

    /// Whether `id` is readable here right now.
    pub fn available(&mut self, id: ObjId) -> bool {
        self.store.contains(id) || self.cache.get(id).is_some()
    }
}

/// Outcome of a function execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Application-defined result bytes (small, by design).
    pub result: Vec<u8>,
    /// Data bytes the function touched (drives the cost model).
    pub bytes_touched: u64,
}

/// A registered function body. `Send + Sync` so registries (and the host
/// nodes that hold them) can move across the sharded engine's worker
/// threads; bodies are pure functions of their arguments, so this costs
/// nothing in practice.
pub type FnBody = dyn Fn(&mut ExecCtx<'_>, &[ObjId]) -> CoreResult<ExecOutcome> + Send + Sync;

/// The function registry — identical on every host, like an ISA.
#[derive(Clone, Default)]
pub struct FnRegistry {
    fns: DetMap<u64, Arc<FnBody>>,
}

impl FnRegistry {
    /// Empty registry.
    pub fn new() -> FnRegistry {
        FnRegistry::default()
    }

    /// Register `body` under `fn_id` (replacing any previous binding).
    pub fn register(
        &mut self,
        fn_id: u64,
        body: impl Fn(&mut ExecCtx<'_>, &[ObjId]) -> CoreResult<ExecOutcome> + Send + Sync + 'static,
    ) {
        self.fns.insert(fn_id, Arc::new(body));
    }

    /// Look up a function.
    pub fn get(&self, fn_id: u64) -> CoreResult<Arc<FnBody>> {
        self.fns.get(&fn_id).cloned().ok_or(CoreError::UnknownFunction(fn_id))
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// True when no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }
}

impl std::fmt::Debug for FnRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FnRegistry({} fns)", self.fns.len())
    }
}

/// Compute the simulated execution time of one invocation.
pub fn execution_ns(desc: &CodeDesc, bytes_touched: u64, load: f64, speed: f64) -> u64 {
    let raw = desc.base_ns as f64 + (desc.ps_per_byte as f64 * bytes_touched as f64) / 1000.0;
    (raw * load / speed.max(1e-9)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdv_memproto::cache::CacheState;

    #[test]
    fn code_object_roundtrip() {
        let desc = CodeDesc { fn_id: 0xC0DE, base_ns: 1000, ps_per_byte: 250 };
        let obj = make_code_object(ObjId(5), desc);
        assert_eq!(obj.kind(), ObjectKind::Code);
        assert_eq!(read_code_desc(&obj).unwrap(), desc);
        // Code objects move like data objects — byte copy, then read.
        let moved = Object::from_image(&obj.to_image()).unwrap();
        assert_eq!(read_code_desc(&moved).unwrap(), desc);
    }

    #[test]
    fn data_object_rejected_as_code() {
        let obj = Object::new(ObjId(5), ObjectKind::Data);
        assert!(matches!(read_code_desc(&obj), Err(CoreError::MalformedObject(..))));
    }

    #[test]
    fn registry_dispatch() {
        let mut reg = FnRegistry::new();
        reg.register(7, |_ctx, args| {
            Ok(ExecOutcome { result: vec![args.len() as u8], bytes_touched: 0 })
        });
        let f = reg.get(7).unwrap();
        let store = ObjectStore::new();
        let mut cache = ObjectCache::new(1 << 20);
        let mut ctx = ExecCtx::new(&store, &mut cache);
        let out = f(&mut ctx, &[ObjId(1), ObjId(2)]).unwrap();
        assert_eq!(out.result, vec![2]);
        assert!(matches!(reg.get(8), Err(CoreError::UnknownFunction(8))));
    }

    #[test]
    fn exec_ctx_prefers_store_then_cache() {
        let mut store = ObjectStore::new();
        let mut cache = ObjectCache::new(1 << 20);
        // Build one object in the store, one only in the cache.
        let mut o1 = Object::new(ObjId(1), ObjectKind::Data);
        o1.alloc(8).unwrap();
        store.insert(o1).unwrap();
        let mut o2 = Object::new(ObjId(2), ObjectKind::Data);
        o2.alloc(8).unwrap();
        cache.insert(o2, CacheState::Shared);
        let mut ctx = ExecCtx::new(&store, &mut cache);
        assert!(ctx.available(ObjId(1)));
        assert!(ctx.available(ObjId(2)));
        assert!(ctx.object(ObjId(3)).is_err());
    }

    #[test]
    fn execution_cost_scales() {
        let desc = CodeDesc { fn_id: 1, base_ns: 1000, ps_per_byte: 1000 };
        let fast = execution_ns(&desc, 1000, 1.0, 2.0);
        let slow = execution_ns(&desc, 1000, 1.0, 0.5);
        assert_eq!(fast * 4, slow);
        let loaded = execution_ns(&desc, 1000, 4.0, 1.0);
        assert_eq!(loaded, 2000 * 4);
    }
}
