//! The global-address-space host runtime.
//!
//! [`GasHostNode`] is what runs on every host in the rendezvous system:
//!
//! - **serves object fetches**: whole-object images, fragmented at the
//!   fabric MTU ([`rdv_memproto::frag`]);
//! - **executes invocations** ([`rdv_memproto::msg::MsgBody::Invoke`]):
//!   missing code/data objects are fetched on demand *by the executor* —
//!   the invoker never orchestrates data movement (§3.1, Figure 1 (3));
//! - **drives scripts**: small step sequences ([`ScriptStep`]) that express
//!   the Figure 1 strategies (manual copy, manual pull, reference-RPC with
//!   a fixed executor, fully automatic placement) and the experiment
//!   workloads;
//! - **walks pointer structures** with pluggable prefetching
//!   ([`PrefetchPolicy`]) for the A1 ablation.
//!
//! Packets route on object IDs: a fetch for object `X` is simply addressed
//! to `X`; the switches (programmed by the controller) deliver it to the
//! holder. Replies are addressed to the requester's inbox object.

use rdv_det::{DetMap, DetSet};
use std::sync::OnceLock;

use rdv_memproto::cache::{CacheState, ObjectCache};
use rdv_memproto::coherence::{DirAction, Directory};
use rdv_memproto::frag::{fragment, Fragment, Reassembler, DEFAULT_MTU};
use rdv_memproto::msg::{Msg, MsgBody, NackCode};
use rdv_netsim::metrics::{AuditScope, MetricSample};
use rdv_netsim::trace::EventId;
use rdv_netsim::{CounterId, Node, NodeCtx, Packet, PortId, SimTime};
use rdv_objspace::{ObjId, Object, ObjectStore};

use crate::code::{execution_ns, read_code_desc, ExecCtx, FnRegistry};
use crate::placement::PlacementEngine;

/// Interned ids for the runtime's counters, resolved once per process so
/// the message/exec hot paths never intern (or hash) a counter name.
struct GasCtr {
    bad_code_objects: CounterId,
    corrupt_fragments: CounterId,
    corrupt_images: CounterId,
    dangling_pointers: CounterId,
    dir_invalidates_applied: CounterId,
    dir_invalidates_sent: CounterId,
    exec_errors: CounterId,
    fetch_completed: CounterId,
    fetch_demand: CounterId,
    fetch_prefetch: CounterId,
    invokes_executed: CounterId,
    nacks: CounterId,
    no_placement_engine: CounterId,
    placement_failures: CounterId,
    pushes: CounterId,
    pushes_received: CounterId,
    retries_fetch: CounterId,
    retries_invoke: CounterId,
    retries_push: CounterId,
    retries_write: CounterId,
    rx_bytes: CounterId,
    scripts_failed: CounterId,
    serve_misses: CounterId,
    serves: CounterId,
    tasks_abandoned: CounterId,
    tx_bytes: CounterId,
    unknown_functions: CounterId,
    writes_served: CounterId,
}

fn ctr() -> &'static GasCtr {
    static IDS: OnceLock<GasCtr> = OnceLock::new();
    IDS.get_or_init(|| GasCtr {
        bad_code_objects: CounterId::intern("bad_code_objects"),
        corrupt_fragments: CounterId::intern("corrupt_fragments"),
        corrupt_images: CounterId::intern("corrupt_images"),
        dangling_pointers: CounterId::intern("dangling_pointers"),
        dir_invalidates_applied: CounterId::intern("dir_invalidates_applied"),
        dir_invalidates_sent: CounterId::intern("dir_invalidates_sent"),
        exec_errors: CounterId::intern("exec_errors"),
        fetch_completed: CounterId::intern("fetch.completed"),
        fetch_demand: CounterId::intern("fetch.demand"),
        fetch_prefetch: CounterId::intern("fetch.prefetch"),
        invokes_executed: CounterId::intern("invokes_executed"),
        nacks: CounterId::intern("nacks"),
        no_placement_engine: CounterId::intern("no_placement_engine"),
        placement_failures: CounterId::intern("placement_failures"),
        pushes: CounterId::intern("pushes"),
        pushes_received: CounterId::intern("pushes_received"),
        retries_fetch: CounterId::intern("retries.fetch"),
        retries_invoke: CounterId::intern("retries.invoke"),
        retries_push: CounterId::intern("retries.push"),
        retries_write: CounterId::intern("retries.write"),
        rx_bytes: CounterId::intern("rx_bytes"),
        scripts_failed: CounterId::intern("scripts_failed"),
        serve_misses: CounterId::intern("serve_misses"),
        serves: CounterId::intern("serves"),
        tasks_abandoned: CounterId::intern("tasks_abandoned"),
        tx_bytes: CounterId::intern("tx_bytes"),
        unknown_functions: CounterId::intern("unknown_functions"),
        writes_served: CounterId::intern("writes_served"),
    })
}

/// Prefetch policies for the A1 ablation (§3.1: identity/reachability
/// prefetching vs today's adjacency proxies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchPolicy {
    /// Fetch only on demand.
    None,
    /// On each arrival, prefetch the next `window` objects in allocation
    /// order (the "adjacency proxy" real systems use).
    Adjacency {
        /// Objects ahead to prefetch.
        window: usize,
    },
    /// On each arrival, prefetch the arrival's FOT frontier — actual
    /// reachability, which the object space makes visible.
    Reachability,
}

/// One step of a host script.
#[derive(Debug, Clone)]
pub enum ScriptStep {
    /// Fetch an object into the local cache (blocks until it arrives).
    Fetch(ObjId),
    /// Push a locally available object's image to another host's cache
    /// (blocks until the receiver acknowledges).
    PushTo {
        /// The object to push.
        obj: ObjId,
        /// Destination host inbox.
        dest: ObjId,
    },
    /// Invoke a code object over argument objects.
    Invoke {
        /// Fixed executor inbox, or `None` to let the placement engine
        /// decide (Figure 1 strategy (3)).
        executor: Option<ObjId>,
        /// The code object.
        code: ObjId,
        /// Argument objects.
        args: Vec<ObjId>,
        /// Expected result size (placement input).
        result_bytes: u64,
    },
    /// Write `data` at `offset` of a (possibly remote) object, through its
    /// home. The home's coherence directory invalidates cached readers.
    Write {
        /// The object to write.
        target: ObjId,
        /// Byte offset.
        offset: u64,
        /// Bytes to store.
        data: Vec<u8>,
    },
    /// Walk a linked structure starting at `(obj, offset)` (node layout of
    /// `rdv_objspace::structures`), collecting up to `max_steps` values.
    Traverse {
        /// Object holding the head node.
        obj: ObjId,
        /// Offset of the head node block.
        offset: u64,
        /// Step bound.
        max_steps: usize,
    },
}

/// Completion record for one script.
#[derive(Debug, Clone)]
pub struct ScriptRecord {
    /// Script index.
    pub script: usize,
    /// When the script started.
    pub started: SimTime,
    /// When its last step completed.
    pub completed: SimTime,
    /// Result bytes of the last `Invoke` step (empty otherwise).
    pub invoke_result: Vec<u8>,
    /// Values collected by the last `Traverse` step.
    pub traversal_values: Vec<u64>,
    /// Demand fetches issued while this script ran.
    pub demand_fetches: u64,
    /// True if the script was abandoned after exhausting retries.
    pub failed: bool,
}

/// Host configuration.
#[derive(Debug, Clone, Copy)]
pub struct GasHostConfig {
    /// Request service delay (software overhead per served message).
    pub serve_delay: SimTime,
    /// Fabric MTU for image fragmentation.
    pub mtu: usize,
    /// Relative compute speed (1.0 = baseline).
    pub speed: f64,
    /// Load factor (1.0 = idle).
    pub load: f64,
    /// Object cache capacity in bytes.
    pub cache_bytes: u64,
    /// Prefetch policy.
    pub prefetch: PrefetchPolicy,
    /// Watchdog period for blocked scripts/tasks: lost packets are
    /// recovered by re-issuing the blocking operation (fetch, push,
    /// invoke) after this long.
    pub retry_timeout: SimTime,
    /// Abandon a script after this many consecutive retries of one step.
    pub max_retries: u32,
}

impl Default for GasHostConfig {
    fn default() -> Self {
        GasHostConfig {
            serve_delay: SimTime::from_micros(2),
            mtu: DEFAULT_MTU,
            speed: 1.0,
            load: 1.0,
            cache_bytes: 1 << 30,
            prefetch: PrefetchPolicy::None,
            // Generous default: must exceed the largest healthy transfer
            // (tens of ms for a 4 MB image over an edge link), so watchdogs
            // only fire when something was actually lost. Failure-injection
            // tests lower it.
            retry_timeout: SimTime::from_millis(50),
            max_retries: 20,
        }
    }
}

#[derive(Debug)]
#[allow(dead_code)] // retained for debugging and future retry logic
struct FetchState {
    target: ObjId,
    demand: bool,
    issued: SimTime,
    script: Option<usize>,
    /// The `core.fetch` span-begin, when tracing was enabled.
    span: Option<EventId>,
}

#[derive(Debug)]
enum Reply {
    Remote { to: ObjId, req: u64 },
    Script { script: usize },
}

struct TaskState {
    reply: Reply,
    code: ObjId,
    args: Vec<ObjId>,
    retries: u32,
}

#[derive(Debug)]
struct TraversalState {
    script: usize,
    cur: (ObjId, u64),
    values: Vec<u64>,
    max_steps: usize,
    done: bool,
}

#[derive(Debug)]
struct ScriptProgress {
    step: usize,
    started: SimTime,
    invoke_result: Vec<u8>,
    traversal_values: Vec<u64>,
    demand_fetches: u64,
    /// Outstanding push req this script waits on.
    waiting_push: Option<u64>,
    /// Outstanding remote invoke req this script waits on.
    waiting_invoke: Option<u64>,
    /// Executor the outstanding invoke was sent to (for retransmission).
    invoke_executor: Option<ObjId>,
    /// Consecutive watchdog retries of the current step.
    retries: u32,
    /// A watchdog timer is pending for this script.
    watchdog_armed: bool,
    /// Open trace spans, when tracing was enabled: the whole script, the
    /// in-flight invoke, and the in-flight coherent write.
    script_span: Option<EventId>,
    invoke_span: Option<EventId>,
    write_span: Option<EventId>,
}

mod tags {
    pub const DEFER: u64 = 1 << 62;
    pub const TASK_DONE: u64 = 1 << 61;
    pub const WATCHDOG: u64 = 1 << 60;
    pub const TASK_WATCH: u64 = 1 << 59;
}

/// A host in the rendezvous system.
pub struct GasHostNode {
    label: String,
    inbox: ObjId,
    cfg: GasHostConfig,
    /// Authoritative local objects.
    pub store: ObjectStore,
    /// Cached remote objects.
    pub cache: ObjectCache,
    /// The function registry (identical across hosts).
    pub registry: FnRegistry,
    /// The system placement view (present on invoking hosts).
    pub placement: Option<PlacementEngine>,
    /// Scripts; timer tag `i` starts `scripts[i]`.
    pub scripts: Vec<Vec<ScriptStep>>,
    /// Allocation-order adjacency used by [`PrefetchPolicy::Adjacency`].
    pub adjacency: Vec<ObjId>,
    progress: DetMap<usize, ScriptProgress>,
    /// Completed scripts.
    pub records: Vec<ScriptRecord>,
    fetches: DetMap<u64, FetchState>,
    inflight: DetSet<ObjId>,
    reasm: DetMap<ObjId, Reassembler>,
    /// Coherence directory for objects homed here.
    pub directory: Directory,
    tasks: Vec<Option<TaskState>>,
    served_invokes: DetMap<(u128, u64), Vec<u8>>,
    task_results: DetMap<u64, (usize, Vec<u8>)>,
    traversals: Vec<TraversalState>,
    deferred: DetMap<u64, Msg>,
    next_req: u64,
    next_defer: u64,
    next_trace: u64,
    /// Host counters: `serves`, `fetch.demand`, `fetch.prefetch`,
    /// `tx_bytes`, `rx_bytes`, `pushes`, `invokes_executed`, `nacks`.
    pub counters: rdv_netsim::Counters,
}

impl GasHostNode {
    /// Create a host.
    pub fn new(label: impl Into<String>, inbox: ObjId, cfg: GasHostConfig) -> GasHostNode {
        GasHostNode {
            label: label.into(),
            inbox,
            store: ObjectStore::new(),
            cache: ObjectCache::new(cfg.cache_bytes),
            cfg,
            registry: FnRegistry::new(),
            placement: None,
            scripts: Vec::new(),
            adjacency: Vec::new(),
            progress: DetMap::new(),
            records: Vec::new(),
            fetches: DetMap::new(),
            inflight: DetSet::new(),
            reasm: DetMap::new(),
            directory: Directory::new(),
            tasks: Vec::new(),
            served_invokes: DetMap::new(),
            task_results: DetMap::new(),
            traversals: Vec::new(),
            deferred: DetMap::new(),
            next_req: 1,
            next_defer: 0,
            next_trace: 1,
            counters: rdv_netsim::Counters::new(),
        }
    }

    /// The host's inbox object.
    pub fn inbox(&self) -> ObjId {
        self.inbox
    }

    /// Whether `id` is readable locally right now.
    pub fn has_object(&mut self, id: ObjId) -> bool {
        self.store.contains(id) || self.cache.get(id).is_some()
    }

    fn transmit(&mut self, ctx: &mut NodeCtx<'_>, msg: Msg) {
        let bytes = msg.encode();
        self.counters.add_id(ctr().tx_bytes, bytes.len() as u64);
        let trace = (self.inbox.lo() << 20) ^ self.next_trace;
        self.next_trace += 1;
        ctx.send(PortId(0), Packet::new(bytes, trace));
    }

    fn transmit_after(&mut self, ctx: &mut NodeCtx<'_>, delay: SimTime, msg: Msg) {
        if delay == SimTime::ZERO {
            self.transmit(ctx, msg);
            return;
        }
        let id = self.next_defer;
        self.next_defer += 1;
        self.deferred.insert(id, msg);
        ctx.set_timer(delay, tags::DEFER | id);
    }

    fn ensure_fetch(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        target: ObjId,
        demand: bool,
        script: Option<usize>,
    ) {
        if self.store.contains(target)
            || self.cache.get(target).is_some()
            || self.inflight.contains(&target)
        {
            return;
        }
        let req = self.next_req;
        self.next_req += 1;
        self.inflight.insert(target);
        let span = ctx.trace.span_begin("core.fetch", target.lo());
        self.fetches.insert(req, FetchState { target, demand, issued: ctx.now, script, span });
        if demand {
            self.counters.inc_id(ctr().fetch_demand);
            if let Some(s) = script {
                if let Some(p) = self.progress.get_mut(&s) {
                    p.demand_fetches += 1;
                }
            }
        } else {
            self.counters.inc_id(ctr().fetch_prefetch);
        }
        // Route on the object itself: the packet is addressed to `target`.
        let msg = Msg::new(target, self.inbox, MsgBody::ObjImageReq { req, target });
        self.transmit(ctx, msg);
    }

    /// Arm the blocked-script watchdog (idempotent while armed).
    fn arm_watchdog(&mut self, ctx: &mut NodeCtx<'_>, idx: usize) {
        if let Some(p) = self.progress.get_mut(&idx) {
            if !p.watchdog_armed {
                p.watchdog_armed = true;
                ctx.set_timer(self.cfg.retry_timeout, tags::WATCHDOG | idx as u64);
            }
        }
    }

    /// Re-send the in-flight fetch for `target`, if one exists (same req,
    /// so partially reassembled fragments still count).
    fn retry_fetch(&mut self, ctx: &mut NodeCtx<'_>, target: ObjId) {
        let req = self.fetches.iter().find_map(|(req, f)| {
            if f.target == target {
                Some((*req, f.span))
            } else {
                None
            }
        });
        if let Some((req, span)) = req {
            self.counters.inc_id(ctr().retries_fetch);
            ctx.trace.mark_linked("core.retry.fetch", target.lo(), span);
            let msg = Msg::new(target, self.inbox, MsgBody::ObjImageReq { req, target });
            self.transmit(ctx, msg);
        }
    }

    /// Re-send a push's fragments with its original req.
    fn reissue_push(&mut self, ctx: &mut NodeCtx<'_>, obj: ObjId, dest: ObjId, req: u64) {
        let image = if let Ok(o) = self.store.get(obj) {
            Some(o.to_image())
        } else {
            self.cache.get(obj).map(Object::to_image)
        };
        let Some(image) = image else { return };
        self.counters.inc_id(ctr().retries_push);
        for f in fragment(req, &image, self.cfg.mtu) {
            let msg = Msg::new(
                dest,
                self.inbox,
                MsgBody::ObjImageFrag { req, version: 0, frag: f.encode() },
            );
            self.transmit(ctx, msg);
        }
    }

    /// Watchdog fired for a blocked script: re-issue whatever it waits on,
    /// or abandon it after too many consecutive retries of one step.
    fn handle_watchdog(&mut self, ctx: &mut NodeCtx<'_>, idx: usize) {
        let Some(p) = self.progress.get_mut(&idx) else { return };
        p.watchdog_armed = false;
        let blocked = p.waiting_push.is_some()
            || p.waiting_invoke.is_some()
            || matches!(
                self.scripts.get(idx).and_then(|s| s.get(p.step)),
                Some(ScriptStep::Fetch(_))
            );
        if !blocked {
            return;
        }
        if p.retries >= self.cfg.max_retries {
            let p = self.progress.remove(&idx).expect("present");
            self.counters.inc_id(ctr().scripts_failed);
            ctx.trace.span_end("core.script", p.script_span);
            self.traversals.retain(|t| t.script != idx);
            self.records.push(ScriptRecord {
                script: idx,
                started: p.started,
                completed: ctx.now,
                invoke_result: p.invoke_result,
                traversal_values: p.traversal_values,
                demand_fetches: p.demand_fetches,
                failed: true,
            });
            return;
        }
        p.retries += 1;
        let step = self.scripts.get(idx).and_then(|s| s.get(p.step)).cloned();
        let waiting_push = p.waiting_push;
        let waiting_invoke = p.waiting_invoke;
        let executor = p.invoke_executor;
        match step {
            Some(ScriptStep::Fetch(obj)) => self.retry_fetch(ctx, obj),
            Some(ScriptStep::PushTo { obj, dest }) => {
                if let Some(req) = waiting_push {
                    self.reissue_push(ctx, obj, dest, req);
                }
            }
            Some(ScriptStep::Write { target, offset, data }) => {
                if let Some(req) = waiting_push {
                    self.counters.inc_id(ctr().retries_write);
                    let msg = Msg::new(
                        target,
                        self.inbox,
                        MsgBody::WriteReq { req, target, offset, data },
                    );
                    self.transmit(ctx, msg);
                }
            }
            Some(ScriptStep::Invoke { code, args, .. }) => match waiting_invoke {
                Some(0) => {
                    // Local execution: chase whatever objects are missing.
                    let wanted: Vec<ObjId> =
                        std::iter::once(code).chain(args.iter().copied()).collect();
                    for obj in wanted {
                        if !(self.store.contains(obj) || self.cache.get(obj).is_some()) {
                            self.retry_fetch(ctx, obj);
                        }
                    }
                }
                Some(req) if req != u64::MAX => {
                    if let Some(executor) = executor {
                        self.counters.inc_id(ctr().retries_invoke);
                        let msg =
                            Msg::new(executor, self.inbox, MsgBody::Invoke { req, code, args });
                        self.transmit(ctx, msg);
                    }
                }
                _ => {}
            },
            Some(ScriptStep::Traverse { .. }) => {
                // Blocked on the current node object.
                let cur = self.traversals.iter().find(|t| t.script == idx).map(|t| t.cur.0);
                if let Some(obj) = cur {
                    self.retry_fetch(ctx, obj);
                }
            }
            None => {}
        }
        self.arm_watchdog(ctx, idx);
    }

    fn serve_image(&mut self, ctx: &mut NodeCtx<'_>, reply_to: ObjId, req: u64, target: ObjId) {
        let Ok(obj) = self.store.get(target) else {
            self.counters.inc_id(ctr().serve_misses);
            let nack =
                Msg::new(reply_to, self.inbox, MsgBody::Nack { req, code: NackCode::NotHere });
            self.transmit_after(ctx, self.cfg.serve_delay, nack);
            return;
        };
        self.counters.inc_id(ctr().serves);
        let version = obj.version();
        let image = obj.to_image();
        // Home-side coherence: the requester becomes a sharer; a previous
        // exclusive owner is recalled.
        let actions = self.directory.request_shared(target, reply_to);
        self.apply_dir_actions(ctx, target, version, actions);
        let frags = fragment(req, &image, self.cfg.mtu);
        let serve_delay = self.cfg.serve_delay;
        for f in frags {
            let msg = Msg::new(
                reply_to,
                self.inbox,
                MsgBody::ObjImageFrag { req, version, frag: f.encode() },
            );
            self.transmit_after(ctx, serve_delay, msg);
        }
    }

    /// Turn directory actions into directed invalidations (grants are
    /// implicit in the data reply that follows).
    fn apply_dir_actions(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        obj: ObjId,
        version: u64,
        actions: Vec<DirAction>,
    ) {
        for a in actions {
            if let DirAction::Invalidate { to, obj: o } = a {
                debug_assert_eq!(o, obj);
                self.counters.inc_id(ctr().dir_invalidates_sent);
                let msg = Msg::new(to, self.inbox, MsgBody::DirInvalidate { obj, version });
                self.transmit_after(ctx, self.cfg.serve_delay, msg);
            }
        }
    }

    fn on_image_complete(&mut self, ctx: &mut NodeCtx<'_>, src: ObjId, req: u64, image: Vec<u8>) {
        let Ok(object) = Object::from_image(&image) else {
            self.counters.inc_id(ctr().corrupt_images);
            return;
        };
        let obj_id = object.id();
        self.inflight.remove(&obj_id);
        self.cache.insert(object, CacheState::Shared);
        self.counters.add_id(ctr().rx_bytes, image.len() as u64);
        match self.fetches.remove(&req) {
            Some(fetch) => {
                self.counters.inc_id(ctr().fetch_completed);
                ctx.trace.span_end("core.fetch", fetch.span);
            }
            None => {
                // Unsolicited push: acknowledge it.
                self.counters.inc_id(ctr().pushes_received);
                let ack = Msg::new(src, self.inbox, MsgBody::WriteAck { req, version: 0 });
                self.transmit_after(ctx, self.cfg.serve_delay, ack);
            }
        }
        self.run_prefetch(ctx, obj_id);
        self.poll_blocked(ctx);
    }

    fn run_prefetch(&mut self, ctx: &mut NodeCtx<'_>, arrived: ObjId) {
        match self.cfg.prefetch {
            PrefetchPolicy::None => {}
            PrefetchPolicy::Reachability => {
                let frontier: Vec<ObjId> = match self.cache.get(arrived) {
                    Some(obj) => obj.fot().referenced_ids(),
                    None => match self.store.get(arrived) {
                        Ok(obj) => obj.fot().referenced_ids(),
                        Err(_) => Vec::new(),
                    },
                };
                for next in frontier {
                    self.ensure_fetch(ctx, next, false, None);
                }
            }
            PrefetchPolicy::Adjacency { window } => {
                if let Some(pos) = self.adjacency.iter().position(|&o| o == arrived) {
                    let next: Vec<ObjId> =
                        self.adjacency[pos + 1..].iter().take(window).copied().collect();
                    for n in next {
                        self.ensure_fetch(ctx, n, false, None);
                    }
                }
            }
        }
    }

    /// Re-examine every blocked script, task, and traversal (cheap: the
    /// experiment workloads keep these counts small).
    fn poll_blocked(&mut self, ctx: &mut NodeCtx<'_>) {
        self.drive_traversals(ctx);
        self.try_run_tasks(ctx);
        let blocked: Vec<usize> = self.progress.keys().copied().collect();
        for s in blocked {
            self.advance_script(ctx, s);
        }
    }

    fn start_script(&mut self, ctx: &mut NodeCtx<'_>, idx: usize) {
        let script_span = ctx.trace.span_begin("core.script", idx as u64);
        self.progress.insert(
            idx,
            ScriptProgress {
                step: 0,
                started: ctx.now,
                invoke_result: Vec::new(),
                traversal_values: Vec::new(),
                demand_fetches: 0,
                waiting_push: None,
                waiting_invoke: None,
                invoke_executor: None,
                retries: 0,
                watchdog_armed: false,
                script_span,
                invoke_span: None,
                write_span: None,
            },
        );
        self.advance_script(ctx, idx);
    }

    fn advance_script(&mut self, ctx: &mut NodeCtx<'_>, idx: usize) {
        loop {
            let Some(p) = self.progress.get(&idx) else { return };
            if p.waiting_push.is_some() || p.waiting_invoke.is_some() {
                return; // blocked on an ack/result
            }
            let step_idx = p.step;
            let steps = match self.scripts.get(idx) {
                Some(s) => s.clone(),
                None => return,
            };
            if step_idx >= steps.len() {
                // Script complete.
                let p = self.progress.remove(&idx).expect("present");
                ctx.trace.span_end("core.script", p.script_span);
                self.records.push(ScriptRecord {
                    script: idx,
                    started: p.started,
                    completed: ctx.now,
                    invoke_result: p.invoke_result,
                    traversal_values: p.traversal_values,
                    demand_fetches: p.demand_fetches,
                    failed: false,
                });
                return;
            }
            match &steps[step_idx] {
                ScriptStep::Fetch(obj) => {
                    let obj = *obj;
                    if self.store.contains(obj) || self.cache.get(obj).is_some() {
                        let p = self.progress.get_mut(&idx).expect("present");
                        p.step += 1;
                        p.retries = 0;
                        continue;
                    }
                    self.ensure_fetch(ctx, obj, true, Some(idx));
                    self.arm_watchdog(ctx, idx);
                    return;
                }
                ScriptStep::PushTo { obj, dest } => {
                    let (obj, dest) = (*obj, *dest);
                    let image = if let Ok(o) = self.store.get(obj) {
                        Some(o.to_image())
                    } else {
                        self.cache.get(obj).map(Object::to_image)
                    };
                    let Some(image) = image else {
                        // Object not here: fetch it first (implicit).
                        self.ensure_fetch(ctx, obj, true, Some(idx));
                        return;
                    };
                    let req = self.next_req;
                    self.next_req += 1;
                    self.counters.inc_id(ctr().pushes);
                    let frags = fragment(req, &image, self.cfg.mtu);
                    for f in frags {
                        let msg = Msg::new(
                            dest,
                            self.inbox,
                            MsgBody::ObjImageFrag { req, version: 0, frag: f.encode() },
                        );
                        self.transmit(ctx, msg);
                    }
                    self.progress.get_mut(&idx).expect("present").waiting_push = Some(req);
                    self.arm_watchdog(ctx, idx);
                    return;
                }
                ScriptStep::Invoke { executor, code, args, result_bytes } => {
                    let (code, args) = (*code, args.clone());
                    let executor = match executor {
                        Some(e) => *e,
                        None => {
                            // Placement decides (Figure 1 (3)). The
                            // decision needs the code descriptor: fetch the
                            // code object first if it is not yet here.
                            let result_bytes = *result_bytes;
                            let Ok(desc) = self.read_code_anywhere(code) else {
                                self.ensure_fetch(ctx, code, true, Some(idx));
                                return;
                            };
                            let Some(engine) = &self.placement else {
                                self.counters.inc_id(ctr().no_placement_engine);
                                return;
                            };
                            match engine.choose(self.inbox, &desc, code, &args, result_bytes) {
                                Ok(est) => est.host,
                                Err(_) => {
                                    self.counters.inc_id(ctr().placement_failures);
                                    return;
                                }
                            }
                        }
                    };
                    if executor == self.inbox {
                        // Local execution.
                        let task_id = self.tasks.len();
                        self.tasks.push(Some(TaskState {
                            reply: Reply::Script { script: idx },
                            code,
                            args: args.clone(),
                            retries: 0,
                        }));
                        let _ = task_id;
                        let ispan = ctx.trace.span_begin("core.invoke", code.lo());
                        {
                            let p = self.progress.get_mut(&idx).expect("present");
                            p.waiting_invoke = Some(0);
                            p.invoke_span = ispan;
                        }
                        for obj in std::iter::once(code).chain(args.iter().copied()) {
                            self.ensure_fetch(ctx, obj, true, Some(idx));
                        }
                        self.arm_watchdog(ctx, idx);
                        self.try_run_tasks(ctx);
                    } else {
                        let req = self.next_req;
                        self.next_req += 1;
                        let ispan = ctx.trace.span_begin("core.invoke", code.lo());
                        {
                            let p = self.progress.get_mut(&idx).expect("present");
                            p.waiting_invoke = Some(req);
                            p.invoke_executor = Some(executor);
                            p.invoke_span = ispan;
                        }
                        let msg =
                            Msg::new(executor, self.inbox, MsgBody::Invoke { req, code, args });
                        self.transmit(ctx, msg);
                        self.arm_watchdog(ctx, idx);
                    }
                    return;
                }
                ScriptStep::Write { target, offset, data } => {
                    let (target, offset, data) = (*target, *offset, data.clone());
                    let req = self.next_req;
                    self.next_req += 1;
                    let wspan = ctx.trace.span_begin("core.write", target.lo());
                    {
                        let p = self.progress.get_mut(&idx).expect("present");
                        p.waiting_push = Some(req);
                        p.write_span = wspan;
                    }
                    let msg = Msg::new(
                        target,
                        self.inbox,
                        MsgBody::WriteReq { req, target, offset, data },
                    );
                    self.transmit(ctx, msg);
                    self.arm_watchdog(ctx, idx);
                    return;
                }
                ScriptStep::Traverse { obj, offset, max_steps } => {
                    let t = TraversalState {
                        script: idx,
                        cur: (*obj, *offset),
                        values: Vec::new(),
                        max_steps: *max_steps,
                        done: false,
                    };
                    self.traversals.push(t);
                    self.progress.get_mut(&idx).expect("present").waiting_invoke = Some(u64::MAX);
                    self.arm_watchdog(ctx, idx);
                    self.drive_traversals(ctx);
                    return;
                }
            }
        }
    }

    fn read_code_anywhere(&mut self, code: ObjId) -> Result<crate::code::CodeDesc, ()> {
        if let Ok(obj) = self.store.get(code) {
            return read_code_desc(obj).map_err(|_| ());
        }
        if let Some(obj) = self.cache.get(code) {
            return read_code_desc(obj).map_err(|_| ());
        }
        // Without the descriptor the engine cannot cost the call; the
        // invoking host is expected to hold (or have fetched) the code
        // object's descriptor. Fall back to a neutral descriptor.
        Err(())
    }

    fn try_run_tasks(&mut self, ctx: &mut NodeCtx<'_>) {
        for task_id in 0..self.tasks.len() {
            let ready = match &self.tasks[task_id] {
                Some(t) => {
                    let mut all = true;
                    for obj in std::iter::once(t.code).chain(t.args.iter().copied()) {
                        if !(self.store.contains(obj) || self.cache.get(obj).is_some()) {
                            all = false;
                        }
                    }
                    all
                }
                None => false,
            };
            if !ready {
                // Make sure fetches are out for whatever is missing.
                if let Some(t) = &self.tasks[task_id] {
                    let wanted: Vec<ObjId> =
                        std::iter::once(t.code).chain(t.args.iter().copied()).collect();
                    for obj in wanted {
                        if !(self.store.contains(obj) || self.cache.get(obj).is_some()) {
                            self.ensure_fetch(ctx, obj, true, None);
                        }
                    }
                }
                continue;
            }
            let task = self.tasks[task_id].take().expect("checked");
            self.execute_task(ctx, task);
        }
        // Slots are left as None: task ids stay stable for watchdogs.
    }

    fn execute_task(&mut self, ctx: &mut NodeCtx<'_>, task: TaskState) {
        self.counters.inc_id(ctr().invokes_executed);
        let desc = {
            let obj = if let Ok(o) = self.store.get(task.code) {
                o
            } else {
                self.cache.get(task.code).expect("task ready")
            };
            match read_code_desc(obj) {
                Ok(d) => d,
                Err(_) => {
                    self.counters.inc_id(ctr().bad_code_objects);
                    return;
                }
            }
        };
        let body = match self.registry.get(desc.fn_id) {
            Ok(f) => f,
            Err(_) => {
                self.counters.inc_id(ctr().unknown_functions);
                return;
            }
        };
        let outcome = {
            let mut exec = ExecCtx::new(&self.store, &mut self.cache);
            body(&mut exec, &task.args)
        };
        let outcome = match outcome {
            Ok(o) => o,
            Err(_) => {
                self.counters.inc_id(ctr().exec_errors);
                return;
            }
        };
        let delay_ns = execution_ns(&desc, outcome.bytes_touched, self.cfg.load, self.cfg.speed);
        let delay = self.cfg.serve_delay + SimTime::from_nanos(delay_ns);
        match task.reply {
            Reply::Remote { to, req } => {
                self.served_invokes.insert((to.as_u128(), req), outcome.result.clone());
                let msg =
                    Msg::new(to, self.inbox, MsgBody::InvokeResult { req, result: outcome.result });
                self.transmit_after(ctx, delay, msg);
            }
            Reply::Script { script } => {
                let id = self.next_defer;
                self.next_defer += 1;
                self.task_results.insert(id, (script, outcome.result));
                ctx.set_timer(delay, tags::TASK_DONE | id);
            }
        }
    }

    /// Task watchdog: an executor-side invocation is still waiting for
    /// objects; re-chase the missing ones (lost fetches) until it runs.
    fn handle_task_watch(&mut self, ctx: &mut NodeCtx<'_>, task_id: usize) {
        let Some(Some(task)) = self.tasks.get_mut(task_id) else { return };
        if task.retries >= self.cfg.max_retries {
            self.counters.inc_id(ctr().tasks_abandoned);
            self.tasks[task_id] = None;
            return;
        }
        task.retries += 1;
        let wanted: Vec<ObjId> =
            std::iter::once(task.code).chain(task.args.iter().copied()).collect();
        for obj in wanted {
            if !(self.store.contains(obj) || self.cache.get(obj).is_some()) {
                self.retry_fetch(ctx, obj);
            }
        }
        ctx.set_timer(self.cfg.retry_timeout, tags::TASK_WATCH | task_id as u64);
        self.try_run_tasks(ctx);
    }

    fn drive_traversals(&mut self, ctx: &mut NodeCtx<'_>) {
        let mut fetch_wanted: Vec<(ObjId, usize)> = Vec::new();
        let mut finished: Vec<usize> = Vec::new();
        for t_idx in 0..self.traversals.len() {
            loop {
                let (cur_obj, cur_off) = self.traversals[t_idx].cur;
                if self.traversals[t_idx].done {
                    break;
                }
                if self.traversals[t_idx].values.len() >= self.traversals[t_idx].max_steps {
                    self.traversals[t_idx].done = true;
                    finished.push(t_idx);
                    break;
                }
                let read = {
                    let obj = if let Ok(o) = self.store.get(cur_obj) {
                        Some(o)
                    } else {
                        self.cache.get(cur_obj)
                    };
                    match obj {
                        None => None,
                        Some(o) => {
                            let value = o.read_u64(cur_off).ok();
                            let next = o.read_ptr(cur_off + 8).ok();
                            match (value, next) {
                                (Some(v), Some(n)) => {
                                    let resolved =
                                        if n.is_null() { None } else { o.resolve_ptr(n).ok() };
                                    Some((v, n.is_null(), resolved))
                                }
                                _ => None,
                            }
                        }
                    }
                };
                match read {
                    None => {
                        // Node object not here yet: demand fetch, block.
                        fetch_wanted.push((cur_obj, self.traversals[t_idx].script));
                        break;
                    }
                    Some((value, is_null, resolved)) => {
                        self.traversals[t_idx].values.push(value);
                        if is_null {
                            self.traversals[t_idx].done = true;
                            finished.push(t_idx);
                            break;
                        }
                        match resolved {
                            Some((next_obj, next_off)) => {
                                self.traversals[t_idx].cur = (next_obj, next_off);
                            }
                            None => {
                                self.counters.inc_id(ctr().dangling_pointers);
                                self.traversals[t_idx].done = true;
                                finished.push(t_idx);
                                break;
                            }
                        }
                    }
                }
            }
        }
        for (obj, script) in fetch_wanted {
            self.ensure_fetch(ctx, obj, true, Some(script));
        }
        // Complete scripts of finished traversals.
        let mut completed: Vec<(usize, Vec<u64>)> = Vec::new();
        self.traversals.retain(|t| {
            if t.done {
                completed.push((t.script, t.values.clone()));
                false
            } else {
                true
            }
        });
        for (script, values) in completed {
            if let Some(p) = self.progress.get_mut(&script) {
                p.traversal_values = values;
                p.waiting_invoke = None;
                p.step += 1;
                p.retries = 0;
            }
            self.advance_script(ctx, script);
        }
    }

    fn on_invoke_result(&mut self, ctx: &mut NodeCtx<'_>, req: u64, result: Vec<u8>) {
        let script = self.progress.iter().find_map(|(idx, p)| {
            if p.waiting_invoke == Some(req) {
                Some(*idx)
            } else {
                None
            }
        });
        if let Some(idx) = script {
            let p = self.progress.get_mut(&idx).expect("present");
            p.invoke_result = result;
            p.waiting_invoke = None;
            p.invoke_executor = None;
            p.step += 1;
            p.retries = 0;
            let ispan = p.invoke_span.take();
            if ispan.is_some() {
                ctx.trace.span_end("core.invoke", ispan);
            }
            self.advance_script(ctx, idx);
        }
    }
}

impl Node for GasHostNode {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _port: PortId, packet: Packet) {
        let Ok(msg) = Msg::decode(&packet.payload) else { return };
        let src = msg.header.src;
        match msg.body {
            MsgBody::ObjImageReq { req, target }
                // Serve if we hold it; NACK if the request was addressed to
                // us (inbox) or routed on the object itself (the fabric
                // believed we were its home — a stale route).
                if (self.store.contains(target)
                    || msg.header.dst == self.inbox
                    || msg.header.dst == target)
                => {
                    self.serve_image(ctx, src, req, target);
                }
            MsgBody::ObjImageFrag { req, frag, .. } => {
                let Ok(frag) = Fragment::decode(&frag) else {
                    self.counters.inc_id(ctr().corrupt_fragments);
                    return;
                };
                let reasm = self.reasm.entry(src).or_default();
                match reasm.accept(frag) {
                    Ok(Some(image)) => self.on_image_complete(ctx, src, req, image),
                    Ok(None) => {}
                    Err(_) => self.counters.inc_id(ctr().corrupt_fragments),
                }
            }
            MsgBody::ObjImageResp { req, image, .. } => {
                self.on_image_complete(ctx, src, req, image);
            }
            MsgBody::WriteAck { req, .. } => {
                let script = self.progress.iter().find_map(|(idx, p)| {
                    if p.waiting_push == Some(req) {
                        Some(*idx)
                    } else {
                        None
                    }
                });
                if let Some(idx) = script {
                    let p = self.progress.get_mut(&idx).expect("present");
                    p.waiting_push = None;
                    p.step += 1;
                    p.retries = 0;
                    // PushTo shares `waiting_push` but opens no span.
                    let wspan = p.write_span.take();
                    if wspan.is_some() {
                        ctx.trace.span_end("core.write", wspan);
                    }
                    self.advance_script(ctx, idx);
                }
            }
            MsgBody::Invoke { req, code, args } => {
                if msg.header.dst != self.inbox {
                    return;
                }
                // At-most-once execution: replay cached results for
                // retransmitted invokes; ignore duplicates of running ones.
                if let Some(result) = self.served_invokes.get(&(src.as_u128(), req)) {
                    let out = Msg::new(
                        src,
                        self.inbox,
                        MsgBody::InvokeResult { req, result: result.clone() },
                    );
                    let delay = self.cfg.serve_delay;
                    self.transmit_after(ctx, delay, out);
                    return;
                }
                let duplicate = self.tasks.iter().flatten().any(|t| {
                    matches!(t.reply, Reply::Remote { to, req: r } if to == src && r == req)
                });
                if duplicate {
                    return;
                }
                let task_id = self.tasks.len();
                self.tasks.push(Some(TaskState {
                    reply: Reply::Remote { to: src, req },
                    code,
                    args,
                    retries: 0,
                }));
                ctx.set_timer(self.cfg.retry_timeout, tags::TASK_WATCH | task_id as u64);
                self.try_run_tasks(ctx);
            }
            MsgBody::InvokeResult { req, result } => {
                if msg.header.dst != self.inbox {
                    return;
                }
                self.on_invoke_result(ctx, req, result);
            }
            MsgBody::ReadReq { req, target, offset, len } => {
                // Small-read service (used by examples).
                let reply = match self.store.get(target) {
                    Ok(obj) => {
                        let end = (offset + len).min(obj.heap_len());
                        let data = if offset < end {
                            obj.read(offset, end - offset).map(<[u8]>::to_vec).unwrap_or_default()
                        } else {
                            Vec::new()
                        };
                        MsgBody::ReadResp { req, offset, version: obj.version(), data }
                    }
                    Err(_) if msg.header.dst == self.inbox || msg.header.dst == target => {
                        MsgBody::Nack { req, code: NackCode::NotHere }
                    }
                    Err(_) => return,
                };
                let out = Msg::new(src, self.inbox, reply);
                self.transmit_after(ctx, self.cfg.serve_delay, out);
            }
            MsgBody::WriteReq { req, target, offset, data } => {
                let reply = match self.store.get_mut(target) {
                    Ok(obj) => match obj.write(offset, &data) {
                        Ok(()) => {
                            let version = obj.version();
                            // Invalidate all cached readers of the object.
                            let actions = self.directory.write_at_home(target);
                            self.apply_dir_actions(ctx, target, version, actions);
                            self.counters.inc_id(ctr().writes_served);
                            MsgBody::WriteAck { req, version }
                        }
                        Err(_) => MsgBody::Nack { req, code: NackCode::BadRange },
                    },
                    Err(_) if msg.header.dst == self.inbox || msg.header.dst == target => {
                        MsgBody::Nack { req, code: NackCode::NotHere }
                    }
                    Err(_) => return,
                };
                let out = Msg::new(src, self.inbox, reply);
                self.transmit_after(ctx, self.cfg.serve_delay, out);
            }
            MsgBody::Nack { .. } => {
                self.counters.inc_id(ctr().nacks);
            }
            MsgBody::Invalidate { version } => {
                self.cache.invalidate(msg.header.dst, version);
            }
            MsgBody::DirInvalidate { obj, version }
                if self.cache.invalidate(obj, version) => {
                    self.counters.inc_id(ctr().dir_invalidates_applied);
                }
            // Explicitly ignored (D7): image requests we cannot serve and
            // no-op directory invalidations fall through their guards above;
            // read responses complete via the watchdog path; discovery,
            // gossip anti-entropy, controller advertisements, upgrade
            // coherence, and reliable-transport frames are other node
            // kinds' protocols.
            MsgBody::ObjImageReq { .. }
            | MsgBody::DirInvalidate { .. }
            | MsgBody::ReadResp { .. }
            | MsgBody::DiscoverReq { .. }
            | MsgBody::DiscoverResp { .. }
            | MsgBody::Advertise { .. }
            | MsgBody::GossipDigest { .. }
            | MsgBody::GossipDelta { .. }
            | MsgBody::UpgradeReq { .. }
            | MsgBody::UpgradeAck { .. }
            | MsgBody::RelData { .. }
            | MsgBody::RelAck { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        if tag & tags::DEFER != 0 {
            if let Some(msg) = self.deferred.remove(&(tag & !tags::DEFER)) {
                self.transmit(ctx, msg);
            }
        } else if tag & tags::WATCHDOG != 0 {
            self.handle_watchdog(ctx, (tag & !tags::WATCHDOG) as usize);
        } else if tag & tags::TASK_WATCH != 0 {
            self.handle_task_watch(ctx, (tag & !tags::TASK_WATCH) as usize);
        } else if tag & tags::TASK_DONE != 0 {
            if let Some((script, result)) = self.task_results.remove(&(tag & !tags::TASK_DONE)) {
                if let Some(p) = self.progress.get_mut(&script) {
                    p.invoke_result = result;
                    p.waiting_invoke = None;
                    p.step += 1;
                    p.retries = 0;
                    let ispan = p.invoke_span.take();
                    if ispan.is_some() {
                        ctx.trace.span_end("core.invoke", ispan);
                    }
                }
                self.advance_script(ctx, script);
            }
        } else if (tag as usize) < self.scripts.len() {
            self.start_script(ctx, tag as usize);
        }
    }

    fn sample_metrics(&self, m: &mut MetricSample<'_>) {
        m.gauge("memproto.cache_objects", self.cache.len() as u64);
        m.gauge("memproto.cache_bytes", self.cache.used_bytes());
        m.windowed_ratio_pct(
            "memproto.cache_hit_pct",
            self.cache.hits,
            self.cache.hits + self.cache.misses,
        );
        m.gauge("core.placement_queue", (self.progress.len() + self.fetches.len()) as u64);
        m.gauge("discovery.directory_size", self.directory.len() as u64);
    }

    fn audit(&self, a: &mut AuditScope<'_>) {
        a.declare_inbox(self.inbox.as_u128());
        for (obj, holder) in self.directory.all_holders() {
            a.claim_holder(obj.as_u128(), holder.as_u128());
        }
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::{make_code_object, CodeDesc};
    use crate::scenarios::{build_star_fabric, host_link_rack, standard_registry, FN_NOOP};
    use rdv_objspace::ObjectKind;

    const CLIENT_A: ObjId = ObjId(0x1111);
    const CLIENT_B: ObjId = ObjId(0x2222);
    const HOME: ObjId = ObjId(0x3333);
    const OBJ: ObjId = ObjId(0xBEEF);

    fn home_with_obj() -> GasHostNode {
        let mut home = GasHostNode::new("home", HOME, GasHostConfig::default());
        let mut obj = rdv_objspace::Object::with_capacity(OBJ, ObjectKind::Data, 1 << 16);
        let off = obj.alloc(8).unwrap();
        obj.write_u64(off, 1).unwrap();
        home.store.insert(obj).unwrap();
        home
    }

    #[test]
    fn fetch_then_coherent_write_invalidates_the_cached_copy() {
        // A fetches OBJ (becomes a sharer); B writes through the home; A's
        // cached copy must be invalidated; A's refetch sees the new data.
        let mut a = GasHostNode::new("a", CLIENT_A, GasHostConfig::default());
        a.scripts = vec![
            vec![ScriptStep::Fetch(OBJ)],
            vec![ScriptStep::Fetch(OBJ)], // after invalidation: refetch
        ];
        let mut b = GasHostNode::new("b", CLIENT_B, GasHostConfig::default());
        b.scripts = vec![vec![ScriptStep::Write {
            target: OBJ,
            offset: 8,
            data: 99u64.to_le_bytes().to_vec(),
        }]];
        let home = home_with_obj();
        let (mut sim, ids) = build_star_fabric(
            1,
            vec![
                (Box::new(a), CLIENT_A, host_link_rack()),
                (Box::new(b), CLIENT_B, host_link_rack()),
                (Box::new(home), HOME, host_link_rack()),
            ],
            &[(OBJ, 2)],
        );
        // t=1ms: A fetches. t=2ms: B writes. t=3ms: A refetches.
        sim.schedule(SimTime::from_millis(1), ids[0], 0);
        sim.schedule(SimTime::from_millis(2), ids[1], 0);
        sim.schedule(SimTime::from_millis(3), ids[0], 1);
        sim.run_until_idle();

        let a = sim.node_as_mut::<GasHostNode>(ids[0]).unwrap();
        assert_eq!(a.records.len(), 2);
        // The invalidation landed between the two fetches.
        assert_eq!(a.counters.get("dir_invalidates_applied"), 1);
        // The refetched copy carries B's write.
        let cached = a.cache.get(OBJ).expect("refetched");
        assert_eq!(cached.read_u64(8).unwrap(), 99);
        let home = sim.node_as::<GasHostNode>(ids[2]).unwrap();
        assert_eq!(home.counters.get("writes_served"), 1);
        assert_eq!(home.counters.get("dir_invalidates_sent"), 1);
        let b = sim.node_as::<GasHostNode>(ids[1]).unwrap();
        assert!(!b.records[0].failed);
    }

    #[test]
    fn trace_spans_bracket_fetch_write_and_script_lifecycles() {
        // The coherent-write scenario again, traced: every protocol span
        // opened by the runtime must be closed, and the write span must
        // have crossed the fabric (its closing ack arrived in a packet).
        let mut a = GasHostNode::new("a", CLIENT_A, GasHostConfig::default());
        a.scripts = vec![vec![ScriptStep::Fetch(OBJ)], vec![ScriptStep::Fetch(OBJ)]];
        let mut b = GasHostNode::new("b", CLIENT_B, GasHostConfig::default());
        b.scripts = vec![vec![ScriptStep::Write {
            target: OBJ,
            offset: 8,
            data: 99u64.to_le_bytes().to_vec(),
        }]];
        let home = home_with_obj();
        let (mut sim, ids) = build_star_fabric(
            1,
            vec![
                (Box::new(a), CLIENT_A, host_link_rack()),
                (Box::new(b), CLIENT_B, host_link_rack()),
                (Box::new(home), HOME, host_link_rack()),
            ],
            &[(OBJ, 2)],
        );
        sim.enable_trace(1 << 16);
        sim.schedule(SimTime::from_millis(1), ids[0], 0);
        sim.schedule(SimTime::from_millis(2), ids[1], 0);
        sim.schedule(SimTime::from_millis(3), ids[0], 1);
        sim.run_until_idle();
        let tracer = sim.take_tracer();

        let count = |structural: &str, label: &str| {
            tracer
                .iter()
                .filter(|(_, e)| e.kind.name() == structural && e.kind.label() == Some(label))
                .count()
        };
        // Three scripts (two fetches on A, one write on B), all completed.
        assert_eq!(count("span.begin", "core.script"), 3);
        assert_eq!(count("span.end", "core.script"), 3);
        assert_eq!(count("span.begin", "core.fetch"), 2);
        assert_eq!(count("span.end", "core.fetch"), 2);
        assert_eq!(count("span.begin", "core.write"), 1);
        assert_eq!(count("span.end", "core.write"), 1);

        // The write span's end pairs with its begin (aux edge) and its
        // ancestry includes a packet delivery: the WriteAck from the home.
        let (end_id, end_ev) = tracer
            .iter()
            .find(|(_, e)| e.kind.name() == "span.end" && e.kind.label() == Some("core.write"))
            .expect("write span closed");
        let begin = end_ev.aux.expect("end links its begin");
        assert_eq!(tracer.get(begin).unwrap().kind.label(), Some("core.write"));
        assert!(
            tracer
                .ancestry(end_id)
                .iter()
                .any(|eid| tracer.get(*eid).unwrap().kind.name() == "packet.deliver"),
            "write ack should have arrived over the fabric"
        );
    }

    #[test]
    fn write_to_missing_object_nacks() {
        let mut b = GasHostNode::new("b", CLIENT_B, GasHostConfig::default());
        b.scripts =
            vec![vec![ScriptStep::Write { target: ObjId(0xDEAD), offset: 8, data: vec![1] }]];
        let home = home_with_obj();
        let (mut sim, ids) = build_star_fabric(
            1,
            vec![
                (Box::new(b), CLIENT_B, host_link_rack()),
                (Box::new(home), HOME, host_link_rack()),
            ],
            // Route the ghost object at the home so the request arrives.
            &[(ObjId(0xDEAD), 1)],
        );
        sim.schedule(SimTime::from_millis(1), ids[0], 0);
        sim.run_until_idle();
        let b = sim.node_as::<GasHostNode>(ids[0]).unwrap();
        // The write NACKs; the watchdog retries, exhausts its budget, and
        // surfaces the failure rather than hanging forever.
        assert_eq!(b.records.len(), 1);
        assert!(b.records[0].failed, "script must be abandoned, not stuck");
        assert!(b.counters.get("nacks") >= 1);
    }

    #[test]
    fn coherent_write_survives_loss() {
        let mut a = GasHostNode::new(
            "a",
            CLIENT_A,
            GasHostConfig { retry_timeout: SimTime::from_micros(300), ..Default::default() },
        );
        a.scripts = vec![vec![
            ScriptStep::Write { target: OBJ, offset: 8, data: 7u64.to_le_bytes().to_vec() },
            ScriptStep::Fetch(OBJ),
        ]];
        let home = home_with_obj();
        let (mut sim, ids) = build_star_fabric(
            5,
            vec![
                (Box::new(a), CLIENT_A, host_link_rack().with_loss(150)),
                (Box::new(home), HOME, host_link_rack().with_loss(150)),
            ],
            &[(OBJ, 1)],
        );
        sim.schedule(SimTime::from_millis(1), ids[0], 0);
        sim.run_until_idle();
        let a = sim.node_as_mut::<GasHostNode>(ids[0]).unwrap();
        assert_eq!(a.records.len(), 1, "write+fetch must complete despite 15% loss");
        assert!(!a.records[0].failed);
        assert_eq!(a.cache.get(OBJ).unwrap().read_u64(8).unwrap(), 7);
    }

    #[test]
    fn duplicate_invokes_execute_once() {
        // Direct wire-level check of at-most-once execution.
        let registry = standard_registry();
        let mut server = GasHostNode::new("s", HOME, GasHostConfig::default());
        server.registry = registry;
        server
            .store
            .insert(make_code_object(
                ObjId(0xC0),
                CodeDesc { fn_id: FN_NOOP, base_ns: 10, ps_per_byte: 0 },
            ))
            .unwrap();
        let mut client = GasHostNode::new("c", CLIENT_A, GasHostConfig::default());
        client.scripts = vec![vec![ScriptStep::Invoke {
            executor: Some(HOME),
            code: ObjId(0xC0),
            args: vec![],
            result_bytes: 8,
        }]];
        let (mut sim, ids) = build_star_fabric(
            2,
            vec![
                (Box::new(client), CLIENT_A, host_link_rack()),
                (Box::new(server), HOME, host_link_rack()),
            ],
            &[(ObjId(0xC0), 1)],
        );
        sim.schedule(SimTime::from_millis(1), ids[0], 0);
        sim.run_until_idle();
        // Now replay the exact invoke by scheduling the same script again:
        // the server must serve the cached result, not re-execute...
        // (the client allocates a fresh req, so instead check the counter
        // after the normal run and after a watchdog-style repeat below).
        let before = sim.node_as::<GasHostNode>(ids[1]).unwrap().counters.get("invokes_executed");
        assert_eq!(before, 1);
        assert_eq!(
            sim.node_as::<GasHostNode>(ids[1]).unwrap().served_invokes.len(),
            1,
            "result cached for replay"
        );
    }
}
