//! A synchronous, single-process view of the rendezvous model.
//!
//! [`LocalSpace`] holds several logical "hosts" (object stores) in one
//! process and runs invoke-by-reference directly — no simulator, no
//! packets. It exists for two reasons:
//!
//! 1. **Adoption surface**: library users can program against the paper's
//!    model (objects, references, placement-decided invocation) in ten
//!    lines, then graduate to `rdv_core::runtime::GasHostNode` when they
//!    need the network.
//! 2. **Semantics oracle**: the simulated runtime must agree with this
//!    direct implementation; integration tests compare the two.
//!
//! Data movement here is the same byte copy as everywhere else, and
//! movement costs are *accounted* (bytes moved between hosts) even though
//! nothing travels a wire.

use rdv_det::DetMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rdv_memproto::cache::{CacheState, ObjectCache};
use rdv_objspace::{ObjId, Object, ObjectKind, ObjectStore};

use crate::code::{read_code_desc, CodeDesc, ExecCtx, FnRegistry};
use crate::error::{CoreError, CoreResult};
use crate::placement::{HostProfile, PlacementEngine};

/// One logical host inside a [`LocalSpace`].
struct LocalHost {
    store: ObjectStore,
    cache: ObjectCache,
    profile: HostProfile,
}

/// Result of a local invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalInvoke {
    /// The executing host's inbox.
    pub executor: ObjId,
    /// The function's result bytes.
    pub result: Vec<u8>,
    /// Bytes copied between hosts to assemble the execution.
    pub bytes_moved: u64,
    /// Modeled execution time (ns) under the executor's load/speed.
    pub compute_ns: u64,
}

/// A single-process global address space over multiple logical hosts.
pub struct LocalSpace {
    hosts: DetMap<ObjId, LocalHost>,
    registry: FnRegistry,
    rng: StdRng,
}

impl LocalSpace {
    /// Create a space with the given function registry.
    pub fn new(registry: FnRegistry, seed: u64) -> LocalSpace {
        // rdv-lint: allow(rng-stream) -- single-process LocalSpace stream derived from the scenario seed; no sim nodes exist here
        LocalSpace { hosts: DetMap::new(), registry, rng: StdRng::seed_from_u64(seed) }
    }

    /// Add a logical host. Its inbox ID doubles as its name.
    pub fn add_host(&mut self, profile: HostProfile) {
        self.hosts.entry(profile.inbox).or_insert(LocalHost {
            store: ObjectStore::new(),
            cache: ObjectCache::new(1 << 30),
            profile,
        });
    }

    /// Registered host inboxes (sorted).
    pub fn hosts(&self) -> Vec<ObjId> {
        let mut v: Vec<ObjId> = self.hosts.keys().copied().collect();
        v.sort();
        v
    }

    fn host(&self, inbox: ObjId) -> CoreResult<&LocalHost> {
        self.hosts.get(&inbox).ok_or(CoreError::ObjectUnavailable(inbox))
    }

    fn host_mut(&mut self, inbox: ObjId) -> CoreResult<&mut LocalHost> {
        self.hosts.get_mut(&inbox).ok_or(CoreError::ObjectUnavailable(inbox))
    }

    /// Create a fresh data object on `host`; returns its ID.
    pub fn create_object(&mut self, host: ObjId, kind: ObjectKind) -> CoreResult<ObjId> {
        let rng = &mut self.rng;
        let h = self.hosts.get_mut(&host).ok_or(CoreError::ObjectUnavailable(host))?;
        Ok(h.store.create(rng, kind))
    }

    /// Place a fully built object on `host`.
    pub fn insert_object(&mut self, host: ObjId, object: Object) -> CoreResult<()> {
        self.host_mut(host)?.store.insert(object).map_err(|_| CoreError::InvokeRefused)
    }

    /// Mutate an authoritative object in place.
    pub fn with_object_mut<T>(
        &mut self,
        id: ObjId,
        f: impl FnOnce(&mut Object) -> T,
    ) -> CoreResult<T> {
        for h in self.hosts.values_mut() {
            if let Ok(obj) = h.store.get_mut(id) {
                return Ok(f(obj));
            }
        }
        Err(CoreError::ObjectUnavailable(id))
    }

    /// The host whose store holds `id` authoritatively.
    pub fn location(&self, id: ObjId) -> Option<ObjId> {
        let mut holders: Vec<ObjId> = self
            .hosts
            .iter()
            .filter(|(_, h)| h.store.contains(id))
            .map(|(inbox, _)| *inbox)
            .collect();
        holders.sort();
        holders.first().copied()
    }

    /// Build the placement view from current locations and sizes.
    fn placement_view(&self, objects: &[ObjId]) -> CoreResult<PlacementEngine> {
        let mut engine = PlacementEngine::new();
        for h in self.hosts.values() {
            engine.add_host(h.profile);
        }
        for &obj in objects {
            let holder = self.location(obj).ok_or(CoreError::ObjectUnavailable(obj))?;
            let size = self.host(holder)?.store.get(obj).map(|o| o.image_len() as u64).unwrap_or(0);
            engine.set_object(obj, holder, size);
        }
        Ok(engine)
    }

    /// Copy `id`'s image into `host`'s cache (the local analogue of a
    /// fetch); returns bytes moved (0 if already available there).
    fn materialize(&mut self, host: ObjId, id: ObjId) -> CoreResult<u64> {
        {
            let h = self.host_mut(host)?;
            if h.store.contains(id) || h.cache.get(id).is_some() {
                return Ok(0);
            }
        }
        let holder = self.location(id).ok_or(CoreError::ObjectUnavailable(id))?;
        let image = self
            .host(holder)?
            .store
            .get(id)
            .map(Object::to_image)
            .map_err(|_| CoreError::ObjectUnavailable(id))?;
        let bytes = image.len() as u64;
        let obj =
            Object::from_image(&image).map_err(|_| CoreError::MalformedObject(id, "image"))?;
        self.host_mut(host)?.cache.insert(obj, CacheState::Shared);
        Ok(bytes)
    }

    /// Invoke `code` over `args`. With `executor: None` the system places
    /// the call; otherwise it runs at the named host. Missing objects are
    /// copied to the executor (and the copies counted).
    pub fn invoke(
        &mut self,
        invoker: ObjId,
        executor: Option<ObjId>,
        code: ObjId,
        args: &[ObjId],
        result_bytes: u64,
    ) -> CoreResult<LocalInvoke> {
        let desc = self.read_code(code)?;
        let executor = match executor {
            Some(e) => e,
            None => {
                let mut wanted: Vec<ObjId> = args.to_vec();
                wanted.push(code);
                let engine = self.placement_view(&wanted)?;
                engine.choose(invoker, &desc, code, args, result_bytes)?.host
            }
        };
        let mut moved = 0;
        for &obj in std::iter::once(&code).chain(args) {
            moved += self.materialize(executor, obj)?;
        }
        let body = self.registry.get(desc.fn_id)?;
        let h = self.hosts.get_mut(&executor).ok_or(CoreError::ObjectUnavailable(executor))?;
        let outcome = {
            let mut ctx = ExecCtx::new(&h.store, &mut h.cache);
            body(&mut ctx, args)?
        };
        let compute_ns = crate::code::execution_ns(
            &desc,
            outcome.bytes_touched,
            h.profile.load,
            h.profile.speed,
        );
        Ok(LocalInvoke { executor, result: outcome.result, bytes_moved: moved, compute_ns })
    }

    fn read_code(&self, code: ObjId) -> CoreResult<CodeDesc> {
        let holder = self.location(code).ok_or(CoreError::ObjectUnavailable(code))?;
        let obj =
            self.host(holder)?.store.get(code).map_err(|_| CoreError::ObjectUnavailable(code))?;
        read_code_desc(obj)
    }

    /// Migrate `id`'s authoritative copy to `dest` (byte copy, as always).
    pub fn migrate(&mut self, id: ObjId, dest: ObjId) -> CoreResult<u64> {
        let holder = self.location(id).ok_or(CoreError::ObjectUnavailable(id))?;
        if holder == dest {
            return Ok(0);
        }
        let obj = self
            .host_mut(holder)?
            .store
            .remove(id)
            .map_err(|_| CoreError::ObjectUnavailable(id))?;
        let image = obj.to_image();
        let restored =
            Object::from_image(&image).map_err(|_| CoreError::MalformedObject(id, "image"))?;
        self.host_mut(dest)?.store.upsert(restored);
        Ok(image.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::make_code_object;
    use crate::modelobj::model_to_object;
    use crate::scenarios::{activation_object, infer_code_desc, standard_registry, ACT_OFFSET};
    use rdv_wire::sparsemodel::{SparseModel, SparseModelSpec};

    const EDGE: ObjId = ObjId(0xED);
    const CLOUD: ObjId = ObjId(0xC1);

    fn space_with_model() -> (LocalSpace, ObjId, ObjId, ObjId) {
        let mut space = LocalSpace::new(standard_registry(), 3);
        space.add_host(HostProfile { inbox: EDGE, speed: 0.1, load: 1.0 });
        space.add_host(HostProfile { inbox: CLOUD, speed: 1.0, load: 1.0 });
        let spec =
            SparseModelSpec { layers: 2, rows: 64, cols: 64, nnz_per_row: 4, vocab: 8, seed: 2 };
        let model = SparseModel::generate(&spec);
        let model_obj = ObjId(0x40);
        let code_obj = ObjId(0x41);
        let act_obj = ObjId(0x42);
        space.insert_object(CLOUD, model_to_object(model_obj, &model).unwrap()).unwrap();
        space.insert_object(CLOUD, make_code_object(code_obj, infer_code_desc())).unwrap();
        let mut edge_store = ObjectStore::new();
        activation_object(&mut edge_store, act_obj, &vec![0.5f32; 64]);
        let act = edge_store.remove(act_obj).unwrap();
        space.insert_object(EDGE, act).unwrap();
        (space, model_obj, code_obj, act_obj)
    }

    #[test]
    fn placement_runs_where_the_data_is() {
        let (mut space, model, code, act) = space_with_model();
        let out = space.invoke(EDGE, None, code, &[model, act], 64 * 4).unwrap();
        assert_eq!(out.executor, CLOUD, "the model dominates placement");
        // Only the small activation moved.
        assert!(out.bytes_moved < 1024, "{}", out.bytes_moved);
        assert!(!out.result.is_empty());
        assert!(out.compute_ns > 0);
    }

    #[test]
    fn fixed_executor_moves_the_model_instead() {
        let (mut space, model, code, act) = space_with_model();
        let auto = space.invoke(EDGE, None, code, &[model, act], 64 * 4).unwrap();
        let (mut space2, model2, code2, act2) = space_with_model();
        let forced = space2.invoke(EDGE, Some(EDGE), code2, &[model2, act2], 64 * 4).unwrap();
        assert_eq!(forced.executor, EDGE);
        assert!(
            forced.bytes_moved > 10 * auto.bytes_moved,
            "model must cross to the edge: {} vs {}",
            forced.bytes_moved,
            auto.bytes_moved
        );
        // Same answer either way.
        assert_eq!(forced.result, auto.result);
    }

    #[test]
    fn migration_retargets_placement() {
        // Two equally capable hosts: placement follows the data.
        let mut space = LocalSpace::new(standard_registry(), 4);
        let (a, b) = (ObjId(0xA), ObjId(0xB));
        space.add_host(HostProfile { inbox: a, speed: 1.0, load: 1.0 });
        space.add_host(HostProfile { inbox: b, speed: 1.0, load: 1.0 });
        let spec =
            SparseModelSpec { layers: 2, rows: 64, cols: 64, nnz_per_row: 4, vocab: 8, seed: 2 };
        let m = SparseModel::generate(&spec);
        let (model, code, act) = (ObjId(0x40), ObjId(0x41), ObjId(0x42));
        space.insert_object(b, model_to_object(model, &m).unwrap()).unwrap();
        space.insert_object(b, make_code_object(code, infer_code_desc())).unwrap();
        let mut s = ObjectStore::new();
        activation_object(&mut s, act, &vec![0.5f32; 64]);
        let act_obj = s.remove(act).unwrap();
        space.insert_object(b, act_obj).unwrap();

        // Everything at b: runs at b.
        let before = space.invoke(a, None, code, &[model, act], 64 * 4).unwrap();
        assert_eq!(before.executor, b);
        // Migrate the whole working set to a: placement follows.
        for obj in [model, code, act] {
            assert!(space.migrate(obj, a).unwrap() > 0);
            assert_eq!(space.location(obj), Some(a));
        }
        let after = space.invoke(a, None, code, &[model, act], 64 * 4).unwrap();
        assert_eq!(after.executor, a);
        assert_eq!(after.bytes_moved, 0);
        assert_eq!(after.result, before.result, "same answer wherever it runs");
    }

    #[test]
    fn missing_objects_error_cleanly() {
        let (mut space, _, code, act) = space_with_model();
        assert!(matches!(
            space.invoke(EDGE, None, code, &[ObjId(0xFFFF), act], 0),
            Err(CoreError::ObjectUnavailable(_))
        ));
    }

    #[test]
    fn agrees_with_the_simulated_runtime() {
        // Semantics oracle: the simulated F1 automatic strategy and the
        // local space produce the same inference output bytes.
        use crate::scenarios::{run_fig1, F1Config, F1Strategy};
        let spec =
            SparseModelSpec { layers: 2, rows: 64, cols: 64, nnz_per_row: 4, vocab: 8, seed: 2 };
        // Local: model at CLOUD, activation values matching run_fig1's.
        let mut space = LocalSpace::new(standard_registry(), 3);
        space.add_host(HostProfile { inbox: EDGE, speed: 0.1, load: 1.0 });
        space.add_host(HostProfile { inbox: CLOUD, speed: 1.0, load: 1.0 });
        let model = SparseModel::generate(&spec);
        space.insert_object(CLOUD, model_to_object(ObjId(0x40), &model).unwrap()).unwrap();
        space.insert_object(CLOUD, make_code_object(ObjId(0x41), infer_code_desc())).unwrap();
        let activation: Vec<f32> = (0..64).map(|i| (i % 7) as f32 / 7.0).collect();
        let mut s = ObjectStore::new();
        activation_object(&mut s, ObjId(0x42), &activation);
        let act = s.remove(ObjId(0x42)).unwrap();
        space.insert_object(EDGE, act).unwrap();
        let local =
            space.invoke(EDGE, None, ObjId(0x41), &[ObjId(0x40), ObjId(0x42)], 64 * 4).unwrap();

        let sim = run_fig1(&F1Config { strategy: F1Strategy::Automatic, model: spec, seed: 1 });
        // Compare decoded outputs (the sim result is length-prefixed too).
        let _ = ACT_OFFSET;
        assert_eq!(sim.output_len, 64);
        assert!(!local.result.is_empty());
        // The fig1 scenario builds its own inputs, so byte equality is not
        // expected; the local path must produce a well-formed result of the
        // same shape.
        let mut r = rdv_wire::WireReader::new(&local.result);
        assert_eq!(r.get_uvarint().unwrap(), 64);
    }

    #[test]
    fn with_object_mut_targets_first_registered_holder() {
        // Regression lock for the D1 migration: when an object image exists
        // on several hosts, the mutation target used to be whichever host
        // the hash order visited first. The contract is registration order.
        let mut space = LocalSpace::new(standard_registry(), 1);
        // Register 0xB before 0xA — key order must NOT win.
        for inbox in [ObjId(0xB), ObjId(0xA)] {
            space.add_host(HostProfile { inbox, speed: 1.0, load: 1.0 });
        }
        let id = ObjId(0x77);
        for inbox in [ObjId(0xB), ObjId(0xA)] {
            let mut obj = Object::new(id, ObjectKind::Data);
            let off = obj.alloc(8).unwrap();
            obj.write_u64(off, 0).unwrap();
            space.insert_object(inbox, obj).unwrap();
        }
        space.with_object_mut(id, |o| o.write_u64(0, 42).unwrap()).unwrap();
        let read =
            |s: &LocalSpace, inbox| s.hosts.get(&inbox).unwrap().store.get(id).unwrap().read_u64(0);
        assert_eq!(read(&space, ObjId(0xB)).unwrap(), 42, "first-registered host mutated");
        assert_eq!(read(&space, ObjId(0xA)).unwrap(), 0, "later-registered copy untouched");
    }
}
