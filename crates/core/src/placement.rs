//! The placement engine.
//!
//! §3.1: *"in our model the programmer would not be directly asking Carol
//! to perform the computation; instead the placement decision would be made
//! by the system."* And: *"These transfer costs … can now be included in
//! cost-models when making placement decisions more easily, as they do not
//! need to take the additional loading time into account."*
//!
//! [`PlacementEngine::choose`] estimates, for every candidate host, the
//! completion time of running a code object against a set of argument
//! objects: moving each absent argument over the fabric (byte-copy — no
//! serialize/load term, exactly the paper's point), executing under the
//! host's load and speed, and returning the (small) result to the invoker.

use rdv_det::DetMap;

use rdv_objspace::ObjId;

use crate::code::{execution_ns, CodeDesc};
use crate::error::{CoreError, CoreResult};

/// What the system knows about a host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostProfile {
    /// The host's inbox object (its identity).
    pub inbox: ObjId,
    /// Relative compute speed (1.0 = baseline core).
    pub speed: f64,
    /// Load factor (1.0 = idle; 4.0 = requests take 4× as long).
    pub load: f64,
}

/// Cost of moving bytes between two hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkCost {
    /// One-way latency, nanoseconds.
    pub latency_ns: u64,
    /// Bandwidth, bits per second.
    pub bandwidth_bps: u64,
}

impl LinkCost {
    /// Time to move `bytes` one way. A zero bandwidth (the `Default`
    /// placeholder) is treated as infinitely fast rather than dividing by
    /// zero.
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        if self.bandwidth_bps == 0 {
            return self.latency_ns;
        }
        self.latency_ns + (bytes as u128 * 8 * 1_000_000_000 / self.bandwidth_bps as u128) as u64
    }
}

/// The system-side placement state: host profiles, object locations and
/// sizes, and pairwise link costs.
///
/// ```
/// use rdv_core::placement::{PlacementEngine, HostProfile, LinkCost};
/// use rdv_core::code::CodeDesc;
/// use rdv_objspace::ObjId;
///
/// let (edge, cloud) = (ObjId(0xA), ObjId(0xB));
/// let (data, code) = (ObjId(1), ObjId(2));
/// let mut engine = PlacementEngine::new();
/// engine.add_host(HostProfile { inbox: edge, speed: 0.1, load: 1.0 });
/// engine.add_host(HostProfile { inbox: cloud, speed: 1.0, load: 1.0 });
/// engine.set_link(edge, cloud, LinkCost { latency_ns: 200_000, bandwidth_bps: 1_000_000_000 });
/// engine.set_object(data, cloud, 64 << 20);   // 64 MiB, already in the cloud
/// engine.set_object(code, cloud, 256);
/// let desc = CodeDesc { fn_id: 1, base_ns: 50_000, ps_per_byte: 500 };
///
/// // Invoked from the edge, the system runs the code where the data is:
/// let choice = engine.choose(edge, &desc, code, &[data], 1024).unwrap();
/// assert_eq!(choice.host, cloud);
/// assert_eq!(choice.bytes_moved, 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PlacementEngine {
    hosts: Vec<HostProfile>,
    /// object → (holder inbox, size in bytes).
    objects: DetMap<ObjId, (ObjId, u64)>,
    /// unordered host pair → link cost.
    links: DetMap<(ObjId, ObjId), LinkCost>,
    default_link: LinkCost,
}

/// One candidate's estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementEstimate {
    /// The candidate executor.
    pub host: ObjId,
    /// Estimated completion time, nanoseconds.
    pub total_ns: u64,
    /// Bytes that would move over the fabric.
    pub bytes_moved: u64,
}

impl PlacementEngine {
    /// Engine with a default fabric link (rack-class).
    pub fn new() -> PlacementEngine {
        PlacementEngine {
            default_link: LinkCost { latency_ns: 20_000, bandwidth_bps: 100_000_000_000 },
            ..Default::default()
        }
    }

    /// Register a candidate executor.
    pub fn add_host(&mut self, profile: HostProfile) {
        self.hosts.retain(|h| h.inbox != profile.inbox);
        self.hosts.push(profile);
    }

    /// Update (or learn) where an object lives and how big it is.
    pub fn set_object(&mut self, obj: ObjId, holder: ObjId, size: u64) {
        self.objects.insert(obj, (holder, size));
    }

    /// Record the link cost between two hosts (symmetric).
    pub fn set_link(&mut self, a: ObjId, b: ObjId, cost: LinkCost) {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.links.insert(key, cost);
    }

    /// The link cost between two hosts (the default if unrecorded).
    pub fn link(&self, a: ObjId, b: ObjId) -> LinkCost {
        if a == b {
            return LinkCost { latency_ns: 0, bandwidth_bps: u64::MAX };
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        self.links.get(&key).copied().unwrap_or(self.default_link)
    }

    /// Where the engine believes `obj` lives.
    pub fn location(&self, obj: ObjId) -> Option<ObjId> {
        self.objects.get(&obj).map(|(h, _)| *h)
    }

    /// Registered hosts.
    pub fn hosts(&self) -> &[HostProfile] {
        &self.hosts
    }

    /// Estimate completion time if `host` executes `code` over `args`,
    /// invoked from `invoker` with `result_bytes` coming back.
    pub fn estimate(
        &self,
        host: &HostProfile,
        invoker: ObjId,
        code: &CodeDesc,
        code_obj: ObjId,
        args: &[ObjId],
        result_bytes: u64,
    ) -> CoreResult<PlacementEstimate> {
        let mut total = 0u64;
        let mut moved = 0u64;
        let mut touched = 0u64;
        // The invocation request itself: invoker → executor.
        total += self.link(invoker, host.inbox).latency_ns;
        // Arguments (and the code object) that are not already at the host
        // must move there. Transfers from distinct holders overlap in
        // practice; we charge the max of parallel transfers plus the sum of
        // same-source transfers — approximated here as the dominant source
        // sum, which is exact for the single-remote-source cases the
        // experiments exercise.
        let mut per_source: DetMap<ObjId, u64> = DetMap::new();
        for &obj in args.iter().chain(std::iter::once(&code_obj)) {
            let &(holder, size) =
                self.objects.get(&obj).ok_or(CoreError::ObjectUnavailable(obj))?;
            if obj != code_obj {
                touched += size;
            }
            if holder != host.inbox {
                moved += size;
                let ns = self.link(holder, host.inbox).transfer_ns(size);
                *per_source.entry(holder).or_insert(0) += ns;
            }
        }
        total += per_source.values().copied().max().unwrap_or(0);
        // Execution under load/speed.
        total += execution_ns(code, touched, host.load, host.speed);
        // Result back to the invoker.
        total += self.link(host.inbox, invoker).transfer_ns(result_bytes);
        Ok(PlacementEstimate { host: host.inbox, total_ns: total, bytes_moved: moved })
    }

    /// Choose the host minimizing estimated completion time (ties broken by
    /// lower inbox ID for determinism).
    pub fn choose(
        &self,
        invoker: ObjId,
        code: &CodeDesc,
        code_obj: ObjId,
        args: &[ObjId],
        result_bytes: u64,
    ) -> CoreResult<PlacementEstimate> {
        let mut best: Option<PlacementEstimate> = None;
        for host in &self.hosts {
            let est = self.estimate(host, invoker, code, code_obj, args, result_bytes)?;
            let better = match &best {
                None => true,
                Some(b) => {
                    est.total_ns < b.total_ns || (est.total_ns == b.total_ns && est.host < b.host)
                }
            };
            if better {
                best = Some(est);
            }
        }
        best.ok_or(CoreError::NoPlacement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALICE: ObjId = ObjId(0xA);
    const BOB: ObjId = ObjId(0xB);
    const CAROL: ObjId = ObjId(0xC);
    const MODEL: ObjId = ObjId(0x100);
    const CODE: ObjId = ObjId(0x200);
    const ACT: ObjId = ObjId(0x300);

    /// The paper's §2 cast: Alice weak + slow link, Bob loaded + holds the
    /// model, Carol idle.
    fn paper_engine(model_bytes: u64) -> (PlacementEngine, CodeDesc) {
        let mut eng = PlacementEngine::new();
        eng.add_host(HostProfile { inbox: ALICE, speed: 0.1, load: 1.0 });
        eng.add_host(HostProfile { inbox: BOB, speed: 1.0, load: 8.0 });
        eng.add_host(HostProfile { inbox: CAROL, speed: 1.0, load: 1.0 });
        // Alice is an edge device: slow link to the rack.
        let edge = LinkCost { latency_ns: 200_000, bandwidth_bps: 1_000_000_000 };
        eng.set_link(ALICE, BOB, edge);
        eng.set_link(ALICE, CAROL, edge);
        let code = CodeDesc { fn_id: 1, base_ns: 50_000, ps_per_byte: 500 };
        eng.set_object(MODEL, BOB, model_bytes);
        eng.set_object(CODE, BOB, 256);
        eng.set_object(ACT, ALICE, 4096);
        (eng, code)
    }

    #[test]
    fn picks_carol_for_the_paper_scenario() {
        let (eng, code) = paper_engine(16 << 20);
        let choice = eng.choose(ALICE, &code, CODE, &[MODEL, ACT], 1024).unwrap();
        assert_eq!(choice.host, CAROL, "idle host near the data wins");
    }

    #[test]
    fn picks_bob_when_he_is_idle() {
        let (mut eng, code) = paper_engine(16 << 20);
        eng.add_host(HostProfile { inbox: BOB, speed: 1.0, load: 1.0 });
        let choice = eng.choose(ALICE, &code, CODE, &[MODEL, ACT], 1024).unwrap();
        assert_eq!(choice.host, BOB, "data locality wins once load clears");
    }

    #[test]
    fn dave_runs_locally_when_strong_and_data_local() {
        // The §5 Dave case: the edge device has the model AND the compute;
        // no RPC mechanism can exploit that, but placement can.
        let mut eng = PlacementEngine::new();
        let dave = ObjId(0xD);
        eng.add_host(HostProfile { inbox: dave, speed: 2.0, load: 1.0 });
        eng.add_host(HostProfile { inbox: CAROL, speed: 1.0, load: 1.0 });
        let edge = LinkCost { latency_ns: 200_000, bandwidth_bps: 1_000_000_000 };
        eng.set_link(dave, CAROL, edge);
        let code = CodeDesc { fn_id: 1, base_ns: 50_000, ps_per_byte: 500 };
        eng.set_object(MODEL, dave, 16 << 20);
        eng.set_object(CODE, dave, 256);
        eng.set_object(ACT, dave, 4096);
        let choice = eng.choose(dave, &code, CODE, &[MODEL, ACT], 1024).unwrap();
        assert_eq!(choice.host, dave);
        assert_eq!(choice.bytes_moved, 0, "everything is already local");
    }

    #[test]
    fn bigger_models_never_reduce_cost() {
        let (eng_small, code) = paper_engine(1 << 20);
        let (eng_big, _) = paper_engine(64 << 20);
        let host = eng_small.hosts()[2]; // Carol
        let small = eng_small.estimate(&host, ALICE, &code, CODE, &[MODEL, ACT], 1024).unwrap();
        let big = eng_big.estimate(&host, ALICE, &code, CODE, &[MODEL, ACT], 1024).unwrap();
        assert!(big.total_ns > small.total_ns);
        assert!(big.bytes_moved > small.bytes_moved);
    }

    #[test]
    fn unknown_objects_are_an_error() {
        let (eng, code) = paper_engine(1 << 20);
        assert!(matches!(
            eng.choose(ALICE, &code, CODE, &[ObjId(0xFFFF)], 0),
            Err(CoreError::ObjectUnavailable(_))
        ));
    }

    #[test]
    fn same_host_link_is_free() {
        let eng = PlacementEngine::new();
        let l = eng.link(ALICE, ALICE);
        assert_eq!(l.transfer_ns(1 << 30), 0);
    }
}
