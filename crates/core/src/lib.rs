//! # rdv-core — rendezvous of code and data
//!
//! The paper's contribution (§3): *"combine the code mobility of RPC with
//! the expressiveness of DSM-like solutions … The programmer is then free
//! to express their computation through references to code to run on some
//! references to data, instead of needing to serialize and copy values for
//! arguments."* And §5: *"there would be no reason to provide a separate
//! mechanism for specifying function invocations. Instead, we place all
//! data and code in a single space … the programmer primarily orchestrates
//! a rendezvous between code and data."*
//!
//! - [`code`] — code as objects: a [`code::CodeDesc`] lives in an
//!   `ObjectKind::Code` object and names a function in the host's
//!   [`code::FnRegistry`] (the registry stands in for an ISA: moving the
//!   code object moves the computation).
//! - [`placement`] — the system-side placement engine: given where the
//!   argument objects live, how big they are, link costs, and host
//!   load/speed, pick the execution site (Figure 1's "automatic" strategy).
//! - [`modelobj`] — the §2 workload in global-address-space form: a sparse
//!   model laid out *inside* an object, usable in place after a byte copy —
//!   zero deserialization, zero loading.
//! - [`runtime`] — [`runtime::GasHostNode`]: the host runtime. Serves
//!   object fetches (fragmented images), executes invocations (fetching
//!   missing code/data objects on demand), runs scripted drivers for the
//!   Figure 1 strategies, and walks pointer structures with pluggable
//!   prefetching ([`runtime::PrefetchPolicy`] — none / adjacency /
//!   reachability, experiment A1).
//! - [`local`] — [`local::LocalSpace`]: the same model in one process with
//!   direct calls — the ten-line on-ramp (and a semantics oracle for the
//!   simulated runtime).
//! - [`scenarios`] — builders for the F1, S1, A1, and failure-injection
//!   experiments.
#![warn(clippy::disallowed_types, clippy::disallowed_methods)]
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod code;
pub mod error;
pub mod local;
pub mod modelobj;
pub mod placement;
pub mod runtime;
pub mod scenarios;

pub use code::{CodeDesc, ExecCtx, FnRegistry};
pub use error::{CoreError, CoreResult};
pub use local::{LocalInvoke, LocalSpace};
pub use placement::{HostProfile, LinkCost, PlacementEngine};
pub use runtime::{GasHostNode, PrefetchPolicy, ScriptStep};
