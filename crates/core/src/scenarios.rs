//! Experiment scenarios: Figure 1 (F1), the serialization claim (S1), and
//! the prefetching ablation (A1).
//!
//! Every scenario builds a star fabric (hosts around one object-routing
//! switch) with routes pre-installed — equivalent to the controller scheme
//! after its advertise/bootstrap phase, which keeps the measured part of
//! the run about the *strategies*, not discovery (discovery is measured
//! separately in `rdv-discovery`).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use rdv_netsim::{LinkSpec, Node, NodeId, Sim, SimConfig, SimTime};
use rdv_objspace::{FotFlags, ObjId, ObjectKind, ObjectStore};
use rdv_p4rt::capacity::SramBudget;
use rdv_p4rt::header::{objnet_format, OBJNET_DST_OBJ};
use rdv_p4rt::pipeline::{Pipeline, SwitchConfig, SwitchNode};
use rdv_p4rt::table::{Action, MatchKind, Table, TableEntry};
use rdv_wire::cost::{CostMeter, Phase};
use rdv_wire::sparsemodel::{serialize_model, SparseModel, SparseModelSpec};

use crate::code::{make_code_object, CodeDesc, ExecOutcome, FnRegistry};
use crate::modelobj::{infer_in_place, model_to_object};
use crate::placement::{HostProfile, LinkCost, PlacementEngine};
use crate::runtime::{GasHostConfig, GasHostNode, PrefetchPolicy, ScriptStep};

/// Registry function ID: sparse inference over `[model, activation]`.
pub const FN_INFER: u64 = 1;
/// Registry function ID: sum the values of a traversed chain (tests).
pub const FN_NOOP: u64 = 2;

/// Offset where an activation object's f32 vector begins.
pub const ACT_OFFSET: u64 = 8;

/// Build the shared function registry.
pub fn standard_registry() -> FnRegistry {
    let mut reg = FnRegistry::new();
    reg.register(FN_INFER, |ctx, args| {
        if args.len() != 2 {
            return Err(crate::CoreError::InvokeRefused);
        }
        let (cols, act) = {
            let model = ctx.object(args[0])?;
            let shape = crate::modelobj::model_shape(model)
                .map_err(|_| crate::CoreError::MalformedObject(args[0], "shape"))?;
            (shape.cols, shape)
        };
        let _ = act;
        let activation = {
            let act_obj = ctx.object(args[1])?;
            act_obj
                .read_f32s(ACT_OFFSET, cols as usize)
                .map_err(|_| crate::CoreError::MalformedObject(args[1], "activation"))?
        };
        let model = ctx.object(args[0])?;
        let (output, flops) = infer_in_place(model, &activation)
            .map_err(|_| crate::CoreError::MalformedObject(args[0], "model"))?;
        let mut w = rdv_wire::WireWriter::with_capacity(output.len() * 4 + 8);
        w.put_uvarint(output.len() as u64);
        for v in &output {
            w.put_f32(*v);
        }
        // `bytes_touched` carries cost units; for inference we report flops
        // and pair it with a ps-per-flop CodeDesc.
        Ok(ExecOutcome { result: w.into_vec(), bytes_touched: flops })
    });
    reg.register(FN_NOOP, |_ctx, _args| Ok(ExecOutcome { result: vec![1], bytes_touched: 0 }));
    reg
}

/// The inference code descriptor: 10 µs dispatch + 0.25 ns per flop.
pub fn infer_code_desc() -> CodeDesc {
    CodeDesc { fn_id: FN_INFER, base_ns: 10_000, ps_per_byte: 250 }
}

/// Build a star fabric: `nodes[i]` (with its inbox and link) attaches to
/// switch port `i`; inbox routes plus `obj_routes` (object → host index)
/// are pre-installed (post-bootstrap controller state).
pub fn build_star_fabric(
    seed: u64,
    nodes: Vec<(Box<dyn Node>, ObjId, LinkSpec)>,
    obj_routes: &[(ObjId, usize)],
) -> (Sim, Vec<NodeId>) {
    build_star_fabric_sharded(seed, 0, nodes, obj_routes)
}

/// [`build_star_fabric`] with an explicit engine shard count (0 inherits
/// the process default; the chaos soak uses this to replay scenarios at
/// several shard counts and assert byte-identical outcomes).
pub fn build_star_fabric_sharded(
    seed: u64,
    shards: usize,
    nodes: Vec<(Box<dyn Node>, ObjId, LinkSpec)>,
    obj_routes: &[(ObjId, usize)],
) -> (Sim, Vec<NodeId>) {
    let mut sim = Sim::new(SimConfig { seed, shards, ..Default::default() });
    let mut pl = Pipeline::new(objnet_format(), Action::Drop);
    pl.add_table(Table::new(
        "objroute",
        vec![OBJNET_DST_OBJ],
        MatchKind::Exact,
        128,
        SramBudget::tofino(),
    ));
    for (i, (_, inbox, _)) in nodes.iter().enumerate() {
        pl.table_mut(0)
            .expect("table 0")
            .insert(TableEntry::Exact { key: vec![inbox.as_u128()] }, Action::Forward(i))
            .expect("capacity");
    }
    for &(obj, host) in obj_routes {
        pl.table_mut(0)
            .expect("table 0")
            .insert(TableEntry::Exact { key: vec![obj.as_u128()] }, Action::Forward(host))
            .expect("capacity");
    }
    let host_count = nodes.len();
    let mut ids = Vec::with_capacity(host_count);
    let mut links = Vec::with_capacity(host_count);
    for (node, _, link) in nodes {
        ids.push(sim.add_node(node));
        links.push(link);
    }
    let switch = sim.add_node(Box::new(SwitchNode::new("s0", pl, SwitchConfig::default())));
    for (id, link) in ids.iter().zip(links) {
        // Hosts connect in order, so switch port i leads to host i.
        sim.connect(*id, switch, link);
    }
    (sim, ids)
}

/// Big-buffer host NIC link (congestion control is out of scope; see
/// DESIGN.md): rack latency/bandwidth, effectively unbounded queue.
pub fn host_link_rack() -> LinkSpec {
    LinkSpec { queue_bytes: 1 << 32, ..LinkSpec::rack() }
}

/// Edge-device link with a big buffer.
pub fn host_link_edge() -> LinkSpec {
    LinkSpec { queue_bytes: 1 << 32, ..LinkSpec::edge() }
}

/// Build an activation object holding `values` at [`ACT_OFFSET`].
pub fn activation_object(store: &mut ObjectStore, id: ObjId, values: &[f32]) {
    let mut obj = rdv_objspace::Object::with_capacity(id, ObjectKind::Data, 1 << 20);
    let off = obj.alloc(values.len() as u64 * 4).expect("capacity");
    debug_assert_eq!(off, ACT_OFFSET);
    obj.write_f32s(off, values).expect("in bounds");
    store.insert(obj).expect("fresh id");
}

// ---------------------------------------------------------------------------
// F1 — Figure 1: rendezvous strategies
// ---------------------------------------------------------------------------

/// The Figure 1 strategies (plus the Wang et al. halfway design).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum F1Strategy {
    /// (1) Alice copies the data to herself, forwards it to Carol, then
    /// invokes — two traversals of Alice's slow link.
    ManualCopy,
    /// (2) Alice tells Carol to pull from Bob, then invokes — efficient,
    /// but Alice's application code orchestrates the movement.
    ManualPull,
    /// Wang et al. (HotOS '21): first-class references, but the executor is
    /// still fixed by the programmer (compute-centric).
    RefRpcFixed,
    /// (3) Alice invokes by reference; the system places the computation
    /// and moves data on demand.
    Automatic,
}

impl F1Strategy {
    /// All strategies in figure order.
    pub const ALL: [F1Strategy; 4] = [
        F1Strategy::ManualCopy,
        F1Strategy::ManualPull,
        F1Strategy::RefRpcFixed,
        F1Strategy::Automatic,
    ];

    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            F1Strategy::ManualCopy => "manual-copy",
            F1Strategy::ManualPull => "manual-pull",
            F1Strategy::RefRpcFixed => "ref-rpc-fixed",
            F1Strategy::Automatic => "automatic",
        }
    }
}

/// F1 configuration.
#[derive(Debug, Clone, Copy)]
pub struct F1Config {
    /// Which strategy to run.
    pub strategy: F1Strategy,
    /// The model workload.
    pub model: SparseModelSpec,
    /// RNG seed.
    pub seed: u64,
}

/// F1 result.
#[derive(Debug, Clone)]
pub struct F1Outcome {
    /// End-to-end latency as observed by Alice.
    pub latency: SimTime,
    /// Bytes crossing Alice's (slow) access link, both directions.
    pub alice_bytes: u64,
    /// Total bytes transmitted by all hosts.
    pub fabric_bytes: u64,
    /// Who executed the inference ("alice"/"bob"/"carol").
    pub executor: &'static str,
    /// The inference output length (sanity).
    pub output_len: usize,
}

/// Well-known F1 inboxes.
pub const ALICE: ObjId = ObjId(0xA11CE);
/// Bob's inbox.
pub const BOB: ObjId = ObjId(0xB0B);
/// Carol's inbox.
pub const CAROL: ObjId = ObjId(0xCA801);

const MODEL_OBJ: ObjId = ObjId(0x40de1);
const ACT_OBJ: ObjId = ObjId(0xAC7);
const CODE_OBJ: ObjId = ObjId(0xC0DE);

/// Run one Figure 1 strategy.
pub fn run_fig1(cfg: &F1Config) -> F1Outcome {
    let registry = standard_registry();
    let model = SparseModel::generate(&cfg.model);
    let cols = cfg.model.cols;

    // Alice: weak edge device holding the activation.
    let mut alice =
        GasHostNode::new("alice", ALICE, GasHostConfig { speed: 0.1, ..Default::default() });
    alice.registry = registry.clone();
    let activation: Vec<f32> = (0..cols).map(|i| (i % 7) as f32 / 7.0).collect();
    activation_object(&mut alice.store, ACT_OBJ, &activation);

    // Bob: loaded cloud host holding the model and the code object.
    let mut bob =
        GasHostNode::new("bob", BOB, GasHostConfig { speed: 1.0, load: 8.0, ..Default::default() });
    bob.registry = registry.clone();
    let model_obj = model_to_object(MODEL_OBJ, &model).expect("model fits");
    let model_size = model_obj.image_len() as u64;
    bob.store.insert(model_obj).expect("fresh");
    bob.store.insert(make_code_object(CODE_OBJ, infer_code_desc())).expect("fresh");

    // Carol: idle cloud host.
    let mut carol = GasHostNode::new("carol", CAROL, GasHostConfig::default());
    carol.registry = registry.clone();

    // Code objects are tiny and cached everywhere (like program binaries);
    // pre-warm Alice's cache so placement can read the descriptor locally.
    alice.cache.insert(
        make_code_object(CODE_OBJ, infer_code_desc()),
        rdv_memproto::cache::CacheState::Shared,
    );

    // Alice's script per strategy.
    let invoke = |executor: Option<ObjId>| ScriptStep::Invoke {
        executor,
        code: CODE_OBJ,
        args: vec![MODEL_OBJ, ACT_OBJ],
        result_bytes: cols as u64 * 4 + 16,
    };
    alice.scripts = vec![match cfg.strategy {
        F1Strategy::ManualCopy => vec![
            ScriptStep::Fetch(MODEL_OBJ),
            ScriptStep::PushTo { obj: MODEL_OBJ, dest: CAROL },
            invoke(Some(CAROL)),
        ],
        F1Strategy::ManualPull | F1Strategy::RefRpcFixed => vec![invoke(Some(CAROL))],
        F1Strategy::Automatic => vec![invoke(None)],
    }];

    // Placement knowledge for the automatic strategy (the "system view").
    let mut engine = PlacementEngine::new();
    engine.add_host(HostProfile { inbox: ALICE, speed: 0.1, load: 1.0 });
    engine.add_host(HostProfile { inbox: BOB, speed: 1.0, load: 8.0 });
    engine.add_host(HostProfile { inbox: CAROL, speed: 1.0, load: 1.0 });
    let edge = LinkCost { latency_ns: 200_000, bandwidth_bps: 1_000_000_000 };
    let rack = LinkCost { latency_ns: 10_000, bandwidth_bps: 100_000_000_000 };
    engine.set_link(ALICE, BOB, edge);
    engine.set_link(ALICE, CAROL, edge);
    engine.set_link(BOB, CAROL, rack);
    engine.set_object(MODEL_OBJ, BOB, model_size);
    engine.set_object(ACT_OBJ, ALICE, cols as u64 * 4 + 64);
    engine.set_object(CODE_OBJ, BOB, 256);
    alice.placement = Some(engine);

    let (mut sim, ids) = build_star_fabric(
        cfg.seed,
        vec![
            (Box::new(alice), ALICE, host_link_edge()),
            (Box::new(bob), BOB, host_link_rack()),
            (Box::new(carol), CAROL, host_link_rack()),
        ],
        &[(MODEL_OBJ, 1), (ACT_OBJ, 0), (CODE_OBJ, 1)],
    );
    sim.schedule(SimTime::from_millis(1), ids[0], 0);
    sim.run_until_idle();

    let names = ["alice", "bob", "carol"];
    let mut executor = "none";
    let mut fabric_bytes = 0;
    for (i, &id) in ids.iter().enumerate() {
        let host = sim.node_as::<GasHostNode>(id).expect("host type");
        fabric_bytes += host.counters.get("tx_bytes");
        if host.counters.get("invokes_executed") > 0 {
            executor = names[i];
        }
    }
    let alice_node = sim.node_as::<GasHostNode>(ids[0]).expect("host type");
    let record = alice_node.records.first().expect("script completed");
    let output_len = {
        let mut r = rdv_wire::WireReader::new(&record.invoke_result);
        r.get_uvarint().unwrap_or(0) as usize
    };
    F1Outcome {
        latency: record.completed - record.started,
        alice_bytes: alice_node.counters.get("tx_bytes") + alice_node.counters.get("rx_bytes"),
        fabric_bytes,
        executor,
        output_len,
    }
}

/// The §5 "Dave" variant: the edge device is strong and already holds the
/// model. A fixed-executor call (any RPC flavor) still ships everything to
/// the cloud; automatic placement runs locally.
pub fn run_fig1_dave(automatic: bool, model: &SparseModelSpec, seed: u64) -> F1Outcome {
    let registry = standard_registry();
    let m = SparseModel::generate(model);
    let cols = model.cols;
    let dave_inbox = ObjId(0xDA7E);

    let mut dave =
        GasHostNode::new("dave", dave_inbox, GasHostConfig { speed: 2.0, ..Default::default() });
    dave.registry = registry.clone();
    let model_obj = model_to_object(MODEL_OBJ, &m).expect("model fits");
    let model_size = model_obj.image_len() as u64;
    dave.store.insert(model_obj).expect("fresh");
    dave.store.insert(make_code_object(CODE_OBJ, infer_code_desc())).expect("fresh");
    let activation: Vec<f32> = (0..cols).map(|i| (i % 5) as f32 / 5.0).collect();
    activation_object(&mut dave.store, ACT_OBJ, &activation);

    let mut carol = GasHostNode::new("carol", CAROL, GasHostConfig::default());
    carol.registry = registry.clone();

    dave.scripts = vec![vec![ScriptStep::Invoke {
        executor: if automatic { None } else { Some(CAROL) },
        code: CODE_OBJ,
        args: vec![MODEL_OBJ, ACT_OBJ],
        result_bytes: cols as u64 * 4 + 16,
    }]];
    let mut engine = PlacementEngine::new();
    engine.add_host(HostProfile { inbox: dave_inbox, speed: 2.0, load: 1.0 });
    engine.add_host(HostProfile { inbox: CAROL, speed: 1.0, load: 1.0 });
    engine.set_link(
        dave_inbox,
        CAROL,
        LinkCost { latency_ns: 200_000, bandwidth_bps: 1_000_000_000 },
    );
    engine.set_object(MODEL_OBJ, dave_inbox, model_size);
    engine.set_object(ACT_OBJ, dave_inbox, cols as u64 * 4 + 64);
    engine.set_object(CODE_OBJ, dave_inbox, 256);
    dave.placement = Some(engine);

    let (mut sim, ids) = build_star_fabric(
        seed,
        vec![
            (Box::new(dave), dave_inbox, host_link_edge()),
            (Box::new(carol), CAROL, host_link_rack()),
        ],
        &[(MODEL_OBJ, 0), (ACT_OBJ, 0), (CODE_OBJ, 0)],
    );
    sim.schedule(SimTime::from_millis(1), ids[0], 0);
    sim.run_until_idle();

    let mut executor = "none";
    let mut fabric_bytes = 0;
    for (i, &id) in ids.iter().enumerate() {
        let host = sim.node_as::<GasHostNode>(id).expect("host type");
        fabric_bytes += host.counters.get("tx_bytes");
        if host.counters.get("invokes_executed") > 0 {
            executor = ["dave", "carol"][i];
        }
    }
    let dave_node = sim.node_as::<GasHostNode>(ids[0]).expect("host type");
    let record = dave_node.records.first().expect("script completed");
    F1Outcome {
        latency: record.completed - record.started,
        alice_bytes: dave_node.counters.get("tx_bytes") + dave_node.counters.get("rx_bytes"),
        fabric_bytes,
        executor,
        output_len: 0,
    }
}

// ---------------------------------------------------------------------------
// S1 — request-time serialization/loading (the "70%" claim)
// ---------------------------------------------------------------------------

/// The three model-serving paths S1 compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum S1Path {
    /// RPC, model serialized into every request (call-by-value extreme).
    RpcValue,
    /// RPC, model stored serialized at the server, deserialized + loaded at
    /// request time (the TrIMS scenario).
    RpcName,
    /// Global address space: the model is an object, used in place.
    Gas,
}

/// S1 result for one request.
#[derive(Debug, Clone, Copy)]
pub struct S1Outcome {
    /// End-to-end request latency.
    pub latency: SimTime,
    /// Server-side nanoseconds spent deserializing.
    pub deser_ns: u64,
    /// Server-side nanoseconds spent loading (pointer fix-up, interning).
    pub load_ns: u64,
    /// Server-side nanoseconds of useful compute.
    pub compute_ns: u64,
    /// Client-side serialization nanoseconds.
    pub client_serialize_ns: u64,
    /// Fraction of server processing spent in deserialize + load.
    pub deser_load_fraction: f64,
}

const CLIENT_INBOX: ObjId = ObjId(0xC11);
const SERVER_INBOX: ObjId = ObjId(0x5E8);

/// Run one S1 request along `path`.
pub fn run_s1(path: S1Path, spec: &SparseModelSpec, seed: u64) -> S1Outcome {
    let model = SparseModel::generate(spec);
    let cols = spec.cols;
    let activation: Vec<f32> = (0..cols).map(|i| (i % 3) as f32 / 3.0).collect();
    match path {
        S1Path::RpcValue | S1Path::RpcName => {
            use rdv_rpc::client::{ClientNode, PlannedCall};
            use rdv_rpc::server::ServerNode;
            use rdv_rpc::service::{model_methods, ModelServingService};
            let mut meter = CostMeter::new();
            let model_bytes = serialize_model(&model, &mut meter);
            let client_serialize_ns =
                if path == S1Path::RpcValue { meter.phase_ns(Phase::Serialize) } else { 0 };

            let mut svc = ModelServingService::default();
            let (method, args, serialize_ns) = match path {
                S1Path::RpcValue => (
                    model_methods::INFER_WITH_MODEL,
                    ModelServingService::encode_args(&model_bytes, &activation),
                    client_serialize_ns,
                ),
                S1Path::RpcName => {
                    svc.store_model("user", model_bytes.clone());
                    (
                        model_methods::INFER_BY_NAME,
                        ModelServingService::encode_name_args("user", &activation),
                        0,
                    )
                }
                S1Path::Gas => unreachable!(),
            };
            let mut server = ServerNode::new("server", SERVER_INBOX);
            server.register(1, Box::new(svc));
            let mut client = ClientNode::new("client", CLIENT_INBOX);
            client.plan = vec![PlannedCall {
                server: SERVER_INBOX,
                service: 1,
                method,
                args,
                serialize_ns,
                lookup_via: None,
                timeout_ns: 0,
            }];
            let (mut sim, ids) = build_star_fabric(
                seed,
                vec![
                    (Box::new(client), CLIENT_INBOX, host_link_rack()),
                    (Box::new(server), SERVER_INBOX, host_link_rack()),
                ],
                &[],
            );
            sim.schedule(SimTime::from_millis(1), ids[0], 0);
            sim.run_until_idle();
            let client = sim.node_as::<ClientNode>(ids[0]).expect("client");
            let record = client.records.first().expect("call completed");
            assert!(record.result.is_ok(), "S1 RPC call failed: {:?}", record.result);
            let server = sim.node_as::<ServerNode>(ids[1]).expect("server");
            let svc = server.service_as::<ModelServingService>(1).expect("svc");
            let deser_ns = svc.meter.phase_ns(Phase::Deserialize);
            let load_ns = svc.meter.phase_ns(Phase::Load);
            let compute_ns = svc.meter.phase_ns(Phase::Compute);
            let busy = deser_ns + load_ns + compute_ns + client_serialize_ns;
            S1Outcome {
                latency: record.latency(),
                deser_ns,
                load_ns,
                compute_ns,
                client_serialize_ns,
                deser_load_fraction: if busy == 0 {
                    0.0
                } else {
                    (deser_ns + load_ns) as f64 / busy as f64
                },
            }
        }
        S1Path::Gas => {
            let registry = standard_registry();
            let mut client = GasHostNode::new("client", CLIENT_INBOX, GasHostConfig::default());
            client.registry = registry.clone();
            activation_object(&mut client.store, ACT_OBJ, &activation);
            client.scripts = vec![vec![ScriptStep::Invoke {
                executor: Some(SERVER_INBOX),
                code: CODE_OBJ,
                args: vec![MODEL_OBJ, ACT_OBJ],
                result_bytes: cols as u64 * 4 + 16,
            }]];
            let mut server = GasHostNode::new("server", SERVER_INBOX, GasHostConfig::default());
            server.registry = registry.clone();
            server.store.insert(model_to_object(MODEL_OBJ, &model).expect("fits")).expect("fresh");
            server.store.insert(make_code_object(CODE_OBJ, infer_code_desc())).expect("fresh");
            let (mut sim, ids) = build_star_fabric(
                seed,
                vec![
                    (Box::new(client), CLIENT_INBOX, host_link_rack()),
                    (Box::new(server), SERVER_INBOX, host_link_rack()),
                ],
                &[(MODEL_OBJ, 1), (CODE_OBJ, 1), (ACT_OBJ, 0)],
            );
            sim.schedule(SimTime::from_millis(1), ids[0], 0);
            sim.run_until_idle();
            let client = sim.node_as::<GasHostNode>(ids[0]).expect("client");
            let record = client.records.first().expect("script completed");
            // Compute time: flops at 0.25 ns each (matching infer_code_desc).
            let flops = {
                let model_obj = model_to_object(MODEL_OBJ, &model).expect("fits");
                infer_in_place(&model_obj, &activation).expect("valid").1
            };
            let compute_ns = 10_000 + flops / 4;
            S1Outcome {
                latency: record.completed - record.started,
                deser_ns: 0,
                load_ns: 0,
                compute_ns,
                client_serialize_ns: 0,
                deser_load_fraction: 0.0,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// A1 — prefetching ablation
// ---------------------------------------------------------------------------

/// A1 configuration.
#[derive(Debug, Clone, Copy)]
pub struct A1Config {
    /// Chain length (node objects).
    pub nodes: usize,
    /// Unrelated decoy objects sharing the address space (what address
    /// adjacency confuses with reachability).
    pub decoys: usize,
    /// Extra payload bytes per object.
    pub payload: u64,
    /// Walker prefetch policy.
    pub policy: PrefetchPolicy,
    /// Layout of allocation order: `false` = chain nodes allocated
    /// consecutively (adjacency's best case); `true` = chain nodes
    /// scattered among the decoys (the common case after churn).
    pub scattered: bool,
    /// FOT lookahead: each node also references the next `skip` chain
    /// successors (reachability the object space exposes).
    pub skip: usize,
    /// The holder's uplink bandwidth — the bottleneck that makes wasted
    /// prefetch bytes cost something (bits per second).
    pub holder_bw_bps: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for A1Config {
    fn default() -> Self {
        A1Config {
            nodes: 64,
            decoys: 192,
            payload: 4096,
            policy: PrefetchPolicy::None,
            scattered: false,
            skip: 3,
            holder_bw_bps: 10_000_000_000,
            seed: 5,
        }
    }
}

/// A1 result.
#[derive(Debug, Clone)]
pub struct A1Outcome {
    /// Traversal completion time.
    pub latency: SimTime,
    /// Demand fetches the walker had to issue (blocking misses).
    pub demand_fetches: u64,
    /// Prefetch fetches issued.
    pub prefetch_fetches: u64,
    /// The values collected (position indices — must be `0..nodes`).
    pub values: Vec<u64>,
}

const WALKER_INBOX: ObjId = ObjId(0x3A1);
const HOLDER_INBOX: ObjId = ObjId(0x301D);

/// Build a chain of `n` node objects plus `decoys` unrelated objects in
/// `store`. Returns `(head (obj, offset), allocation order)` where the
/// allocation order either keeps the chain contiguous at the front
/// (`scattered = false`) or interleaves it randomly with the decoys.
pub fn build_remote_chain(
    store: &mut ObjectStore,
    rng: &mut StdRng,
    n: usize,
    decoys: usize,
    payload: u64,
    scattered: bool,
    skip: usize,
) -> ((ObjId, u64), Vec<ObjId>) {
    assert!(n > 0);
    let chain: Vec<ObjId> = (0..n)
        .map(|_| store.create_with_capacity(rng, ObjectKind::Data, payload + (1 << 12)))
        .collect();
    let decoy_ids: Vec<ObjId> = (0..decoys)
        .map(|_| store.create_with_capacity(rng, ObjectKind::Data, payload + (1 << 12)))
        .collect();
    // Allocate node blocks and payload in every object (decoys look the
    // same as nodes from the outside).
    for &id in chain.iter().chain(&decoy_ids) {
        let obj = store.get_mut(id).expect("present");
        let block = obj.alloc(16).expect("capacity");
        debug_assert_eq!(block, 8);
        if payload > 0 {
            obj.alloc(payload).expect("capacity");
        }
    }
    // Link chain[k] → chain[k+1], store position k as the value, and add
    // skip references to the next `skip` successors.
    for k in 0..n {
        let id = chain[k];
        let obj = store.get_mut(id).expect("present");
        obj.write_u64(8, k as u64).expect("in bounds");
        if k + 1 < n {
            let next = chain[k + 1];
            let ptr = obj.make_ptr(next, 8, FotFlags::RO).expect("fot");
            obj.write_ptr(16, ptr).expect("in bounds");
        } else {
            obj.write_ptr(16, rdv_objspace::InvPtr::NULL).expect("in bounds");
        }
        for s in 2..=skip {
            if k + s < n {
                let target = chain[k + s];
                store.get_mut(id).expect("present").ref_to(target, FotFlags::RO).expect("fot");
            }
        }
    }
    // The allocation-order view the adjacency prefetcher sees.
    let mut alloc_order: Vec<ObjId> = chain.iter().chain(&decoy_ids).copied().collect();
    if scattered {
        alloc_order.shuffle(rng);
    }
    ((chain[0], 8), alloc_order)
}

/// Run one A1 traversal.
pub fn run_a1(cfg: &A1Config) -> A1Outcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed); // rdv-lint: allow(rng-stream) -- pre-sim topology/plan generator stream, derived from the scenario seed before any node runs
    let mut holder = GasHostNode::new("holder", HOLDER_INBOX, GasHostConfig::default());
    let (head, alloc_order) = build_remote_chain(
        &mut holder.store,
        &mut rng,
        cfg.nodes,
        cfg.decoys,
        cfg.payload,
        cfg.scattered,
        cfg.skip,
    );

    let mut walker = GasHostNode::new(
        "walker",
        WALKER_INBOX,
        GasHostConfig { prefetch: cfg.policy, ..Default::default() },
    );
    walker.adjacency = alloc_order.clone();
    walker.scripts =
        vec![vec![ScriptStep::Traverse { obj: head.0, offset: head.1, max_steps: cfg.nodes + 8 }]];

    let obj_routes: Vec<(ObjId, usize)> = alloc_order.iter().map(|&o| (o, 1)).collect();
    let holder_link =
        LinkSpec { bandwidth_bps: cfg.holder_bw_bps, queue_bytes: 1 << 32, ..LinkSpec::rack() };
    let (mut sim, ids) = build_star_fabric(
        cfg.seed,
        vec![
            (Box::new(walker), WALKER_INBOX, host_link_rack()),
            (Box::new(holder), HOLDER_INBOX, holder_link),
        ],
        &obj_routes,
    );
    sim.schedule(SimTime::from_millis(1), ids[0], 0);
    sim.run_until_idle();

    let walker = sim.node_as::<GasHostNode>(ids[0]).expect("walker");
    let record = walker.records.first().expect("traversal completed");
    A1Outcome {
        latency: record.completed - record.started,
        demand_fetches: walker.counters.get("fetch.demand"),
        prefetch_fetches: walker.counters.get("fetch.prefetch"),
        values: record.traversal_values.clone(),
    }
}

// ---------------------------------------------------------------------------
// Failure injection (§5: "partial failure (inevitable in any distributed
// system)")
// ---------------------------------------------------------------------------

/// Failure-injection configuration: an invoke-by-reference round trip over
/// a lossy fabric.
#[derive(Debug, Clone, Copy)]
pub struct LossyConfig {
    /// Packet loss on every host link, per mille.
    pub loss_permille: u16,
    /// Watchdog period for retries.
    pub retry_timeout: rdv_netsim::SimTime,
    /// Number of independent invocations to run.
    pub invokes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LossyConfig {
    fn default() -> Self {
        LossyConfig {
            loss_permille: 0,
            retry_timeout: SimTime::from_micros(300),
            invokes: 10,
            seed: 23,
        }
    }
}

/// Failure-injection outcome.
#[derive(Debug, Clone)]
pub struct LossyOutcome {
    /// Invocations that completed successfully.
    pub completed: usize,
    /// Invocations abandoned after retry exhaustion.
    pub failed: usize,
    /// Mean completion latency of successful invocations.
    pub mean_latency: SimTime,
    /// Packets lost by the fabric.
    pub packets_lost: u64,
    /// Retries performed (fetch + push + invoke).
    pub retries: u64,
}

/// Run `invokes` invoke-by-reference calls (client → server, with the
/// activation argument living at the client) over links losing
/// `loss_permille`‰ of packets. The runtime's watchdogs must recover.
pub fn run_lossy_invoke(cfg: &LossyConfig) -> LossyOutcome {
    let registry = standard_registry();
    let spec = SparseModelSpec {
        layers: 2,
        rows: 64,
        cols: 64,
        nnz_per_row: 4,
        vocab: 16,
        seed: cfg.seed,
    };
    let model = SparseModel::generate(&spec);
    let activation: Vec<f32> = (0..64).map(|i| i as f32 / 64.0).collect();

    let host_cfg = GasHostConfig { retry_timeout: cfg.retry_timeout, ..Default::default() };
    let mut client = GasHostNode::new("client", ObjId(0x1C11), host_cfg);
    client.registry = registry.clone();
    activation_object(&mut client.store, ACT_OBJ, &activation);
    for _ in 0..cfg.invokes {
        client.scripts.push(vec![ScriptStep::Invoke {
            executor: Some(ObjId(0x15E8)),
            code: CODE_OBJ,
            args: vec![MODEL_OBJ, ACT_OBJ],
            result_bytes: 64 * 4 + 16,
        }]);
    }
    let mut server = GasHostNode::new("server", ObjId(0x15E8), host_cfg);
    server.registry = registry;
    server.store.insert(model_to_object(MODEL_OBJ, &model).expect("fits")).expect("fresh");
    server.store.insert(make_code_object(CODE_OBJ, infer_code_desc())).expect("fresh");

    let link = host_link_rack().with_loss(cfg.loss_permille);
    let (mut sim, ids) = build_star_fabric(
        cfg.seed,
        vec![(Box::new(client), ObjId(0x1C11), link), (Box::new(server), ObjId(0x15E8), link)],
        &[(MODEL_OBJ, 1), (CODE_OBJ, 1), (ACT_OBJ, 0)],
    );
    for i in 0..cfg.invokes as u64 {
        sim.schedule(SimTime::from_millis(1 + 2 * i), ids[0], i);
    }
    sim.run_until_idle();

    let client = sim.node_as::<GasHostNode>(ids[0]).expect("client");
    let server = sim.node_as::<GasHostNode>(ids[1]).expect("server");
    let ok: Vec<_> = client.records.iter().filter(|r| !r.failed).collect();
    let failed = client.records.iter().filter(|r| r.failed).count();
    let mean = if ok.is_empty() {
        SimTime::ZERO
    } else {
        SimTime::from_nanos(
            ok.iter().map(|r| (r.completed - r.started).as_nanos()).sum::<u64>() / ok.len() as u64,
        )
    };
    let retries = ["retries.fetch", "retries.push", "retries.invoke"]
        .iter()
        .map(|k| client.counters.get(k) + server.counters.get(k))
        .sum();
    LossyOutcome {
        completed: ok.len(),
        failed,
        mean_latency: mean,
        packets_lost: sim.counters.get("sim.packets_lost"),
        retries,
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn small_model() -> SparseModelSpec {
        SparseModelSpec { layers: 2, rows: 64, cols: 64, nnz_per_row: 4, vocab: 16, seed: 9 }
    }

    /// Big enough that moving the model dominates placement decisions.
    fn heavy_model() -> SparseModelSpec {
        SparseModelSpec { layers: 2, rows: 512, cols: 512, nnz_per_row: 16, vocab: 64, seed: 9 }
    }

    #[test]
    fn fig1_all_strategies_complete_with_same_output() {
        let mut outs = Vec::new();
        for strategy in F1Strategy::ALL {
            let out = run_fig1(&F1Config { strategy, model: heavy_model(), seed: 1 });
            assert_eq!(out.output_len, 512, "{strategy:?}");
            outs.push((strategy, out));
        }
        // Manual copy is strictly worse than manual pull on latency and on
        // Alice's link bytes.
        let copy = &outs[0].1;
        let pull = &outs[1].1;
        assert!(copy.latency > pull.latency, "{:?} vs {:?}", copy.latency, pull.latency);
        assert!(copy.alice_bytes > 10 * pull.alice_bytes);
        // Automatic matches manual pull's efficiency (same rendezvous) and
        // runs on Carol.
        let auto = &outs[3].1;
        assert_eq!(auto.executor, "carol");
        let ratio = auto.latency.as_nanos() as f64 / pull.latency.as_nanos() as f64;
        assert!(ratio < 1.25, "automatic should track manual-pull, ratio {ratio}");
    }

    #[test]
    fn fig1_dave_runs_locally_only_under_automatic_placement() {
        let fixed = run_fig1_dave(false, &heavy_model(), 2);
        let auto = run_fig1_dave(true, &heavy_model(), 2);
        assert_eq!(fixed.executor, "carol");
        assert_eq!(auto.executor, "dave");
        assert!(auto.latency < fixed.latency);
        assert!(auto.fabric_bytes < fixed.fabric_bytes / 10);
    }

    #[test]
    fn s1_rpc_paths_pay_deser_load_gas_does_not() {
        let spec = SparseModelSpec {
            layers: 4,
            rows: 256,
            cols: 256,
            nnz_per_row: 8,
            vocab: 256,
            seed: 3,
        };
        let by_name = run_s1(S1Path::RpcName, &spec, 1);
        let by_value = run_s1(S1Path::RpcValue, &spec, 1);
        let gas = run_s1(S1Path::Gas, &spec, 1);
        assert!(by_name.deser_load_fraction > 0.5, "{}", by_name.deser_load_fraction);
        assert!(by_value.deser_load_fraction > 0.4, "{}", by_value.deser_load_fraction);
        assert_eq!(gas.deser_load_fraction, 0.0);
        assert!(gas.latency < by_name.latency, "{} vs {}", gas.latency, by_name.latency);
        assert!(by_value.latency > by_name.latency, "value path also ships the model");
    }

    #[test]
    fn a1_traversal_collects_chain_in_order() {
        let out = run_a1(&A1Config { nodes: 16, ..Default::default() });
        assert_eq!(out.values, (0..16).collect::<Vec<u64>>());
        assert_eq!(out.demand_fetches, 16);
        assert_eq!(out.prefetch_fetches, 0);
    }

    #[test]
    fn a1_reachability_prefetch_cuts_latency_and_misses() {
        let base = run_a1(&A1Config { nodes: 64, ..Default::default() });
        let reach = run_a1(&A1Config {
            nodes: 64,
            policy: PrefetchPolicy::Reachability,
            ..Default::default()
        });
        assert!(reach.prefetch_fetches > 0);
        assert!(
            reach.demand_fetches < base.demand_fetches / 2,
            "prefetch should absorb most misses: {} vs {}",
            reach.demand_fetches,
            base.demand_fetches
        );
        assert!(
            reach.latency.as_nanos() < base.latency.as_nanos() * 3 / 4,
            "reachability should be ≥25% faster: {} vs {}",
            reach.latency,
            base.latency
        );
        assert_eq!(reach.values, base.values);
    }

    #[test]
    fn a1_adjacency_matches_reachability_only_on_correlated_layout() {
        let adj_good = run_a1(&A1Config {
            policy: PrefetchPolicy::Adjacency { window: 3 },
            scattered: false,
            ..Default::default()
        });
        let adj_bad = run_a1(&A1Config {
            policy: PrefetchPolicy::Adjacency { window: 3 },
            scattered: true,
            ..Default::default()
        });
        let reach_bad = run_a1(&A1Config {
            policy: PrefetchPolicy::Reachability,
            scattered: true,
            ..Default::default()
        });
        // On a correlated layout adjacency works.
        assert!(adj_good.demand_fetches < 32, "{}", adj_good.demand_fetches);
        // On a scattered layout adjacency wastes fetches on decoys and
        // misses far more often…
        assert!(
            adj_bad.demand_fetches > adj_good.demand_fetches * 2,
            "{} vs {}",
            adj_bad.demand_fetches,
            adj_good.demand_fetches
        );
        assert!(
            adj_bad.prefetch_fetches > reach_bad.prefetch_fetches,
            "adjacency should fetch decoys: {} vs {}",
            adj_bad.prefetch_fetches,
            reach_bad.prefetch_fetches
        );
        // …while reachability is layout-independent.
        assert!(reach_bad.demand_fetches < 32, "{}", reach_bad.demand_fetches);
        assert!(reach_bad.latency < adj_bad.latency);
    }

    #[test]
    fn lossless_fabric_needs_no_retries() {
        let out = run_lossy_invoke(&LossyConfig::default());
        assert_eq!(out.completed, 10);
        assert_eq!(out.failed, 0);
        assert_eq!(out.packets_lost, 0);
        assert_eq!(out.retries, 0);
    }

    #[test]
    fn retries_recover_from_heavy_loss() {
        for seed in [1u64, 2, 3, 4, 5] {
            let out = run_lossy_invoke(&LossyConfig {
                loss_permille: 100, // 10%
                seed,
                ..Default::default()
            });
            assert_eq!(out.completed, 10, "seed {seed}: {out:?}");
            assert_eq!(out.failed, 0, "seed {seed}");
            assert!(out.packets_lost > 0, "seed {seed}");
        }
    }

    #[test]
    fn loss_costs_latency_but_not_correctness() {
        let clean = run_lossy_invoke(&LossyConfig::default());
        let lossy = run_lossy_invoke(&LossyConfig { loss_permille: 200, ..Default::default() });
        assert_eq!(lossy.completed, 10, "{lossy:?}");
        assert!(lossy.retries > 0);
        assert!(
            lossy.mean_latency > clean.mean_latency,
            "retransmissions must cost time: {} vs {}",
            lossy.mean_latency,
            clean.mean_latency
        );
    }

    #[test]
    fn determinism() {
        let cfg = F1Config { strategy: F1Strategy::Automatic, model: small_model(), seed: 42 };
        let a = run_fig1(&cfg);
        let b = run_fig1(&cfg);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.fabric_bytes, b.fabric_bytes);
    }
}
