//! Sparse models laid out inside objects — usable in place.
//!
//! §3.1: *"a data structure containing pointers can be copied from one host
//! to another with merely a byte-level copy, alleviating 100% of the
//! loading overhead."* This module is the global-address-space counterpart
//! of `rdv_wire::sparsemodel`: the same CSR model, but stored directly in
//! an object's heap in its working form. After a byte copy to another host
//! the inference kernel reads it immediately — no deserialize, no index
//! rebuild, no interning.
//!
//! Layout (all offsets relative to the header block at offset 8):
//!
//! ```text
//! +0   u64  layers
//! +8   u64  rows        (uniform across layers, as generated)
//! +16  u64  cols
//! +24  u64  nnz_per_layer
//! +32.. per-layer section table: 4 × u64 offsets per layer
//!       (row_ptr, col_idx, values, bias)
//! ```

use rdv_objspace::{ObjError, ObjId, ObjResult, Object, ObjectKind};
use rdv_wire::sparsemodel::SparseModel;

const HDR: u64 = 8;

/// Build an object containing `model` in its in-memory working form.
pub fn model_to_object(id: ObjId, model: &SparseModel) -> ObjResult<Object> {
    let layers = model.layers.len() as u64;
    let rows = model.layers.first().map(|l| l.weights.rows as u64).unwrap_or(0);
    let cols = model.layers.first().map(|l| l.weights.cols as u64).unwrap_or(0);
    let nnz = model.layers.first().map(|l| l.weights.nnz() as u64).unwrap_or(0);
    let capacity = 4096 + model.approx_bytes() * 2;
    let mut obj = Object::with_capacity(id, ObjectKind::Data, capacity);
    let hdr = obj.alloc(32 + layers * 32)?;
    debug_assert_eq!(hdr, HDR);
    obj.write_u64(hdr, layers)?;
    obj.write_u64(hdr + 8, rows)?;
    obj.write_u64(hdr + 16, cols)?;
    obj.write_u64(hdr + 24, nnz)?;
    for (i, layer) in model.layers.iter().enumerate() {
        let w = &layer.weights;
        // row_ptr as u64 array for aligned reads.
        let rp_off = obj.alloc((w.row_ptr.len() * 8) as u64)?;
        for (j, &v) in w.row_ptr.iter().enumerate() {
            obj.write_u64(rp_off + j as u64 * 8, u64::from(v))?;
        }
        let ci_off = obj.alloc((w.col_idx.len() * 8) as u64)?;
        for (j, &v) in w.col_idx.iter().enumerate() {
            obj.write_u64(ci_off + j as u64 * 8, u64::from(v))?;
        }
        let va_off = obj.alloc((w.values.len() * 4) as u64)?;
        obj.write_f32s(va_off, &w.values)?;
        let b_off = obj.alloc((layer.bias.len() * 4) as u64)?;
        obj.write_f32s(b_off, &layer.bias)?;
        let table = hdr + 32 + i as u64 * 32;
        obj.write_u64(table, rp_off)?;
        obj.write_u64(table + 8, ci_off)?;
        obj.write_u64(table + 16, va_off)?;
        obj.write_u64(table + 24, b_off)?;
    }
    Ok(obj)
}

/// Model shape read back from an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelShape {
    /// Layer count.
    pub layers: u64,
    /// Rows per layer.
    pub rows: u64,
    /// Columns per layer.
    pub cols: u64,
    /// Nonzeros per layer.
    pub nnz: u64,
}

/// Read the shape header.
pub fn model_shape(obj: &Object) -> ObjResult<ModelShape> {
    Ok(ModelShape {
        layers: obj.read_u64(HDR)?,
        rows: obj.read_u64(HDR + 8)?,
        cols: obj.read_u64(HDR + 16)?,
        nnz: obj.read_u64(HDR + 24)?,
    })
}

/// Run inference directly against the object — the in-place path.
///
/// Returns `(output, flops)`; the caller converts flops into simulated
/// compute time. There is deliberately **no** construction of any
/// intermediate model structure here.
pub fn infer_in_place(obj: &Object, activation: &[f32]) -> ObjResult<(Vec<f32>, u64)> {
    let shape = model_shape(obj)?;
    if activation.len() as u64 != shape.cols {
        return Err(ObjError::OutOfBounds {
            offset: 0,
            len: activation.len() as u64,
            size: shape.cols,
        });
    }
    let mut x = activation.to_vec();
    let mut flops = 0u64;
    for layer in 0..shape.layers {
        let table = HDR + 32 + layer * 32;
        let rp_off = obj.read_u64(table)?;
        let ci_off = obj.read_u64(table + 8)?;
        let va_off = obj.read_u64(table + 16)?;
        let b_off = obj.read_u64(table + 24)?;
        let values = obj.read_f32s(va_off, shape.nnz as usize)?;
        let bias = obj.read_f32s(b_off, shape.rows as usize)?;
        let mut y = vec![0.0f32; shape.rows as usize];
        for r in 0..shape.rows {
            let start = obj.read_u64(rp_off + r * 8)?;
            let end = obj.read_u64(rp_off + (r + 1) * 8)?;
            let mut acc = 0.0f32;
            for k in start..end {
                let col = obj.read_u64(ci_off + k * 8)?;
                acc += values[k as usize] * x[col as usize];
            }
            y[r as usize] = (acc + bias[r as usize]).max(0.0);
        }
        flops += 2 * shape.nnz + shape.rows;
        x = y;
    }
    Ok((x, flops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdv_wire::cost::CostMeter;
    use rdv_wire::sparsemodel::{load_model, SparseModelSpec};

    fn spec() -> SparseModelSpec {
        SparseModelSpec { layers: 2, rows: 32, cols: 32, nnz_per_row: 4, vocab: 8, seed: 77 }
    }

    #[test]
    fn in_place_matches_loaded_inference() {
        let model = SparseModel::generate(&spec());
        let obj = model_to_object(ObjId(1), &model).unwrap();
        let activation: Vec<f32> = (0..32).map(|i| (i as f32) / 32.0).collect();

        let (in_place, flops) = infer_in_place(&obj, &activation).unwrap();
        assert!(flops > 0);

        let mut meter = CostMeter::new();
        let loaded = load_model(model, &mut meter);
        let reference = loaded.infer(&activation, &mut meter);
        assert_eq!(in_place.len(), reference.len());
        for (a, b) in in_place.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn survives_byte_copy_with_zero_rework() {
        let model = SparseModel::generate(&spec());
        let obj = model_to_object(ObjId(1), &model).unwrap();
        let activation = vec![1.0f32; 32];
        let (before, _) = infer_in_place(&obj, &activation).unwrap();
        // "Move" the object: byte copy, nothing else.
        let moved = Object::from_image(&obj.to_image()).unwrap();
        let (after, _) = infer_in_place(&moved, &activation).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn shape_header() {
        let model = SparseModel::generate(&spec());
        let obj = model_to_object(ObjId(1), &model).unwrap();
        let s = model_shape(&obj).unwrap();
        assert_eq!(s, ModelShape { layers: 2, rows: 32, cols: 32, nnz: 128 });
    }

    #[test]
    fn wrong_activation_size_rejected() {
        let model = SparseModel::generate(&spec());
        let obj = model_to_object(ObjId(1), &model).unwrap();
        assert!(infer_in_place(&obj, &[0.0; 8]).is_err());
    }
}
