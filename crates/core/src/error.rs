//! Core runtime errors.

use rdv_objspace::ObjId;
use std::fmt;

/// Errors from the rendezvous runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The code object names a function the local registry lacks.
    UnknownFunction(u64),
    /// An object required by an execution is unavailable.
    ObjectUnavailable(ObjId),
    /// An object's contents failed to parse as the expected structure.
    MalformedObject(ObjId, &'static str),
    /// An invocation was refused by the executor.
    InvokeRefused,
    /// No host satisfies the placement constraints.
    NoPlacement,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownFunction(id) => write!(f, "unknown function {id:#x}"),
            CoreError::ObjectUnavailable(id) => write!(f, "object {id} unavailable"),
            CoreError::MalformedObject(id, what) => write!(f, "object {id} malformed: {what}"),
            CoreError::InvokeRefused => write!(f, "invocation refused"),
            CoreError::NoPlacement => write!(f, "no feasible placement"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CoreError::UnknownFunction(0xAB).to_string().contains("0xab"));
        assert!(CoreError::ObjectUnavailable(ObjId(3)).to_string().contains("unavailable"));
    }
}
