//! # rdv-bench — the experiment harness
//!
//! One module per paper artifact (see DESIGN.md's per-experiment index):
//!
//! | id | artifact | module |
//! |----|----------|--------|
//! | F1 | Figure 1 — rendezvous strategies | [`experiments::fig1`] |
//! | F2 | Figure 2 — Controller vs E2E discovery | [`experiments::fig2`] |
//! | F3 | Figure 3 — E2E staleness | [`experiments::fig3`] |
//! | T1 | §3.2 switch-table capacity | [`experiments::t1`] |
//! | T2 | §3.1 pointer-encoding cost | [`experiments::t2`] |
//! | S1 | §2 serialization/loading fraction | [`experiments::s1`] |
//! | A1 | reachability vs adjacency prefetch | [`experiments::a1`] |
//! | A2 | middleware indirection cost | [`experiments::a2`] |
//! | A3 | hierarchical ID overlay | [`experiments::a3`] |
//! | A4 | CRDT auto-merge on movement | [`experiments::a4`] |
//! | A5 | coherence write fan-out | [`experiments::a5`] |
//!
//! Each `run(quick)` returns a [`report::Series`]; the `figures` binary
//! renders them as text tables and writes JSON alongside. Criterion benches
//! under `benches/` time the same code paths in wall-clock terms.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod fabric;
pub mod par;
pub mod report;

pub use report::Series;
