//! Result tables and their renderers.
//!
//! The JSON writer is hand-rolled (DESIGN.md: the repo owns its
//! serialization end to end); the text renderer produces the aligned
//! tables EXPERIMENTS.md quotes.

/// A result table: named columns, string-rendered rows, free-form notes.
#[derive(Debug, Clone)]
pub struct Series {
    /// Experiment ID ("F2", "S1", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows (pre-rendered cells).
    pub rows: Vec<Vec<String>>,
    /// Footnotes (assumptions, paper comparison).
    pub notes: Vec<String>,
}

impl Series {
    /// Start a table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Series {
        Series {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (cells stringified by the caller).
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells);
    }

    /// Append a footnote.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Render as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.columns, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Render as JSON (escaped, stable key order).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn arr(items: impl Iterator<Item = String>) -> String {
            let inner: Vec<String> = items.collect();
            format!("[{}]", inner.join(","))
        }
        let columns = arr(self.columns.iter().map(|c| format!("\"{}\"", esc(c))));
        let rows = arr(self.rows.iter().map(|r| arr(r.iter().map(|c| format!("\"{}\"", esc(c))))));
        let notes = arr(self.notes.iter().map(|n| format!("\"{}\"", esc(n))));
        format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"columns\":{},\"rows\":{},\"notes\":{}}}",
            esc(&self.id),
            esc(&self.title),
            columns,
            rows,
            notes
        )
    }
}

/// Format nanoseconds as microseconds with 1 decimal.
pub fn us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1000.0)
}

/// Format a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a fraction as a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Series {
        let mut s = Series::new("T9", "sample", &["x", "longer_column"]);
        s.push_row(vec!["1".into(), "2".into()]);
        s.push_row(vec!["100".into(), "wide cell value".into()]);
        s.note("a note");
        s
    }

    #[test]
    fn text_alignment() {
        let text = sample().to_text();
        assert!(text.contains("== T9 — sample =="));
        let lines: Vec<&str> = text.lines().collect();
        // Header and rows are right-aligned to the same width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert!(text.contains("note: a note"));
    }

    #[test]
    fn json_is_wellformed_enough() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"id\":\"T9\""));
        assert!(json.contains("\"columns\":[\"x\",\"longer_column\"]"));
        // Escaping.
        let mut s = Series::new("q", "with \"quotes\"\n", &["a"]);
        s.push_row(vec!["cell\\back".into()]);
        let j = s.to_json();
        assert!(j.contains("with \\\"quotes\\\"\\n"));
        assert!(j.contains("cell\\\\back"));
    }

    #[test]
    fn helpers() {
        assert_eq!(us(1500), "1.5");
        assert_eq!(pct(0.705), "70.5%");
        assert_eq!(f2(1.0 / 3.0), "0.33");
    }
}
