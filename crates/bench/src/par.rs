//! Deterministic fan-out of independent experiment points over threads.
//!
//! Every sweep point in the harness is an independent simulation with its
//! own seed, so points can run concurrently as long as results are
//! reassembled in point order. [`par_map`] does exactly that: a shared
//! work queue feeds `jobs()` scoped threads (`std::thread::scope`, no
//! runtime dependency — DESIGN §5 rules out tokio here), and each result
//! lands in the slot of its input index. Output is therefore byte-identical
//! to a serial run regardless of thread count or scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// 0 means "auto": use available parallelism.
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Set the worker-thread count for subsequent [`par_map`] calls.
/// `1` forces serial execution in the calling thread; `0` restores auto.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The worker-thread count [`par_map`] will use: the last [`set_jobs`]
/// value, or available parallelism when unset.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Map `f` over `items` on up to [`jobs`] threads, returning results in
/// input order.
///
/// Each item must be an independent unit of work (the harness guarantees
/// this by deriving a fixed seed per point). A panic in any worker —
/// e.g. an experiment's internal assertion — propagates to the caller once
/// all threads have stopped.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = jobs().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Queue is popped from the back; reverse so index 0 is claimed first
    // (helps similar-cost points finish in roughly input order).
    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let item = queue.lock().unwrap().pop();
                    let Some((idx, item)) = item else { break };
                    let out = f(item);
                    *slots[idx].lock().unwrap() = Some(out);
                })
            })
            .collect();
        // Join explicitly so a worker's panic payload (e.g. an experiment
        // assertion message) reaches the caller intact instead of the
        // scope's generic "a scoped thread panicked".
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every slot filled by a worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order() {
        set_jobs(4);
        let out = par_map((0..64u64).collect(), |i| i * i);
        set_jobs(0);
        assert_eq!(out, (0..64u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        set_jobs(1);
        let serial = par_map((0..33u64).collect(), |i| format!("p{i}"));
        set_jobs(3);
        let parallel = par_map((0..33u64).collect(), |i| format!("p{i}"));
        set_jobs(0);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_inputs_work() {
        set_jobs(4);
        let empty: Vec<u8> = par_map(Vec::new(), |x: u8| x);
        assert!(empty.is_empty());
        assert_eq!(par_map(vec![7u8], |x| x + 1), vec![8]);
        set_jobs(0);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        set_jobs(2);
        let _ = par_map(vec![0u8, 1], |x| {
            if x == 1 {
                panic!("boom");
            }
            x
        });
    }
}
