//! F2 — Figure 2: *"RTT of packets as the percent of new objects (the
//! line) increases"* — Controller vs E2E discovery, plus broadcast
//! messages per 100 accesses.

use rdv_discovery::{DiscoveryMode, ScenarioConfig, ScenarioKind, StalenessMode};

use crate::par::par_map;
use crate::report::{f1, Series};

/// Sweep 0–90 % new objects for both schemes.
pub fn run(quick: bool) -> Series {
    let accesses = if quick { 200 } else { 1000 };
    let num_objects = if quick { 64 } else { 256 };
    let mut series = Series::new(
        "F2",
        "discovery RTT vs % accesses to new objects (paper Fig. 2)",
        &["new%", "ctl_mean_us", "ctl_p99_us", "e2e_mean_us", "e2e_p99_us", "e2e_bcast/100"],
    );
    // Every sweep point is an independent pair of simulations with fully
    // derived configuration, so fan them out; rows land in point order.
    let rows = par_map((0..=90).step_by(10).collect(), |pct_new| {
        let base = ScenarioConfig {
            kind: ScenarioKind::Fig2NewObjects { pct_new },
            accesses,
            num_objects,
            staleness: StalenessMode::InvalidateOnMove,
            ..Default::default()
        };
        let ctl = rdv_discovery::scenario::run_discovery(&ScenarioConfig {
            mode: DiscoveryMode::Controller,
            ..base
        });
        let e2e = rdv_discovery::scenario::run_discovery(&ScenarioConfig {
            mode: DiscoveryMode::E2E,
            ..base
        });
        assert_eq!(ctl.incomplete, 0, "controller accesses must all complete");
        assert_eq!(e2e.incomplete, 0, "e2e accesses must all complete");
        let mut ctl_rtt = ctl.rtt;
        let mut e2e_rtt = e2e.rtt;
        vec![
            pct_new.to_string(),
            f1(ctl_rtt.mean() / 1000.0),
            f1(ctl_rtt.percentile(99.0) as f64 / 1000.0),
            f1(e2e_rtt.mean() / 1000.0),
            f1(e2e_rtt.percentile(99.0) as f64 / 1000.0),
            f1(e2e.broadcasts_per_100),
        ]
    });
    for row in rows {
        series.push_row(row);
    }
    series
        .note("paper shape: controller flat at 1 RTT; E2E rises with new%; broadcasts/100 ≈ new%");
    series
        .note("absolute µs differ from the paper (its emulation 'affected timings'); shapes match");
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let s = run(true);
        assert_eq!(s.rows.len(), 10);
        let get = |row: usize, col: usize| s.rows[row][col].parse::<f64>().unwrap();
        // Controller flat: last/first mean within 25%.
        let ctl_ratio = get(9, 1) / get(0, 1);
        assert!((0.75..1.25).contains(&ctl_ratio), "controller not flat: {ctl_ratio}");
        // E2E rises.
        assert!(get(9, 3) > get(0, 3) * 1.2, "E2E must rise with new%");
        // Broadcasts track new%.
        assert!((get(0, 5) - 0.0).abs() < 1.0);
        assert!((get(9, 5) - 90.0).abs() < 5.0);
    }
}
