//! T2 — §3.1's encoding claim: *"Pointers in Twizzler are encoded
//! efficiently, such that the pointer itself takes up only 64 bits …
//! forming a 64 bit pointer that nonetheless references data in a 128 bit
//! address space."*
//!
//! We quantify the claim against the naive alternative (a direct 128-bit
//! ID + 64-bit offset per pointer, 24 B): build *real* objects holding `R`
//! pointers to `T` distinct targets, measure the actual per-reference
//! metadata bytes (8 B pointer word + the amortized 17 B FOT entry per
//! distinct target), and compare.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rdv_objspace::{FotFlags, ObjId, Object, ObjectKind};

use crate::report::{f1, f2, Series};

/// Bytes a direct-encoding pointer would take (128-bit ID + 64-bit offset).
const DIRECT_PTR_BYTES: f64 = 24.0;

/// Build an object with `refs` pointers spread over `targets` distinct
/// objects; return measured FOT+pointer bytes per reference.
pub fn fot_bytes_per_ref(refs: usize, targets: usize, seed: u64) -> f64 {
    assert!(targets >= 1 && refs >= targets);
    let mut rng = StdRng::seed_from_u64(seed);
    use rand::Rng;
    let target_ids: Vec<ObjId> = (0..targets).map(|_| ObjId(rng.gen::<u128>() | 1)).collect();
    let mut obj = Object::with_capacity(ObjId(0x72), ObjectKind::Data, 1 << 24);
    let empty_image = obj.image_len();
    let base = obj.alloc(refs as u64 * 8).expect("capacity");
    for i in 0..refs {
        let ptr = obj.make_ptr(target_ids[i % targets], 64, FotFlags::RO).expect("fot capacity");
        obj.write_ptr(base + i as u64 * 8, ptr).expect("in bounds");
    }
    // Metadata = everything the references added to the image (pointer
    // words + FOT growth).
    (obj.image_len() - empty_image) as f64 / refs as f64
}

/// Sweep reference locality (refs per distinct target).
pub fn run(quick: bool) -> Series {
    let refs = if quick { 1024 } else { 16384 };
    let mut series = Series::new(
        "T2",
        "pointer encoding cost: FOT (64-bit) vs direct 128-bit pointers (paper §3.1)",
        &["refs/target", "fot_B/ref", "direct_B/ref", "saving"],
    );
    for ratio in [1usize, 2, 4, 16, 64] {
        let targets = refs / ratio;
        let fot = fot_bytes_per_ref(refs, targets, 7);
        let saving = 1.0 - fot / DIRECT_PTR_BYTES;
        series.push_row(vec![
            ratio.to_string(),
            f2(fot),
            f2(DIRECT_PTR_BYTES),
            format!("{}%", f1(saving * 100.0)),
        ]);
    }
    series.note(
        "measured on real object images; direct = hypothetical 16 B ID + 8 B offset per pointer",
    );
    series.note("FOT entries amortize across pointers to the same target: break-even just above 1 ref/target, 3× smaller at high locality — and the FOT doubles as the reachability graph (A1)");
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fot_encoding_wins_with_locality() {
        // At 1 ref/target the schemes are within ~10% of each other…
        let even = fot_bytes_per_ref(256, 256, 1);
        assert!((20.0..28.0).contains(&even), "{even}");
        // …with reuse, FOT approaches 8 B/ref.
        let reuse = fot_bytes_per_ref(256, 16, 1);
        assert!(reuse < 10.0, "{reuse}");
        assert!(reuse < DIRECT_PTR_BYTES / 2.0);
    }

    #[test]
    fn table_shape() {
        let s = run(true);
        let fot = |i: usize| s.rows[i][1].parse::<f64>().unwrap();
        // Monotone improvement with locality.
        for w in 0..4 {
            assert!(fot(w) > fot(w + 1), "row {w}");
        }
    }
}
