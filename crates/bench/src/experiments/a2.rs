//! A2 — §1's middleware indictment: *"discovery services, load balancers,
//! or other forms of middleware … make the execution endpoint abstract,
//! but at the cost of increased latency and added system complexity."*
//!
//! Measures the same logical call through 0–2 indirection layers, against
//! the object-routed invocation that needs none.

use rdv_core::code::{make_code_object, CodeDesc};
use rdv_core::runtime::{GasHostConfig, GasHostNode, ScriptStep};
use rdv_core::scenarios::{build_star_fabric, host_link_rack, standard_registry, FN_NOOP};
use rdv_netsim::SimTime;
use rdv_objspace::ObjId;
use rdv_rpc::client::{ClientNode, PlannedCall};
use rdv_rpc::middleware::{DiscoveryServiceNode, LoadBalancerNode};
use rdv_rpc::server::ServerNode;
use rdv_rpc::service::{echo_methods, EchoService};

use crate::par::par_map;
use crate::report::{f1, Series};

const CLIENT: ObjId = ObjId(0xAC1);
const SERVER: ObjId = ObjId(0xA5E);
const LB: ObjId = ObjId(0xA1B);
const DIR: ObjId = ObjId(0xAD1);
const CODE: ObjId = ObjId(0xAC0DE);

/// Mean RPC latency (µs) over `calls` calls for a given plan template.
fn rpc_latency_us(with_lb: bool, with_lookup: bool, calls: usize, seed: u64) -> f64 {
    let mut client = ClientNode::new("client", CLIENT);
    for _ in 0..calls {
        client.plan.push(PlannedCall {
            server: if with_lb { LB } else { SERVER },
            service: 1,
            method: echo_methods::ECHO,
            args: vec![0u8; 128],
            serialize_ns: 500,
            lookup_via: if with_lookup { Some((DIR, "echo".into())) } else { None },
            timeout_ns: 0,
        });
    }
    let mut server = ServerNode::new("server", SERVER);
    server.register(1, Box::new(EchoService::default()));
    let lb = LoadBalancerNode::new("lb", LB, vec![SERVER]);
    let mut dir = DiscoveryServiceNode::new("dir", DIR);
    dir.register("echo", if with_lb { LB } else { SERVER });

    let (mut sim, ids) = build_star_fabric(
        seed,
        vec![
            (Box::new(client), CLIENT, host_link_rack()),
            (Box::new(server), SERVER, host_link_rack()),
            (Box::new(lb), LB, host_link_rack()),
            (Box::new(dir), DIR, host_link_rack()),
        ],
        &[],
    );
    for i in 0..calls as u64 {
        sim.schedule(SimTime::from_micros(1000 + 200 * i), ids[0], i);
    }
    sim.run_until_idle();
    let client = sim.node_as::<ClientNode>(ids[0]).expect("client");
    assert_eq!(client.records.len(), calls, "all calls must complete");
    let total: u64 = client.records.iter().map(|r| r.latency().as_nanos()).sum();
    total as f64 / calls as f64 / 1000.0
}

/// Mean object-routed invoke latency (µs).
fn gas_latency_us(calls: usize, seed: u64) -> f64 {
    let registry = standard_registry();
    let mut client = GasHostNode::new("client", CLIENT, GasHostConfig::default());
    client.registry = registry.clone();
    for _ in 0..calls {
        client.scripts.push(vec![ScriptStep::Invoke {
            executor: Some(SERVER),
            code: CODE,
            args: vec![],
            result_bytes: 16,
        }]);
    }
    let mut server = GasHostNode::new("server", SERVER, GasHostConfig::default());
    server.registry = registry;
    server
        .store
        .insert(make_code_object(CODE, CodeDesc { fn_id: FN_NOOP, base_ns: 100, ps_per_byte: 0 }))
        .expect("fresh");
    let (mut sim, ids) = build_star_fabric(
        seed,
        vec![
            (Box::new(client), CLIENT, host_link_rack()),
            (Box::new(server), SERVER, host_link_rack()),
        ],
        &[(CODE, 1)],
    );
    for i in 0..calls as u64 {
        sim.schedule(SimTime::from_micros(1000 + 200 * i), ids[0], i);
    }
    sim.run_until_idle();
    let client = sim.node_as::<GasHostNode>(ids[0]).expect("client");
    assert_eq!(client.records.len(), calls, "all invokes must complete");
    let total: u64 = client.records.iter().map(|r| (r.completed - r.started).as_nanos()).sum();
    total as f64 / calls as f64 / 1000.0
}

/// Run the indirection-layer sweep.
pub fn run(quick: bool) -> Series {
    let calls = if quick { 20 } else { 100 };
    let mut series = Series::new(
        "A2",
        "middleware indirection cost (paper §1)",
        &["path", "hops_added", "mean_latency_us"],
    );
    // Five independent fabrics; fan out and keep the fixed row order.
    let lats = par_map((0..5).collect(), |point| match point {
        0 => rpc_latency_us(false, false, calls, 1),
        1 => rpc_latency_us(true, false, calls, 1),
        2 => rpc_latency_us(false, true, calls, 1),
        3 => rpc_latency_us(true, true, calls, 1),
        _ => gas_latency_us(calls, 1),
    });
    let (direct, lb, lookup, lookup_lb, gas) = (lats[0], lats[1], lats[2], lats[3], lats[4]);
    series.push_row(vec!["rpc-direct".into(), "0".into(), f1(direct)]);
    series.push_row(vec!["rpc+load-balancer".into(), "1".into(), f1(lb)]);
    series.push_row(vec!["rpc+discovery-lookup".into(), "1".into(), f1(lookup)]);
    series.push_row(vec!["rpc+lookup+lb".into(), "2".into(), f1(lookup_lb)]);
    series.push_row(vec!["object-routed invoke".into(), "0".into(), f1(gas)]);
    series.note("each middleware layer adds at least one proxy traversal; ID routing gets location-independence from the switches instead");
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_layer_costs_latency() {
        let s = run(true);
        let lat = |i: usize| s.rows[i][2].parse::<f64>().unwrap();
        let (direct, lb, lookup, both, gas) = (lat(0), lat(1), lat(2), lat(3), lat(4));
        assert!(lb > direct * 1.3, "LB hop must cost: {lb} vs {direct}");
        assert!(lookup > direct * 1.3);
        assert!(both > lb && both > lookup);
        // Object routing is competitive with direct RPC (no middleware tax
        // for location independence).
        assert!(gas < lb && gas < lookup, "gas {gas} vs lb {lb} / lookup {lookup}");
    }
}
