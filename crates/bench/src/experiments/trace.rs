//! Traced companion runs: re-run one representative point of an
//! experiment with the causal tracer enabled, export a Perfetto-loadable
//! JSON trace, and print a critical-path summary explaining *why* the
//! figure's latencies are what they are.
//!
//! Determinism: the traced point uses the same derived seed as the sweep,
//! the tracer stamps sim time only, and the exporter formats with integer
//! arithmetic — so `results/trace_<exp>.json` is byte-identical across
//! processes and `--jobs` values (CI cmp-checks this).

use rdv_discovery::scenario::run_discovery;
use rdv_discovery::{DiscoveryMode, ScenarioConfig, ScenarioKind, ScenarioTrace, StalenessMode};
use rdv_netsim::trace::{export, CriticalPath, EventKind, PathBreakdown, SampleSpec, CATEGORIES};

use crate::fabric::{run_fabric, run_fabric_traced, FabricSpec};

/// Experiment IDs that have a traced companion run.
pub const TRACEABLE: &[&str] = &["F2", "F3", "F5"];

/// The artifacts of one traced run.
pub struct TraceReport {
    /// Chrome trace-event JSON (Perfetto / `chrome://tracing`).
    pub json: String,
    /// Human-readable critical-path summary.
    pub summary: String,
}

/// Run the traced companion of `exp` (`F2`, `F3`, or `F5`), if it has one.
pub fn run(exp: &str, quick: bool) -> Option<TraceReport> {
    match exp {
        "F2" => Some(trace_f2(quick)),
        "F3" => Some(trace_f3(quick)),
        "F5" => Some(trace_f5(quick)),
        _ => None,
    }
}

/// F2 at 50% new objects, E2E: fresh accesses are 1 unicast RTT, new
/// objects take a broadcast rediscovery first.
fn trace_f2(quick: bool) -> TraceReport {
    let out = run_discovery(&ScenarioConfig {
        kind: ScenarioKind::Fig2NewObjects { pct_new: 50 },
        mode: DiscoveryMode::E2E,
        staleness: StalenessMode::InvalidateOnMove,
        accesses: if quick { 200 } else { 1000 },
        num_objects: if quick { 64 } else { 256 },
        trace: true,
        ..Default::default()
    });
    let trace = out.trace.expect("tracing was enabled");
    let summary = summarize(
        "F2 @ 50% new objects (E2E)",
        &trace,
        "broadcast discovery (new object)",
        "cached unicast",
    );
    TraceReport { json: export::chrome_json(&trace.tracer, &trace.node_names), summary }
}

/// F3 mid-sweep (50% of accesses to moved objects), E2E with
/// NACK-rediscover staleness: the latency rise the figure shows mid-sweep
/// is attributed to stale-cache accesses taking the 3-leg NACK →
/// broadcast rediscovery path.
fn trace_f3(quick: bool) -> TraceReport {
    let out = run_discovery(&ScenarioConfig {
        kind: ScenarioKind::Fig3Staleness { pct_moved: 50 },
        mode: DiscoveryMode::E2E,
        staleness: StalenessMode::NackRediscover,
        accesses: if quick { 100 } else { 400 },
        trace: true,
        ..Default::default()
    });
    let trace = out.trace.expect("tracing was enabled");
    let summary = summarize(
        "F3 @ 50% moved (E2E, NACK-rediscover)",
        &trace,
        "stale cache → NACK → broadcast rediscovery",
        "fresh cache unicast",
    );
    TraceReport { json: export::chrome_json(&trace.tracer, &trace.node_names), summary }
}

/// F5 on the 100 k-host fabric (the full sweep's largest point; quick
/// mode uses the smallest so module tests stay cheap), with deterministic
/// sampled tracing: full recording at this scale would need an event ring
/// the size of the run, so the sampler keeps a fixed permille of
/// `fabric.storm` chains — each kept host records its entire bounce
/// chain, every other host records nothing, and the recorded bytes are
/// identical at every shard count (asserted here against shards 1/2/8
/// before reporting).
fn trace_f5(quick: bool) -> TraceReport {
    let (racks, hpr, permille) = if quick { (16, 64, 100) } else { (256, 400, 2) };
    let spec = FabricSpec {
        racks,
        hosts_per_rack: hpr,
        burst: 2,
        bounces: if quick { 4 } else { 16 },
        ring_packets: 8,
        ring_hops: racks as u64,
    };
    let sample =
        SampleSpec { seed: 0xF5, default_permille: 0, classes: vec![("fabric.storm", permille)] };
    let (fp, tracer, names) = run_fabric_traced(&spec, 42, 1, &sample);
    assert_eq!(fp, run_fabric(&spec, 42, 1), "tracing must not perturb the run");
    for shards in [2usize, 8] {
        let (sfp, stracer, _) = run_fabric_traced(&spec, 42, shards, &sample);
        assert_eq!(sfp, fp, "fingerprint diverged at shards={shards}");
        assert_eq!(stracer.count(), tracer.count(), "trace bytes diverged at shards={shards}");
    }
    let (sampled, skipped) = tracer.sample_tallies().expect("sampled mode");

    let mut storm = PathBreakdown::default();
    for (id, ev) in tracer.iter() {
        if matches!(ev.kind, EventKind::SpanEnd { name: "fabric.storm" }) {
            storm.add(&CriticalPath::from_span(&tracer, id));
        }
    }
    let mut s = String::new();
    s.push_str(&format!(
        "critical-path summary — F5 storm @ {} hosts ({racks} racks, sampled tracing)\n",
        spec.hosts()
    ));
    s.push_str(&format!(
        "  sampling: kept {sampled} of {} storm chains ({permille}\u{2030} of class \
         fabric.storm), {} events recorded — full recording at this scale would keep \
         every chain\n",
        sampled + skipped,
        tracer.count(),
    ));
    s.push_str(&format!(
        "  sampled chains: {} paths, mean {} µs, mean hops {}.{:02}\n",
        storm.paths,
        storm.mean_ns() / 1000,
        storm.mean_hops_x100() / 100,
        storm.mean_hops_x100() % 100,
    ));
    for (i, cat) in CATEGORIES.iter().enumerate() {
        let mean = storm.by_category[i].checked_div(storm.paths).unwrap_or(0);
        s.push_str(&format!("    {cat:<10} {:>8} µs/chain\n", mean / 1000));
    }
    let queue_link = storm.by_category[1] + storm.by_category[2];
    s.push_str(&format!(
        "  attribution: a storm chain is wire time — queue + link carry {}% of the \
         critical path (hosts bounce echoes back with zero service delay)\n",
        (queue_link * 100).checked_div(storm.total_ns).unwrap_or(0),
    ));
    TraceReport { json: export::chrome_json(&tracer, &names), summary: s }
}

/// Split the driver's accesses into the slow group (took a broadcast
/// and/or NACK) and the fast group, extract each access's critical path
/// from its `discovery.access` span-end, and render the aggregate
/// host/queue/link/timer breakdown side by side.
fn summarize(title: &str, trace: &ScenarioTrace, slow_label: &str, fast_label: &str) -> String {
    let mut slow = PathBreakdown::default();
    let mut fast = PathBreakdown::default();
    for rec in &trace.records {
        let Some(end) = rec.trace_end else { continue };
        let path = CriticalPath::from_span(&trace.tracer, end);
        if rec.broadcasts > 0 || rec.nacks > 0 {
            slow.add(&path);
        } else {
            fast.add(&path);
        }
    }
    let mut s = String::new();
    s.push_str(&format!("critical-path summary — {title}\n"));
    for (label, agg) in [(fast_label, &fast), (slow_label, &slow)] {
        s.push_str(&format!(
            "  {label}: {} accesses, mean {} µs, mean hops {}.{:02}\n",
            agg.paths,
            agg.mean_ns() / 1000,
            agg.mean_hops_x100() / 100,
            agg.mean_hops_x100() % 100,
        ));
        for (i, cat) in CATEGORIES.iter().enumerate() {
            let mean = agg.by_category[i].checked_div(agg.paths).unwrap_or(0);
            s.push_str(&format!("    {cat:<10} {:>8} µs/access\n", mean / 1000));
        }
    }
    if slow.paths > 0 && fast.paths > 0 {
        s.push_str(&format!(
            "  attribution: slow group pays {}x the link legs of the fast group \
             ({}.{:02} vs {}.{:02} hops) — the extra legs are the rediscovery round trips\n",
            if fast.mean_hops_x100() > 0 {
                slow.mean_hops_x100() / fast.mean_hops_x100()
            } else {
                0
            },
            slow.mean_hops_x100() / 100,
            slow.mean_hops_x100() % 100,
            fast.mean_hops_x100() / 100,
            fast.mean_hops_x100() % 100,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f3_trace_attributes_latency_rise_to_broadcast_rediscovery() {
        let report = run("F3", true).expect("F3 is traceable");
        // The Perfetto export is non-trivial and well-formed JSON at the
        // bracket level.
        assert!(report.json.starts_with("{\"traceEvents\":["));
        assert!(report.json.ends_with("],\"displayTimeUnit\":\"ns\"}\n"));
        // The summary separates the two populations and shows the stale
        // group paying more network legs.
        assert!(report.summary.contains("stale cache → NACK → broadcast rediscovery"));
        assert!(report.summary.contains("fresh cache unicast"));
        assert!(report.summary.contains("attribution:"));
    }

    #[test]
    fn f3_stale_paths_cost_more_link_legs_than_fresh() {
        let out = run_discovery(&ScenarioConfig {
            kind: ScenarioKind::Fig3Staleness { pct_moved: 50 },
            mode: DiscoveryMode::E2E,
            staleness: StalenessMode::NackRediscover,
            accesses: 100,
            trace: true,
            ..Default::default()
        });
        let trace = out.trace.expect("traced");
        let mut slow = PathBreakdown::default();
        let mut fast = PathBreakdown::default();
        for rec in &trace.records {
            let path = CriticalPath::from_span(&trace.tracer, rec.trace_end.expect("span closed"));
            assert!(path.total_ns > 0, "every access has a non-empty critical path");
            if rec.broadcasts > 0 || rec.nacks > 0 {
                slow.add(&path);
            } else {
                fast.add(&path);
            }
        }
        assert!(slow.paths > 0 && fast.paths > 0, "mid-sweep has both populations");
        // The stale path is NACK + broadcast + unicast (3 round trips) vs
        // 1 for fresh: strictly more link legs and higher mean latency.
        assert!(slow.mean_hops_x100() > fast.mean_hops_x100());
        assert!(slow.mean_ns() > fast.mean_ns());
    }

    #[test]
    fn f5_sampled_trace_is_affordable_and_shard_identical() {
        // Shard identity (1 vs 2 vs 8) and fingerprint preservation are
        // asserted inside trace_f5 itself; this checks the artifacts.
        let report = run("F5", true).expect("F5 is traceable");
        assert!(report.json.starts_with("{\"traceEvents\":["));
        assert!(report.summary.contains("sampling: kept"));
        assert!(report.summary.contains("attribution:"));
        // Quick mode keeps 100‰ of 1024 chains: far fewer than every
        // chain, far more than none.
        let kept: u64 = report
            .summary
            .split("kept ")
            .nth(1)
            .and_then(|rest| rest.split(' ').next())
            .and_then(|n| n.parse().ok())
            .expect("summary quotes the kept tally");
        assert!(kept > 0 && kept < 1024, "sampler kept {kept} of 1024");
    }

    #[test]
    fn unknown_ids_have_no_traced_companion() {
        assert!(run("T1", true).is_none());
        assert!(run("nope", true).is_none());
    }
}
