//! A5 — §5's coherence exploration: *"we will experiment with offloading
//! some synchronization and arbitration concerns to the programmable
//! network (which now functions somewhat as a memory bus), letting us
//! explore the consistency and coherence space together."*
//!
//! This repository keeps the directory at the home host (the natural first
//! point in that design space) and measures the canonical coherence cost:
//! a write to an object shared by N readers fans out N invalidations, and
//! every reader pays a cold refetch. The table quantifies how that cost
//! scales with the sharer count — the baseline any in-network offload
//! (§5's "network as memory bus") would have to beat.

use rdv_core::runtime::{GasHostConfig, GasHostNode, ScriptStep};
use rdv_core::scenarios::{build_star_fabric, host_link_rack};
use rdv_netsim::SimTime;
use rdv_objspace::{ObjId, Object, ObjectKind};

use crate::par::par_map;
use crate::report::{f1, Series};

const HOME: ObjId = ObjId(0x5001);
const WRITER: ObjId = ObjId(0x5002);
const OBJ: ObjId = ObjId(0x50BB);

/// Outcome of one sharer-count point.
#[derive(Debug, Clone, Copy)]
pub struct A5Outcome {
    /// Invalidations the home's directory issued for the write.
    pub invalidations: u64,
    /// Writer-observed write latency.
    pub write_latency: SimTime,
    /// Mean reader warm-fetch latency (before the write; cache-building).
    pub warm_fetch_us: f64,
    /// Mean reader refetch latency (after invalidation).
    pub refetch_us: f64,
    /// Readers whose refetched copy carried the new value.
    pub fresh_readers: usize,
}

/// Run one point: `readers` sharers, one write, refetch.
pub fn run_point(readers: usize, seed: u64) -> A5Outcome {
    let mut nodes: Vec<(Box<dyn rdv_netsim::Node>, ObjId, rdv_netsim::LinkSpec)> = Vec::new();

    // Home with the shared object.
    let mut home = GasHostNode::new("home", HOME, GasHostConfig::default());
    let mut obj = Object::with_capacity(OBJ, ObjectKind::Data, 1 << 16);
    let off = obj.alloc(64).expect("capacity");
    obj.write_u64(off, 1).expect("in bounds");
    home.store.insert(obj).expect("fresh");
    nodes.push((Box::new(home), HOME, host_link_rack()));

    // Writer.
    let mut writer = GasHostNode::new("writer", WRITER, GasHostConfig::default());
    writer.scripts = vec![vec![ScriptStep::Write {
        target: OBJ,
        offset: off,
        data: 99u64.to_le_bytes().to_vec(),
    }]];
    nodes.push((Box::new(writer), WRITER, host_link_rack()));

    // Readers: fetch (script 0), refetch (script 1).
    let reader_inboxes: Vec<ObjId> = (0..readers).map(|i| ObjId(0x6000 + i as u128)).collect();
    for &inbox in &reader_inboxes {
        let mut r = GasHostNode::new(format!("r{inbox}"), inbox, GasHostConfig::default());
        r.scripts = vec![vec![ScriptStep::Fetch(OBJ)], vec![ScriptStep::Fetch(OBJ)]];
        nodes.push((Box::new(r), inbox, host_link_rack()));
    }

    let (mut sim, ids) = build_star_fabric(seed, nodes, &[(OBJ, 0)]);
    // Phase 1 (1 ms): all readers fetch and become sharers.
    for (i, _) in reader_inboxes.iter().enumerate() {
        sim.schedule(SimTime::from_millis(1) + SimTime::from_micros(10 * i as u64), ids[2 + i], 0);
    }
    // Phase 2 (3 ms): the write.
    sim.schedule(SimTime::from_millis(3), ids[1], 0);
    // Phase 3 (5 ms): readers refetch.
    for (i, _) in reader_inboxes.iter().enumerate() {
        sim.schedule(SimTime::from_millis(5) + SimTime::from_micros(10 * i as u64), ids[2 + i], 1);
    }
    sim.run_until_idle();

    let home = sim.node_as::<GasHostNode>(ids[0]).expect("home");
    let invalidations = home.counters.get("dir_invalidates_sent");
    let writer = sim.node_as::<GasHostNode>(ids[1]).expect("writer");
    let write_latency = writer.records[0].completed - writer.records[0].started;

    let mut warm = 0u64;
    let mut refetch = 0u64;
    let mut fresh = 0;
    for (i, _) in reader_inboxes.iter().enumerate() {
        let r = sim.node_as_mut::<GasHostNode>(ids[2 + i]).expect("reader");
        assert_eq!(r.records.len(), 2, "both fetches must complete");
        warm += (r.records[0].completed - r.records[0].started).as_nanos();
        refetch += (r.records[1].completed - r.records[1].started).as_nanos();
        // The invalidation must have forced a *fresh* copy.
        if r.cache.get(OBJ).map(|o| o.read_u64(off).unwrap()) == Some(99) {
            fresh += 1;
        }
    }
    let n = readers.max(1) as f64;
    A5Outcome {
        invalidations,
        write_latency,
        warm_fetch_us: warm as f64 / n / 1000.0,
        refetch_us: refetch as f64 / n / 1000.0,
        fresh_readers: fresh,
    }
}

/// Sweep the sharer count.
pub fn run(quick: bool) -> Series {
    let sweep: &[usize] = if quick { &[0, 2, 8] } else { &[0, 1, 2, 4, 8, 16, 32] };
    let mut series = Series::new(
        "A5",
        "coherence write cost vs sharer count (paper §5)",
        &["readers", "invalidations", "write_us", "warm_fetch_us", "refetch_us", "fresh"],
    );
    // Independent simulations per sharer count: fan out, keep sweep order.
    let rows = par_map(sweep.to_vec(), |readers| {
        let out = run_point(readers, 41);
        assert_eq!(out.fresh_readers, readers, "every reader must see the write");
        vec![
            readers.to_string(),
            out.invalidations.to_string(),
            f1(out.write_latency.as_nanos() as f64 / 1000.0),
            f1(out.warm_fetch_us),
            f1(out.refetch_us),
            format!("{}/{}", out.fresh_readers, readers),
        ]
    });
    for row in rows {
        series.push_row(row);
    }
    series.note("one write through the home invalidates every sharer (fan-out = reader count) and forces cold refetches — the cost §5 proposes to attack by moving arbitration into the network");
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalidations_scale_with_sharers() {
        let s = run(true);
        let inv = |i: usize| s.rows[i][1].parse::<u64>().unwrap();
        assert_eq!(inv(0), 0, "no sharers, no invalidations");
        assert_eq!(inv(1), 2);
        assert_eq!(inv(2), 8);
    }

    #[test]
    fn writes_never_leave_stale_readers() {
        for readers in [1usize, 3, 5] {
            let out = run_point(readers, 9);
            assert_eq!(out.fresh_readers, readers);
            assert_eq!(out.invalidations, readers as u64);
        }
    }
}
