//! Telemetry companion runs: re-run one representative point of an
//! experiment with the metrics plane (gauge sampling + live invariant
//! monitor) enabled, export the time series as deterministic JSON, and
//! print a sparkline summary attributing the figure's shape to the gauges
//! that explain it.
//!
//! Determinism: the sampled point uses the same derived seed as the sweep,
//! gauges are sampled on sim-time cadence only, and both exporters use
//! integer arithmetic — so `results/metrics_<exp>.json` is byte-identical
//! across processes and `--jobs` values (CI cmp-checks this).

use rdv_discovery::scenario::run_discovery;
use rdv_discovery::{DiscoveryMode, ScenarioConfig, ScenarioKind, StalenessMode};
use rdv_netsim::metrics::{export, MetricSet};

use crate::experiments::f4::run_point_metrics;
use crate::experiments::f6::run_point_rdv_metrics;
use crate::experiments::f7::run_arm_metrics;

/// Experiment IDs that have a metrics companion run.
pub const METRICABLE: &[&str] = &["F3", "F4", "F6", "F7"];

/// The artifacts of one metrics-enabled run.
pub struct MetricsReport {
    /// Deterministic telemetry JSON (series + violations).
    pub json: String,
    /// Human-readable sparkline summary with attribution.
    pub summary: String,
}

/// Run the metrics companion of `exp` (`F3`, `F4`, `F6`, or `F7`), if it
/// has one.
pub fn run(exp: &str, quick: bool) -> Option<MetricsReport> {
    match exp {
        "F3" => Some(metrics_f3(quick)),
        "F4" => Some(metrics_f4()),
        "F6" => Some(metrics_f6()),
        "F7" => Some(metrics_f7(quick)),
        _ => None,
    }
}

/// Min / max / last over a named series (zeros when absent or empty).
fn stats(set: &MetricSet, name: &str) -> (u64, u64, u64) {
    let Some(series) = set.series_by_name(name) else { return (0, 0, 0) };
    let vals: Vec<u64> = series.points().map(|(_, v)| v).collect();
    (
        vals.iter().min().copied().unwrap_or(0),
        vals.iter().max().copied().unwrap_or(0),
        vals.last().copied().unwrap_or(0),
    )
}

/// Sim time (ns) of the first sample where `name` is at least `floor`.
fn first_at_or_above(set: &MetricSet, name: &str, floor: u64) -> Option<u64> {
    set.series_by_name(name)?.points().find(|&(_, v)| v >= floor).map(|(at, _)| at)
}

/// F3 mid-sweep (50% of accesses to moved objects), E2E with
/// NACK-rediscover staleness. The figure's latency knee appears exactly
/// where destination-cache freshness decays: stale entries NACK, the
/// driver rediscovers by broadcast, and the broadcast-rate gauge spikes
/// while the hit% gauge falls.
fn metrics_f3(quick: bool) -> MetricsReport {
    let cfg = ScenarioConfig {
        kind: ScenarioKind::Fig3Staleness { pct_moved: 50 },
        mode: DiscoveryMode::E2E,
        staleness: StalenessMode::NackRediscover,
        accesses: if quick { 100 } else { 400 },
        metrics: true,
        ..Default::default()
    };
    let out = run_discovery(&cfg);
    let set = out.metrics.expect("metrics were enabled");

    let (hit_min, hit_max, _) = stats(&set, "discovery.destcache_hit_pct.h0");
    let (_, bcast_max, _) = stats(&set, "discovery.broadcast_rate.h0");
    let knee = first_at_or_above(&set, "discovery.broadcast_rate.h0", bcast_max.max(1));
    let mut summary = export::text_table(&set, "F3 @ 50% moved (E2E, NACK-rediscover)");
    summary.push_str(&format!(
        "  attribution: destcache freshness decays across the measured window (hit% swings \
         {hit_min}–{hit_max}); each stale window shows as a broadcast-rate spike (peak \
         {bcast_max}/s{}) — those rediscovery round trips are the figure's latency knee\n",
        match knee {
            Some(at) => format!(", first peak at t={at} ns"),
            None => String::new(),
        }
    ));
    MetricsReport { json: export::json(&set, "F3", cfg.seed), summary }
}

/// F4 at the representative stressed point (300‰ loss, 600 µs outages):
/// the goodput dip is attributed to the fault windows — partition and
/// dead-node drop rates spike exactly inside the outage windows while the
/// driver's pending-access gauge climbs (watchdog retries in flight).
fn metrics_f4() -> MetricsReport {
    let (loss, outage) = (300u16, 600u64);
    let seed = 0xF4 + loss as u64;
    let (out, set) = run_point_metrics(loss, outage, seed);

    let (_, part_max, _) = stats(&set, "rate.sim.packets_dropped.partition");
    let (_, dead_max, _) = stats(&set, "rate.sim.packets_dropped.dead_node");
    let (_, lost_max, _) = stats(&set, "rate.sim.packets_lost");
    let (_, pend_max, _) = stats(&set, "discovery.pending_accesses.driver");
    let part_at = first_at_or_above(&set, "rate.sim.packets_dropped.partition", 1);
    let mut summary =
        export::text_table(&set, &format!("F4 @ {loss}\u{2030} loss, {outage} µs outages"));
    summary.push_str(&format!(
        "  attribution: goodput dips inside the injected outage windows — partition drops \
         peak at {part_max}/s{} and dead-node drops at {dead_max}/s while random loss runs \
         at up to {lost_max}/s; the driver's pending-access gauge climbs to {pend_max} as \
         watchdog retries queue, then drains once links heal ({} completed / {} failed)\n",
        match part_at {
            Some(at) => format!(" (from t={at} ns)"),
            None => String::new(),
        },
        out.completed,
        out.failed,
    ));
    MetricsReport { json: export::json(&set, "F4", seed), summary }
}

/// F6 at the representative skew point (1000‰, the classic Zipf): the
/// rendezvous arm with the load plane's SLO gauges emitted alongside the
/// engine gauges. The blip shows as a goodput trough in
/// `load.goodput_per_s` while `load.offered_per_s` holds flat (open
/// loop), and the recovery is the trough's right edge.
fn metrics_f6() -> MetricsReport {
    let skew = 1000u32;
    let seed = 0xF6 + skew as u64;
    let (out, set) = run_point_rdv_metrics(skew, seed);

    let (good_min, good_max, _) = stats(&set, "load.goodput_per_s");
    let (offered_min, offered_max, _) = stats(&set, "load.offered_per_s");
    let (_, p999_max, _) = stats(&set, "load.p999_us");
    let recovered_at = first_at_or_above(&set, "load.goodput_per_s", out.good_before * 9 / 10)
        .map(|at| format!(", back at 90% of the pre-blip mean by t={at} ns"))
        .unwrap_or_default();
    let mut summary = export::text_table(&set, &format!("F6 @ skew {skew}\u{2030} (rendezvous)"));
    summary.push_str(&format!(
        "  attribution: offered load holds {offered_min}–{offered_max}/s through the blip \
         (open loop — arrivals never gate on completions) while goodput dips to {good_min}/s \
         from a {good_max}/s peak during the partition+crash window{recovered_at}; the \
         watchdog's deferred re-sends surface as the p999 spike (up to {p999_max} µs) and as \
         {completed}/{offered} completed batches, {failed} lost\n",
        completed = out.completed,
        offered = out.offered_batches,
        failed = out.failed,
    ));
    MetricsReport { json: export::json(&set, "F6", seed), summary }
}

/// F7 on the smallest fabric, both arms: the flood arm's churn events
/// show as fabric-wide delivery-rate spikes (every host takes every
/// `DiscoverReq`), while the gossip arm's delivery rate stays at the flat
/// anti-entropy background and the probe host's journal gauges show the
/// churn fact arriving and repairing locally.
fn metrics_f7(quick: bool) -> MetricsReport {
    let seed = 42;
    let (flood, fset) = run_arm_metrics(quick, false, seed);
    let (gossip, gset) = run_arm_metrics(quick, true, seed);

    let (_, flood_peak, _) = stats(&fset, "rate.sim.packets_delivered");
    let (_, gossip_peak, _) = stats(&gset, "rate.sim.packets_delivered");
    let (journal_min, journal_max, _) = stats(&gset, "gossip.journal_entries.probe");
    let (_, _, repairs) = stats(&gset, "gossip.repair_hits.probe");
    let repaired_at = first_at_or_above(&gset, "gossip.repair_hits.probe", 1);
    let mut summary = export::text_table(&gset, "F7 churn (gossip arm, probe host gauges)");
    summary.push_str(&format!(
        "  attribution: the flood arm's churn events spike fabric-wide deliveries to \
         {flood_peak}/s (every DiscoverReq reaches every host) while the gossip arm peaks at \
         {gossip_peak}/s of flat anti-entropy background ({} flood deliveries vs {}); the \
         probe's journal grows {journal_min}→{journal_max} facts as deltas land and its \
         repair-hit gauge reaches {repairs}{} — the route repair never touches the network\n",
        flood.flood_rx,
        gossip.flood_rx,
        match repaired_at {
            Some(at) => format!(" (first local repair at t={at} ns)"),
            None => String::new(),
        }
    ));
    MetricsReport { json: export::json(&gset, "F7", seed), summary }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f3_metrics_attribute_knee_to_destcache_decay() {
        let report = run("F3", true).expect("F3 has a metrics companion");
        assert!(report.json.starts_with("{\"experiment\":\"F3\","));
        assert!(report.json.contains("\"name\":\"discovery.destcache_hit_pct.h0\""));
        assert!(report.json.contains("\"name\":\"discovery.broadcast_rate.h0\""));
        assert!(report.json.contains("\"violations\":[]"), "monitor stays green");
        assert!(report.summary.contains("attribution:"));
        assert!(report.summary.contains("latency knee"));
    }

    #[test]
    fn f4_metrics_attribute_dip_to_fault_windows() {
        let report = run("F4", true).expect("F4 has a metrics companion");
        assert!(report.json.starts_with("{\"experiment\":\"F4\","));
        assert!(
            report.json.contains("\"violations\":[]"),
            "invariant monitor green under loss, partition, and crash/restart"
        );
        assert!(report.summary.contains("attribution:"));
        assert!(report.summary.contains("partition drops"));
    }

    #[test]
    fn metrics_json_is_byte_identical_across_jobs_settings() {
        crate::par::set_jobs(1);
        let serial_f3 = run("F3", true).unwrap();
        let serial_f4 = run("F4", true).unwrap();
        crate::par::set_jobs(4);
        let par_f3 = run("F3", true).unwrap();
        let par_f4 = run("F4", true).unwrap();
        crate::par::set_jobs(0);
        assert_eq!(serial_f3.json, par_f3.json, "F3 telemetry independent of --jobs");
        assert_eq!(serial_f4.json, par_f4.json, "F4 telemetry independent of --jobs");
        assert_eq!(serial_f3.summary, par_f3.summary);
        assert_eq!(serial_f4.summary, par_f4.summary);
    }

    #[test]
    fn f6_metrics_show_open_loop_through_the_blip() {
        let report = run("F6", true).expect("F6 has a metrics companion");
        assert!(report.json.starts_with("{\"experiment\":\"F6\","));
        assert!(report.json.contains("\"name\":\"load.offered_per_s\""));
        assert!(report.json.contains("\"name\":\"load.goodput_per_s\""));
        assert!(report.json.contains("\"name\":\"load.p999_us\""));
        assert!(report.json.contains("\"violations\":[]"), "monitor stays green under the blip");
        assert!(report.summary.contains("attribution:"));
        assert!(report.summary.contains("open loop"));
    }

    #[test]
    fn f7_metrics_contrast_flood_spike_with_flat_gossip_background() {
        let report = run("F7", true).expect("F7 has a metrics companion");
        assert!(report.json.starts_with("{\"experiment\":\"F7\","));
        assert!(report.json.contains("\"name\":\"gossip.journal_entries.probe\""));
        assert!(report.json.contains("\"name\":\"gossip.repair_hits.probe\""));
        assert!(report.json.contains("\"violations\":[]"), "monitor stays green under churn");
        assert!(report.summary.contains("attribution:"));
        assert!(report.summary.contains("never touches the network"));
    }

    #[test]
    fn unknown_ids_have_no_metrics_companion() {
        assert!(run("T1", true).is_none());
        assert!(run("nope", true).is_none());
    }
}
