//! F3 — Figure 3: *"E2E RTT as cache gets stale due to movement"* — mean
//! access time climbs from 1 towards 2 RTTs; variability peaks mid-sweep.
//!
//! Two ablation arms ride along: NACK-rediscover (staleness found by a
//! 3-leg NACK instead of move-time invalidation) and journal gossip
//! (ISSUE 9: migrations propagate via `rdv-gossip` anti-entropy and
//! stale routes repair from the local journal — the broadcast knee
//! flattens to zero while staying under the NACK arm's latency).

use rdv_discovery::{DiscoveryMode, ScenarioConfig, ScenarioKind, StalenessMode};

use crate::par::par_map;
use crate::report::{f1, Series};

/// Sweep 0–90 % of accesses to moved objects; also report the
/// NACK-rediscover and journal-gossip ablations.
pub fn run(quick: bool) -> Series {
    let accesses = if quick { 100 } else { 400 };
    let mut series = Series::new(
        "F3",
        "E2E access time vs % accesses to moved objects (paper Fig. 3)",
        &[
            "moved%",
            "mean_us",
            "stddev_us",
            "p99_us",
            "bcast/100",
            "nack_mode_mean_us",
            "gossip_mean_us",
            "gossip_bcast/100",
        ],
    );
    // Independent simulations per point: fan out, collect in point order.
    let rows = par_map((0..=90).step_by(10).collect(), |pct_moved| {
        let base = ScenarioConfig {
            kind: ScenarioKind::Fig3Staleness { pct_moved },
            mode: DiscoveryMode::E2E,
            accesses,
            ..Default::default()
        };
        let inv = rdv_discovery::scenario::run_discovery(&ScenarioConfig {
            staleness: StalenessMode::InvalidateOnMove,
            ..base
        });
        let nack = rdv_discovery::scenario::run_discovery(&ScenarioConfig {
            staleness: StalenessMode::NackRediscover,
            ..base
        });
        let gossip = rdv_discovery::scenario::run_discovery(&ScenarioConfig {
            staleness: StalenessMode::InvalidateOnMove,
            gossip: true,
            ..base
        });
        assert_eq!(inv.incomplete, 0);
        assert_eq!(nack.incomplete, 0);
        assert_eq!(gossip.incomplete, 0);
        let mut rtt = inv.rtt;
        vec![
            pct_moved.to_string(),
            f1(rtt.mean() / 1000.0),
            f1(rtt.stddev() / 1000.0),
            f1(rtt.percentile(99.0) as f64 / 1000.0),
            f1(inv.broadcasts_per_100),
            f1(nack.rtt.mean() / 1000.0),
            f1(gossip.rtt.mean() / 1000.0),
            f1(gossip.broadcasts_per_100),
        ]
    });
    for row in rows {
        series.push_row(row);
    }
    series.note("paper shape: mean climbs 1→2 RTT; variability peaks mid-sweep then drops");
    series.note("nack_mode = ablation where staleness is discovered by NACK (3 legs) instead of move-time invalidation");
    series.note(
        "gossip = journal-synchronized discovery (ISSUE 9): migrations ride anti-entropy \
         rounds and stale routes repair from the local journal, so the broadcast knee \
         flattens to zero while the mean stays under the NACK arm",
    );
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let s = run(true);
        let get = |row: usize, col: usize| s.rows[row][col].parse::<f64>().unwrap();
        // Mean roughly doubles over the sweep.
        let ratio = get(9, 1) / get(0, 1);
        assert!((1.5..2.6).contains(&ratio), "mean should go 1→~2 RTT, ratio {ratio}");
        // Variability peaks mid-sweep.
        let mid = get(5, 2);
        assert!(mid > get(0, 2), "stddev should rise from 0%");
        assert!(mid > get(9, 2) * 0.8, "stddev should fall towards 90%");
        // The NACK ablation is at least as expensive everywhere stale.
        for row in 1..10 {
            assert!(get(row, 5) >= get(row, 1) * 0.95, "row {row}");
        }
        // Gossip flattens the broadcast knee to zero at every staleness
        // level, and its repair path stays under the NACK ablation.
        for row in 0..10 {
            assert_eq!(get(row, 7), 0.0, "gossip must never broadcast (row {row})");
        }
        for row in 1..10 {
            assert!(get(row, 6) <= get(row, 5), "journal repair beats NACK rediscovery, row {row}");
        }
    }
}
