//! F5 — sharded engine scaling: events/s and peak RSS vs fabric size at
//! 1/4/8 shards, up to the first 100 k-host topology.
//!
//! ROADMAP item 1: every paper experiment runs tens of nodes, but the
//! fabric arguments only matter at datacenter scale. This figure measures
//! what the spatially-sharded engine (DESIGN.md §9) buys on the
//! [`crate::fabric`] rack-ring storm as the fabric grows from 1 k to
//! 100 k hosts.
//!
//! Two kinds of columns:
//!
//! * **fingerprint** (`events`, `clock_ms`) — pure simulation outputs,
//!   byte-identical for every shard count; every point asserts its
//!   fingerprint equals the 1-shard run before timing anything.
//! * **measurement** (`wall_ms`, `Mev_per_s`, `peak_rss_mb`, `cores`) —
//!   wall-clock observations of this machine, honest but *not*
//!   byte-stable across runs. The committed `results/f5.json` records the
//!   box it ran on via the `cores` column; speedup claims only transfer
//!   to machines with at least that many cores.
//!
//! Peak RSS is `VmHWM` from `/proc/self/status` — a process-wide
//! high-water mark, so the sweep runs fabrics in ascending size to keep
//! each point's reading attributable to its own fabric.

use crate::fabric::{run_fabric, FabricSpec};
use crate::report::{f1, f2, Series};
use rdv_wire::cost::wall_ns;

const SHARD_SWEEP: [usize; 3] = [1, 4, 8];

/// The fabric sizes swept, ascending: (racks, hosts_per_rack).
const FABRICS: [(usize, usize); 3] = [(16, 64), (32, 320), (256, 400)];

fn spec(racks: usize, hosts_per_rack: usize, quick: bool) -> FabricSpec {
    FabricSpec {
        racks,
        hosts_per_rack,
        burst: 2,
        bounces: if quick { 4 } else { 16 },
        ring_packets: if quick { 8 } else { 32 },
        // One full lap of the trunk ring, so relays visit every shard.
        ring_hops: racks as u64,
    }
}

/// `VmHWM` (peak resident set) in MiB, or 0.0 where `/proc` is absent.
fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0.0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            if let Some(kb) = rest.split_whitespace().next().and_then(|v| v.parse::<f64>().ok()) {
                return kb / 1024.0;
            }
        }
    }
    0.0
}

/// Run the scaling sweep. Quick mode shrinks the per-node traffic budget
/// (the CI scale-smoke's "bounded event budget") but keeps the full
/// 100 k-host point — instantiating that fabric *is* the experiment.
pub fn run(quick: bool) -> Series {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut series = Series::new(
        "F5",
        "sharded engine scaling: events/s and peak RSS vs fabric size (ROADMAP item 1)",
        &[
            "hosts",
            "racks",
            "shards",
            "events",
            "clock_ms",
            "wall_ms",
            "Mev_per_s",
            "peak_rss_mb",
            "cores",
        ],
    );
    for (racks, hosts_per_rack) in FABRICS {
        let spec = spec(racks, hosts_per_rack, quick);
        let flat = run_fabric(&spec, 42, 1);
        for shards in SHARD_SWEEP {
            // Fingerprint before timing: the speedup is only meaningful if
            // the parallel run does byte-identical work.
            assert_eq!(run_fabric(&spec, 42, shards), flat, "shards={shards} diverged from flat");
            let ((events, clock_ns), wall) = wall_ns(|| run_fabric(&spec, 42, shards));
            series.push_row(vec![
                spec.hosts().to_string(),
                racks.to_string(),
                shards.to_string(),
                events.to_string(),
                f1(clock_ns as f64 / 1e6),
                f1(wall as f64 / 1e6),
                f2(events as f64 * 1e3 / wall.max(1) as f64),
                f1(peak_rss_mb()),
                cores.to_string(),
            ]);
        }
    }
    series.note(
        "events and clock_ms are simulation outputs, byte-identical for every shard count \
         (asserted before each timed run); wall_ms, Mev_per_s, and peak_rss_mb are wall-clock \
         measurements of this box and are not byte-stable",
    );
    series.note(format!(
        "ran on {cores} core(s); the >=4x 8-shard target assumes >=8 cores — on fewer cores \
         the extra shards measure scheduling overhead instead (see EXPERIMENTS.md)"
    ));
    if quick {
        series.note("quick mode: per-node traffic budget bounded for CI; fabric sizes unchanged");
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallest_fabric_point_is_shard_invariant_and_reports_sanely() {
        // Keep the module test tiny: one sub-1k fabric, not the full sweep.
        let spec = spec(4, 8, true);
        let flat = run_fabric(&spec, 42, 1);
        assert!(flat.0 > 0);
        for shards in SHARD_SWEEP {
            assert_eq!(run_fabric(&spec, 42, shards), flat);
        }
    }

    #[test]
    fn rss_probe_reads_proc_when_present() {
        let mb = peak_rss_mb();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(mb > 0.0, "VmHWM must parse on Linux");
        }
    }
}
