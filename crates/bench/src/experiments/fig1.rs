//! F1 — Figure 1: the three rendezvous strategies (plus the Wang et al.
//! reference-RPC halfway design), swept over model sizes, and the §5
//! "Dave" adaptivity case.

use rdv_core::scenarios::{run_fig1, run_fig1_dave, F1Config, F1Strategy};
use rdv_wire::sparsemodel::SparseModelSpec;

use crate::par::par_map;
use crate::report::{f2, Series};

fn spec_for(rows: usize) -> SparseModelSpec {
    SparseModelSpec { layers: 2, rows, cols: rows, nnz_per_row: 16, vocab: 64, seed: 11 }
}

/// Sweep model sizes × strategies; report latency and bytes over the
/// invoker's (slow) access link.
pub fn run(quick: bool) -> Series {
    let sizes: &[usize] = if quick { &[256, 1024] } else { &[256, 1024, 4096] };
    let mut series = Series::new(
        "F1",
        "rendezvous of data and compute (paper Fig. 1 strategies)",
        &["model_rows", "strategy", "latency_ms", "alice_link_KB", "fabric_KB", "executor"],
    );
    // size × strategy grid: every cell is an independent simulation.
    let grid: Vec<(usize, F1Strategy)> = sizes
        .iter()
        .flat_map(|&rows| F1Strategy::ALL.into_iter().map(move |s| (rows, s)))
        .collect();
    let grid_rows = par_map(grid, |(rows, strategy)| {
        let out = run_fig1(&F1Config { strategy, model: spec_for(rows), seed: 3 });
        vec![
            rows.to_string(),
            strategy.label().to_string(),
            f2(out.latency.as_nanos() as f64 / 1e6),
            f2(out.alice_bytes as f64 / 1024.0),
            f2(out.fabric_bytes as f64 / 1024.0),
            out.executor.to_string(),
        ]
    });
    for row in grid_rows {
        series.push_row(row);
    }
    // The Dave case: strong edge device with local data.
    let mut dave = par_map(vec![false, true], |auto| run_fig1_dave(auto, &spec_for(1024), 3));
    let auto = dave.pop().expect("two dave runs");
    let fixed = dave.pop().expect("two dave runs");
    series.push_row(vec![
        "1024(dave)".into(),
        "ref-rpc-fixed".into(),
        f2(fixed.latency.as_nanos() as f64 / 1e6),
        f2(fixed.alice_bytes as f64 / 1024.0),
        f2(fixed.fabric_bytes as f64 / 1024.0),
        fixed.executor.to_string(),
    ]);
    series.push_row(vec![
        "1024(dave)".into(),
        "automatic".into(),
        f2(auto.latency.as_nanos() as f64 / 1e6),
        f2(auto.alice_bytes as f64 / 1024.0),
        f2(auto.fabric_bytes as f64 / 1024.0),
        auto.executor.to_string(),
    ]);
    series.note("paper shape: (1) manual-copy pays the slow access link twice; (2)/(3) move data Bob→Carol directly; (3) needs no app-level orchestration and adapts (Dave rows)");
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_ordering_holds_at_every_size() {
        let s = run(true);
        // Rows come in blocks of 4 per size.
        for block in 0..2 {
            let base = block * 4;
            let lat = |i: usize| s.rows[base + i][2].parse::<f64>().unwrap();
            let alice_kb = |i: usize| s.rows[base + i][3].parse::<f64>().unwrap();
            // manual-copy strictly worst.
            assert!(lat(0) > lat(1), "copy {} vs pull {}", lat(0), lat(1));
            assert!(alice_kb(0) > 5.0 * alice_kb(1));
            // automatic tracks manual-pull.
            let ratio = lat(3) / lat(1);
            assert!((0.8..1.3).contains(&ratio), "auto/pull ratio {ratio}");
        }
        // Dave: automatic executes locally, fixed cannot.
        let dave_fixed = &s.rows[s.rows.len() - 2];
        let dave_auto = &s.rows[s.rows.len() - 1];
        assert_eq!(dave_fixed[5], "carol");
        assert_eq!(dave_auto[5], "dave");
    }
}
