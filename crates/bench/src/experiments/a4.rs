//! A4 — §5's weak-consistency extension: *"auto-merging progressive
//! objects like CRDTs during data movement."*
//!
//! Replicas of a counter and a set diverge under concurrent updates on
//! three hosts, then rendezvous pairwise (object images move and absorb);
//! the table reports rounds-to-convergence and bytes moved.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rdv_crdt::{GCounter, OrSet, ProgressiveObject};
use rdv_objspace::ObjId;

use crate::par::par_map;
use crate::report::Series;

/// Simulate `replicas` sites applying `ops_per_round` local ops per round,
/// with a ring exchange (each site absorbs its left neighbour's image)
/// after each round. Returns `(rounds_run, bytes_moved, converged)`.
#[allow(clippy::needless_range_loop)] // ring exchange indexes (i, i-1) pairs
fn counter_epidemic(
    replicas: usize,
    rounds: usize,
    ops_per_round: usize,
    seed: u64,
) -> (u64, bool, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sites: Vec<ProgressiveObject<GCounter>> = (0..replicas)
        .map(|_| ProgressiveObject::create(ObjId(0xCC), &GCounter::new()).expect("create"))
        .collect();
    let mut bytes = 0u64;
    let mut expected = 0u64;
    for _ in 0..rounds {
        for (r, site) in sites.iter_mut().enumerate() {
            let n = rng.gen_range(1..=ops_per_round as u64);
            expected += n;
            site.update(|c| c.add(r as u64, n)).expect("update");
        }
        // Ring exchange: site i absorbs site (i-1)'s image.
        let images: Vec<Vec<u8>> = sites.iter().map(|s| s.object().to_image()).collect();
        for i in 0..replicas {
            let from = (i + replicas - 1) % replicas;
            bytes += images[from].len() as u64;
            sites[i].absorb(&images[from]).expect("absorb");
        }
    }
    // Final full exchange until quiescent (≤ replicas rounds on a ring).
    for _ in 0..replicas {
        let images: Vec<Vec<u8>> = sites.iter().map(|s| s.object().to_image()).collect();
        for i in 0..replicas {
            let from = (i + replicas - 1) % replicas;
            bytes += images[from].len() as u64;
            sites[i].absorb(&images[from]).expect("absorb");
        }
    }
    let values: Vec<u64> = sites.iter().map(|s| s.read_state().expect("state").value()).collect();
    let converged = values.iter().all(|&v| v == expected);
    (expected, converged, bytes)
}

/// Same epidemic for an OR-Set with concurrent adds/removes.
#[allow(clippy::needless_range_loop)] // ring exchange indexes (i, i-1) pairs
fn orset_epidemic(replicas: usize, rounds: usize, seed: u64) -> (bool, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sites: Vec<ProgressiveObject<OrSet<u64>>> = (0..replicas)
        .map(|_| ProgressiveObject::create(ObjId(0x55), &OrSet::new()).expect("create"))
        .collect();
    for _ in 0..rounds {
        for (r, site) in sites.iter_mut().enumerate() {
            let v = rng.gen_range(0..32u64);
            if rng.gen_bool(0.7) {
                site.update(|s| s.add(r as u64, v)).expect("update");
            } else {
                site.update(|s| s.remove(&v)).expect("update");
            }
        }
        let images: Vec<Vec<u8>> = sites.iter().map(|s| s.object().to_image()).collect();
        for i in 0..replicas {
            let from = (i + replicas - 1) % replicas;
            sites[i].absorb(&images[from]).expect("absorb");
        }
    }
    for _ in 0..replicas {
        let images: Vec<Vec<u8>> = sites.iter().map(|s| s.object().to_image()).collect();
        for i in 0..replicas {
            let from = (i + replicas - 1) % replicas;
            sites[i].absorb(&images[from]).expect("absorb");
        }
    }
    let states: Vec<Vec<u64>> = sites
        .iter()
        .map(|s| s.read_state().expect("state").elements().into_iter().copied().collect())
        .collect();
    let converged = states.windows(2).all(|w| w[0] == w[1]);
    (converged, states[0].len())
}

/// Run the convergence table.
pub fn run(quick: bool) -> Series {
    let rounds = if quick { 5 } else { 20 };
    let mut series = Series::new(
        "A4",
        "CRDT auto-merge during movement (paper §5)",
        &["type", "replicas", "rounds", "converged", "detail"],
    );
    // Each replica count runs both epidemics from fixed seeds — independent
    // points, fanned out; the two rows per point stay adjacent and ordered.
    let row_pairs = par_map(vec![2usize, 3, 5], |replicas| {
        let (expected, converged, bytes) = counter_epidemic(replicas, rounds, 10, 31);
        let counter_row = vec![
            "g-counter".into(),
            replicas.to_string(),
            rounds.to_string(),
            converged.to_string(),
            format!("value={expected}, moved {bytes} B"),
        ];
        let (converged, len) = orset_epidemic(replicas, rounds, 32);
        let orset_row = vec![
            "or-set".into(),
            replicas.to_string(),
            rounds.to_string(),
            converged.to_string(),
            format!("{len} live elements"),
        ];
        [counter_row, orset_row]
    });
    for [counter_row, orset_row] in row_pairs {
        series.push_row(counter_row);
        series.push_row(orset_row);
    }
    series.note("replicas of the same object diverge under concurrent updates and converge to identical state purely by absorbing images at rendezvous — no coordination messages");
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_converges() {
        let s = run(true);
        for row in &s.rows {
            assert_eq!(row[3], "true", "{row:?}");
        }
    }

    #[test]
    fn counter_value_is_exact_sum() {
        let (expected, converged, _) = counter_epidemic(4, 6, 5, 9);
        assert!(converged);
        assert!(expected > 0);
    }
}
