//! One module per paper artifact. Each exposes `run(quick: bool) -> Series`
//! (quick mode shrinks sweep sizes for CI; full mode matches the paper's
//! parameters where stated).

pub mod a1;
pub mod a2;
pub mod a3;
pub mod a4;
pub mod a5;
pub mod f4;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod s1;
pub mod t1;
pub mod t2;

use crate::report::Series;

/// Run every experiment in DESIGN.md order.
pub fn run_all(quick: bool) -> Vec<Series> {
    vec![
        fig1::run(quick),
        fig2::run(quick),
        fig3::run(quick),
        f4::run(quick),
        t1::run(quick),
        t2::run(quick),
        s1::run(quick),
        a1::run(quick),
        a2::run(quick),
        a3::run(quick),
        a4::run(quick),
        a5::run(quick),
    ]
}
