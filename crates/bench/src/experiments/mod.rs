//! One module per paper artifact. Each exposes `run(quick: bool) -> Series`
//! (quick mode shrinks sweep sizes for CI; full mode matches the paper's
//! parameters where stated).

pub mod a1;
pub mod a2;
pub mod a3;
pub mod a4;
pub mod a5;
pub mod f4;
pub mod f5;
pub mod f6;
pub mod f7;
pub mod f8;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod metrics;
pub mod s1;
pub mod t1;
pub mod t2;
pub mod trace;

use crate::report::Series;

/// Every experiment ID with its one-line description, in run order (the
/// same descriptions each `run()` stamps on its [`Series`]).
pub const CATALOG: &[(&str, &str)] = &[
    ("F1", "rendezvous of data and compute (paper Fig. 1 strategies)"),
    ("F2", "discovery RTT vs % accesses to new objects (paper Fig. 2)"),
    ("F3", "E2E access time vs % accesses to moved objects (paper Fig. 3)"),
    ("F4", "goodput and rendezvous completion vs fault severity (paper §3.2)"),
    ("F5", "sharded engine scaling: events/s and peak RSS vs fabric size (ROADMAP item 1)"),
    ("F6", "million-user open-loop blip: goodput dip and recovery, rendezvous vs RPC (ISSUE 7)"),
    ("F7", "discovery churn at fabric scale: flood rediscovery vs journal gossip (ISSUE 9)"),
    ("F8", "p999 tail attribution through the blip from deterministic sampled traces (ISSUE 10)"),
    ("T1", "switch exact-match capacity vs ID width (paper §3.2)"),
    ("T2", "pointer encoding cost: FOT (64-bit) vs direct 128-bit pointers (paper §3.1)"),
    ("S1", "request-time (de)serialization and loading (paper §2 '70%')"),
    ("A1", "prefetching on reachability vs adjacency (paper §3.1)"),
    ("A2", "middleware indirection cost (paper §1)"),
    ("A3", "hierarchical ID overlay vs flat exact routing under SRAM pressure (paper §3.2)"),
    ("A4", "CRDT auto-merge during movement (paper §5)"),
    ("A5", "coherence write cost vs sharer count (paper §5)"),
];

/// Run every experiment in DESIGN.md order.
pub fn run_all(quick: bool) -> Vec<Series> {
    vec![
        fig1::run(quick),
        fig2::run(quick),
        fig3::run(quick),
        f4::run(quick),
        f5::run(quick),
        f6::run(quick),
        f7::run(quick),
        f8::run(quick),
        t1::run(quick),
        t2::run(quick),
        s1::run(quick),
        a1::run(quick),
        a2::run(quick),
        a3::run(quick),
        a4::run(quick),
        a5::run(quick),
    ]
}
