//! T1 — §3.2's capacity claim: *"With 64-bit ID fields, we could store
//! ∼1.8M exact entries and with 128-bit IDs, we could fit ∼850K."*
//!
//! Reproduced two ways: analytically from the SRAM model, and empirically
//! by filling a real table until the driver rejects the insert.

use rdv_p4rt::capacity::SramBudget;
use rdv_p4rt::table::{Action, MatchKind, Table, TableEntry};

use crate::report::{f2, Series};

/// Empirically fill a table with `key_bits`-wide keys until rejection.
pub fn fill_to_rejection(budget: SramBudget, key_bits: u64) -> u64 {
    let mut table = Table::new("fill", vec![1], MatchKind::Exact, key_bits, budget);
    let mut n = 0u64;
    loop {
        match table.insert(TableEntry::Exact { key: vec![u128::from(n) + 1] }, Action::Drop) {
            Ok(()) => n += 1,
            Err(_) => return n,
        }
    }
}

/// Capacity vs key width, model and (for a scaled budget) empirical fill.
pub fn run(quick: bool) -> Series {
    let mut series = Series::new(
        "T1",
        "switch exact-match capacity vs ID width (paper §3.2)",
        &["key_bits", "model_entries", "fill_entries(scaled)", "vs_paper"],
    );
    let tofino = SramBudget::tofino();
    // Empirical fill uses a 1/100 budget so the test stays fast; the model
    // is exactly linear in budget, so the scaled fill cross-checks it.
    let scale = if quick { 1000 } else { 100 };
    let scaled = SramBudget { total_bits: tofino.total_bits / scale, ..tofino };
    for (bits, paper) in [(32u64, None), (64, Some(1_800_000u64)), (128, Some(850_000))] {
        let model = tofino.max_entries(bits);
        let fill = fill_to_rejection(scaled, bits) * scale;
        let vs_paper = match paper {
            Some(p) => {
                format!("paper ~{}K ({:+.1}%)", p / 1000, (model as f64 / p as f64 - 1.0) * 100.0)
            }
            None => "-".to_string(),
        };
        series.push_row(vec![bits.to_string(), model.to_string(), fill.to_string(), vs_paper]);
    }
    let ratio = tofino.max_entries(64) as f64 / tofino.max_entries(128) as f64;
    series.note(format!("64-bit/128-bit ratio: {} (paper: ~2.1×)", f2(ratio)));
    series.note(
        "residual +5.9% at 128-bit vs the paper's ~850K: unmodeled Tofino per-entry metadata",
    );
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_and_fill_agree() {
        let budget = SramBudget { total_bits: 1_280_000, ..SramBudget::tofino() };
        for bits in [32u64, 64, 128] {
            assert_eq!(fill_to_rejection(budget, bits), budget.max_entries(bits), "{bits}");
        }
    }

    #[test]
    fn headline_numbers() {
        let s = run(true);
        assert_eq!(s.rows[1][1], "1800000");
        assert_eq!(s.rows[2][1], "900000");
    }
}
