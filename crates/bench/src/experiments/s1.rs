//! S1 — §2: *"As much as 70% of the processing time for these
//! model-serving applications is spent deserializing and loading the sparse
//! personalized models"*; §3.1: invariant pointers *"alleviat\[e\] 100% of
//! the loading overhead"*.
//!
//! Three request paths over the same fabric: RPC with the model serialized
//! into the request, RPC with the model stored serialized at the server
//! (TrIMS scenario), and the global-address-space object path.

use rdv_core::scenarios::{run_s1, S1Path};
use rdv_wire::sparsemodel::SparseModelSpec;

use crate::par::par_map;
use crate::report::{f2, pct, Series};

fn spec_for(rows: usize) -> SparseModelSpec {
    SparseModelSpec { layers: 4, rows, cols: rows, nnz_per_row: 8, vocab: rows, seed: 21 }
}

/// Sweep model sizes × paths.
pub fn run(quick: bool) -> Series {
    let sizes: &[usize] = if quick { &[128, 512] } else { &[128, 512, 2048] };
    let mut series = Series::new(
        "S1",
        "request-time (de)serialization and loading (paper §2 '70%')",
        &["model_rows", "path", "latency_ms", "deser+load_us", "compute_us", "deser+load_frac"],
    );
    // size × path grid: independent fabric runs, fanned out.
    let paths = [
        (S1Path::RpcValue, "rpc-by-value"),
        (S1Path::RpcName, "rpc-stored-model"),
        (S1Path::Gas, "object-space"),
    ];
    let grid: Vec<(usize, (S1Path, &str))> =
        sizes.iter().flat_map(|&rows| paths.into_iter().map(move |p| (rows, p))).collect();
    let rows = par_map(grid, |(rows, (path, label))| {
        let out = run_s1(path, &spec_for(rows), 7);
        vec![
            rows.to_string(),
            label.to_string(),
            f2(out.latency.as_nanos() as f64 / 1e6),
            f2((out.deser_ns + out.load_ns) as f64 / 1e3),
            f2(out.compute_ns as f64 / 1e3),
            pct(out.deser_load_fraction),
        ]
    });
    for row in rows {
        series.push_row(row);
    }
    series.note("paper shape: RPC paths spend the majority (≥70% at scale) of processing in deserialize+load; the object path spends none");
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_match_claims() {
        let s = run(true);
        // Largest model, rpc-stored-model row.
        let stored = &s.rows[4];
        assert_eq!(stored[1], "rpc-stored-model");
        let frac: f64 = stored[5].trim_end_matches('%').parse().unwrap();
        assert!(frac >= 60.0, "deser+load fraction {frac}% should be ≥60% at scale");
        // Object-space rows report exactly zero.
        for row in &s.rows {
            if row[1] == "object-space" {
                assert_eq!(row[5], "0.0%");
                assert_eq!(row[3], "0.00");
            }
        }
        // Object path is faster end-to-end than both RPC paths at scale.
        let lat = |i: usize| s.rows[i][2].parse::<f64>().unwrap();
        assert!(lat(5) < lat(3) && lat(5) < lat(4));
    }
}
