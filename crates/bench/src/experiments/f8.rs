//! F8 — p999 tail attribution at scale: where the blip's tail latency
//! lives, decomposed from deterministic sampled traces (ISSUE 10).
//!
//! The F6 blip workload (same schedule, same fault window, same patience
//! budget) runs on fabrics grown to 1 k / 10 k / 100 k hosts: the extra
//! hosts hold no log heads but run a real background anti-entropy plane
//! (journal gossip in rack-sized regions), so the switch routes — and the
//! tracer samples — a fabric of paper scale, not a seven-node testbed.
//! Every completed `load.batch` span is kept by the deterministic sampler
//! (verdicts are pure in the op's origin stamp, never ring occupancy);
//! `gossip.round` chains are kept at a per-scale rate that pins the
//! background sample count, so the recorded bytes are identical across
//! `--shards`, `--jobs`, and processes — asserted in-run by replaying
//! every scale at shards 1/2/8 and comparing full fingerprints.
//!
//! Each batch's critical path is then joined to its fault window (issued
//! before / during / after the blip) and its quantile cohort (typical half, top
//! 1 %, top 0.1 %), and decomposed two ways: mechanically into
//! host/queue/link/timer-wait, and by protocol layer — discovery
//! (watchdog + retry machinery), gossip (anti-entropy), memproto (holder
//! serve + reply), replog (batch issue and transport). The p999 rows are
//! the figure: a healthy-window batch is link + memproto; a blip-window
//! p999 batch is almost entirely timer-wait charged to the discovery
//! layer — the watchdog patience that buys F6's recovery.

use rdv_discovery::host::tags;
use rdv_load::{nearest_rank, LoadRun};
use rdv_netsim::trace::critical::{CriticalPath, CATEGORIES};
use rdv_netsim::trace::{EventKind, SampleSpec, Tracer};
use rdv_netsim::SimTime;

use super::f6;
use crate::report::Series;

/// Protocol layers a path segment can be charged to, in column order.
pub const LAYERS: [&str; 4] = ["discovery", "gossip", "memproto", "replog"];

/// `(total hosts, gossip period µs, gossip.round keep-permille)` per scale
/// row. The period relaxes and the sampling rate tightens as the fabric
/// grows, pinning both per-host background bandwidth and the sampled
/// round count (~500) at every scale.
const SCALES: [(usize, u64, u16); 3] = [(1_024, 40, 20), (10_240, 80, 4), (102_400, 200, 1)];

/// Shard counts every scale is replayed at; the fingerprints must match.
const SHARD_SWEEP: [usize; 3] = [1, 2, 8];

/// Completion windows relative to the blip, in row order.
const WINDOWS: [&str; 3] = ["pre", "blip", "post"];

/// Quantile rows per window: `(label, nearest-rank permille)`.
const QUANTILES: [(&str, u64); 3] = [("p50", 500), ("p99", 990), ("p999", 999)];

fn layer_idx(layer: &str) -> usize {
    LAYERS.iter().position(|&l| l == layer).expect("known layer")
}

/// The protocol layer a chain event pins the path to, if it pins one:
/// timer tags identify the machinery that armed them, span/mark labels
/// identify the plane that emitted them. Packet legs carry no layer of
/// their own — they inherit the last pinned layer (see [`layer_split`]).
fn layer_hint(kind: EventKind) -> Option<&'static str> {
    match kind {
        EventKind::TimerSet { tag }
        | EventKind::TimerFire { tag }
        | EventKind::TimerDrop { tag } => {
            if tag & tags::DEFER != 0 {
                Some("memproto")
            } else if tag & (tags::ACCESS_TIMEOUT | tags::RETRY) != 0 {
                Some("discovery")
            } else if tag & tags::GOSSIP != 0 {
                Some("gossip")
            } else {
                None
            }
        }
        _ => match kind.label() {
            Some(l) if l.starts_with("gossip.") => Some("gossip"),
            Some(l) if l.starts_with("discovery.") => Some("discovery"),
            Some(l) if l.starts_with("memproto.") => Some("memproto"),
            Some(l) if l.starts_with("load.") => Some("replog"),
            _ => None,
        },
    }
}

/// Charge every segment of `path` to a protocol layer: a segment takes
/// the layer its ending event pins (a watchdog fire is discovery time, a
/// defer fire is memproto serve time), and unpinned segments — packet
/// legs, host dispatch — inherit the most recent pin, starting from
/// `default_layer` (replog for batch paths).
fn layer_split(tracer: &Tracer, path: &CriticalPath, default_layer: &'static str) -> [u64; 4] {
    let mut out = [0u64; 4];
    let mut cur = default_layer;
    for seg in &path.segments {
        if let Some(h) = tracer.get(seg.to).map(|e| layer_hint(e.kind)).unwrap_or(None) {
            cur = h;
        }
        out[layer_idx(cur)] += seg.ns;
    }
    out
}

/// One extracted batch path: completion time, recorded latency, and its
/// category/layer decompositions.
struct BatchPath {
    completed_ns: u64,
    latency_ns: u64,
    by_category: [u64; 4],
    by_layer: [u64; 4],
}

/// FNV-1a over the full recorded event stream — the byte-identity
/// fingerprint the shard sweep compares.
fn trace_fingerprint(tracer: &Tracer) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for (id, ev) in tracer.iter() {
        mix(&id.0.to_le_bytes());
        mix(&ev.at.to_le_bytes());
        mix(&ev.node.to_le_bytes());
        mix(ev.kind.name().as_bytes());
        mix(ev.kind.label().unwrap_or("").as_bytes());
        mix(&ev.cause.map(|c| c.0 + 1).unwrap_or(0).to_le_bytes());
        mix(&ev.aux.map(|a| a.0 + 1).unwrap_or(0).to_le_bytes());
    }
    h
}

fn sample_spec(gossip_permille: u16, seed: u64) -> SampleSpec {
    SampleSpec {
        seed: seed ^ 0xF8,
        default_permille: 0,
        classes: vec![("load.batch", 1000), ("gossip.round", gossip_permille)],
    }
}

/// Run one scale point at one shard count and distill everything the
/// rows need (plus the fingerprint the sweep compares).
struct ScaleRun {
    fingerprint: String,
    completions: Vec<(u64, u64)>,
    paths: Vec<BatchPath>,
    /// `(end_ns, rtt_ns)` of completed background `gossip.sync` spans
    /// (digest send → delta landing) on sampled round chains.
    bg_syncs: Vec<(u64, u64)>,
}

fn run_scale(hosts: usize, period_us: u64, gossip_permille: u16, shards: usize) -> ScaleRun {
    let replog = f6::replog_spec();
    let mut fabric = f6::fabric_spec();
    fabric.shards = shards;
    fabric.bystanders = hosts - replog.writers as usize - fabric.holders;
    fabric.gossip_period = Some(SimTime::from_micros(period_us));
    let seed = 0xF8 + hosts as u64;
    let spec = sample_spec(gossip_permille, seed);
    let run = LoadRun::execute_traced(
        &fabric,
        &f6::open_spec(1000),
        &replog,
        Some(&f6::blip()),
        seed,
        &spec,
    );
    let tracer = run.tracer.as_ref().expect("traced run");

    let mut fingerprint = run.fingerprint();
    fingerprint.push_str(&format!(
        "trace_count={};trace_fnv={:016x};",
        tracer.count(),
        trace_fingerprint(tracer)
    ));

    let paths = run
        .traced_batches
        .iter()
        .map(|&(completed_ns, latency_ns, end)| {
            let path = CriticalPath::from_span(tracer, end);
            let mut by_category = [0u64; 4];
            for (i, cat) in CATEGORIES.iter().enumerate() {
                by_category[i] = path.category_ns(cat);
            }
            let by_layer = layer_split(tracer, &path, "replog");
            BatchPath { completed_ns, latency_ns, by_category, by_layer }
        })
        .collect();

    let mut bg_syncs = Vec::new();
    for (id, ev) in tracer.iter() {
        if matches!(ev.kind, EventKind::SpanEnd { name: "gossip.sync" }) {
            bg_syncs.push((ev.at, CriticalPath::from_span(tracer, id).total_ns));
        }
    }

    ScaleRun { fingerprint, completions: run.completions.clone(), paths, bg_syncs }
}

/// Integer percentages of `parts` against their own sum (all zeros when
/// the sum is zero).
fn pct(parts: [u64; 4]) -> [u64; 4] {
    let total: u64 = parts.iter().sum();
    let mut out = [0u64; 4];
    for (o, p) in out.iter_mut().zip(parts) {
        *o = (p * 100).checked_div(total).unwrap_or(0);
    }
    out
}

/// Which fault window an operation belongs to, classified by its *start*
/// time: a batch issued into the blip is the one that suffers it, even
/// though the watchdog patience it then pays means it completes well
/// after the fault clears. (Completion-time windows would file the whole
/// recovery tail under "post" and show the blip window as fast — only
/// the unaffected batches manage to complete inside it.)
fn window_of(start_ns: u64) -> &'static str {
    let blip_end = f6::BLIP_AT.as_nanos() + f6::BLIP_DUR.as_nanos();
    if start_ns < f6::BLIP_AT.as_nanos() {
        "pre"
    } else if start_ns < blip_end {
        "blip"
    } else {
        "post"
    }
}

fn push_scale_rows(series: &mut Series, hosts: usize, run: &ScaleRun) {
    for window in WINDOWS {
        let mut lats: Vec<u64> = run
            .completions
            .iter()
            .filter(|&&(done, lat)| window_of(done.saturating_sub(lat)) == window)
            .map(|&(_, lat)| lat)
            .collect();
        lats.sort_unstable();
        let in_window: Vec<&BatchPath> = run
            .paths
            .iter()
            .filter(|p| window_of(p.completed_ns.saturating_sub(p.latency_ns)) == window)
            .collect();
        let syncs: Vec<u64> = run
            .bg_syncs
            .iter()
            .filter(|&&(at, rtt)| window_of(at.saturating_sub(rtt)) == window)
            .map(|&(_, rtt)| rtt)
            .collect();
        let bg_sync_ns = syncs.iter().sum::<u64>().checked_div(syncs.len() as u64).unwrap_or(0);
        for (label, permille) in QUANTILES {
            let q = nearest_rank(&lats, permille);
            // Cohort: the typical half for p50, the tail at or past the
            // quantile for p99/p999.
            let cohort: Vec<&&BatchPath> = in_window
                .iter()
                .filter(|p| if label == "p50" { p.latency_ns <= q } else { p.latency_ns >= q })
                .collect();
            let mut by_cat = [0u64; 4];
            let mut by_layer = [0u64; 4];
            for p in &cohort {
                for i in 0..4 {
                    by_cat[i] += p.by_category[i];
                    by_layer[i] += p.by_layer[i];
                }
            }
            let cat_pct = pct(by_cat);
            let layer_pct = pct(by_layer);
            let mut row = vec![
                hosts.to_string(),
                window.to_string(),
                label.to_string(),
                lats.len().to_string(),
                (q / 1000).to_string(),
                cohort.len().to_string(),
            ];
            row.extend(cat_pct.iter().map(u64::to_string));
            row.extend(layer_pct.iter().map(u64::to_string));
            row.push(syncs.len().to_string());
            row.push(bg_sync_ns.to_string());
            series.push_row(row);
        }
    }
}

/// Sweep the scales; every scale replayed at shards 1/2/8 and required
/// byte-identical before its rows are emitted.
pub fn run(quick: bool) -> Series {
    let scales: &[(usize, u64, u16)] = if quick { &SCALES[..1] } else { &SCALES };
    sweep(scales, &SHARD_SWEEP)
}

/// The sweep body, parameterized so the unit tests can drive a
/// debug-friendly scale through the identical pipeline.
fn sweep(scales: &[(usize, u64, u16)], shard_sweep: &[usize]) -> Series {
    let mut series = Series::new(
        "F8",
        "p999 tail attribution: critical-path time by category and protocol layer through the \
         blip, from deterministic sampled traces at 1k-100k hosts (ISSUE 10)",
        &[
            "hosts",
            "window",
            "quantile",
            "batches",
            "lat_us",
            "paths",
            "host_pct",
            "queue_pct",
            "link_pct",
            "timer_wait_pct",
            "discovery_pct",
            "gossip_pct",
            "memproto_pct",
            "replog_pct",
            "bg_syncs",
            "bg_sync_ns",
        ],
    );
    for &(hosts, period_us, gossip_permille) in scales {
        let mut first: Option<ScaleRun> = None;
        for &shards in shard_sweep {
            let run = run_scale(hosts, period_us, gossip_permille, shards);
            match &first {
                None => first = Some(run),
                Some(f) => assert_eq!(
                    f.fingerprint, run.fingerprint,
                    "{hosts}-host row must be byte-identical at every shard count \
                     (sampled tracing included)"
                ),
            }
        }
        push_scale_rows(&mut series, hosts, &first.expect("at least one shard run"));
    }
    series.note(
        "F6 blip workload on fabrics grown with background-gossip bystanders; every load.batch \
         span sampled, gossip.round chains sampled at a per-scale rate; each scale replayed at \
         shards 1/2/8 and asserted byte-identical (run fingerprint + FNV over the recorded \
         event stream). windows classify by issue time: a batch issued into the blip owns its \
         recovery tail even though it completes after the fault clears. cohorts: p50 = typical \
         half (lat <= q50), p99/p999 = tail at or past the quantile. pct columns split cohort \
         critical-path ns mechanically \
         (host/queue/link/timer-wait) and by protocol layer (discovery = watchdog/retry, \
         gossip = anti-entropy, memproto = serve+reply, replog = batch issue/transport); \
         bg_sync columns: sampled digest->delta round trips ending in the window",
    );
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One shared tiny-scale sweep — 64 hosts, dense gossip sampling,
    /// shards 1/2 — driving the identical pipeline (sampled traces →
    /// critical paths → attribution rows) at a debug-friendly size. The
    /// real 1k/10k/100k sweep runs in release through `figures F8` (CI's
    /// tail-attribution smoke) and asserts its own shard byte-identity.
    fn tiny() -> &'static Series {
        static TINY: OnceLock<Series> = OnceLock::new();
        TINY.get_or_init(|| sweep(&[(64, 40, 200)], &[1, 2]))
    }

    #[test]
    fn rows_cover_every_window_and_quantile() {
        let rows = &tiny().rows;
        assert_eq!(rows.len(), 9, "1 scale x 3 windows x 3 quantiles");
        for (wi, window) in WINDOWS.iter().enumerate() {
            for (qi, (label, _)) in QUANTILES.iter().enumerate() {
                let row = &rows[wi * 3 + qi];
                assert_eq!(row[0], "64");
                assert_eq!(row[1], *window);
                assert_eq!(row[2], *label);
            }
        }
    }

    #[test]
    fn blip_tail_is_timer_wait_charged_to_discovery() {
        let rows = &tiny().rows;
        let row = rows.iter().find(|r| r[1] == "blip" && r[2] == "p999").expect("blip p999 row");
        let lat_us: u64 = row[4].parse().unwrap();
        let timer_wait_pct: u64 = row[9].parse().unwrap();
        let discovery_pct: u64 = row[10].parse().unwrap();
        assert!(lat_us >= 200, "a p999 blip batch waits at least one watchdog window");
        assert!(timer_wait_pct >= 50, "the blip tail is dominated by deliberate waits");
        assert!(discovery_pct >= 50, "those waits belong to the discovery watchdog");
        // And the healthy window's typical batch is nothing like that.
        let pre = rows.iter().find(|r| r[1] == "pre" && r[2] == "p50").expect("pre p50 row");
        let pre_discovery: u64 = pre[10].parse().unwrap();
        assert!(pre_discovery < 50, "healthy typical paths are not discovery-bound");
    }

    #[test]
    fn background_plane_is_sampled_and_layers_partition() {
        let rows = &tiny().rows;
        let bg_total: u64 = rows.iter().step_by(3).map(|r| r[14].parse::<u64>().unwrap()).sum();
        assert!(bg_total > 0, "sampled gossip.sync round trips must appear");
        for row in rows {
            let cats: u64 = (6..10).map(|i| row[i].parse::<u64>().unwrap()).sum();
            let layers: u64 = (10..14).map(|i| row[i].parse::<u64>().unwrap()).sum();
            // Integer truncation loses at most 3 points across 4 shares.
            assert!(cats == 0 || (97..=100).contains(&cats), "categories partition: {cats}");
            assert!(layers == 0 || (97..=100).contains(&layers), "layers partition: {layers}");
            assert_eq!(cats == 0, layers == 0, "both splits cover the same ns");
        }
    }
}
