//! A1 — ablation of §3.1's prefetching claim: the FOT reachability graph
//! lets the system prefetch on *actual* reachability instead of address
//! adjacency proxies.

use rdv_core::runtime::PrefetchPolicy;
use rdv_core::scenarios::{run_a1, A1Config};

use crate::par::par_map;
use crate::report::{f2, Series};

/// Chain walks under three policies × two layouts.
pub fn run(quick: bool) -> Series {
    let nodes = if quick { 48 } else { 128 };
    let mut series = Series::new(
        "A1",
        "prefetching on reachability vs adjacency (paper §3.1)",
        &["layout", "policy", "latency_ms", "demand_fetches", "prefetch_fetches"],
    );
    // layout × policy grid: independent walks, fanned out.
    let policies = [
        (PrefetchPolicy::None, "none"),
        (PrefetchPolicy::Adjacency { window: 3 }, "adjacency"),
        (PrefetchPolicy::Reachability, "reachability"),
    ];
    let grid: Vec<_> = [("contiguous", false), ("scattered", true)]
        .into_iter()
        .flat_map(|l| policies.into_iter().map(move |p| (l, p)))
        .collect();
    let rows = par_map(grid, |((layout, scattered), (policy, label))| {
        let out =
            run_a1(&A1Config { nodes, decoys: nodes * 3, policy, scattered, ..Default::default() });
        assert_eq!(out.values.len(), nodes, "traversal must cover the chain");
        vec![
            layout.to_string(),
            label.to_string(),
            f2(out.latency.as_nanos() as f64 / 1e6),
            out.demand_fetches.to_string(),
            out.prefetch_fetches.to_string(),
        ]
    });
    for row in rows {
        series.push_row(row);
    }
    series.note("shape: reachability ≈ adjacency on adjacency's best-case layout, and keeps winning on scattered layouts where adjacency chases decoys");
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachability_is_layout_independent() {
        let s = run(true);
        let lat = |i: usize| s.rows[i][2].parse::<f64>().unwrap();
        // Rows: 0-2 contiguous {none, adj, reach}; 3-5 scattered.
        assert!(lat(2) < lat(0), "reach beats none");
        assert!(lat(5) < lat(3), "reach beats none (scattered)");
        assert!(lat(5) < lat(4), "reach beats adjacency on scattered layout");
        let reach_ratio = lat(5) / lat(2);
        assert!(
            (0.8..1.2).contains(&reach_ratio),
            "reachability layout-independent: {reach_ratio}"
        );
    }
}
