//! F4 — goodput and rendezvous completion vs fault severity.
//!
//! The paper's §3.2 argues the fabric needs only *"a new, light-weight form
//! of reliable transmission"* rather than full TCP. This experiment
//! quantifies what that light-weight machinery (per-access watchdogs with
//! capped-backoff re-sends, typed abandonment) buys under injected faults:
//! a driver issues reads against three holders behind an object-routed
//! switch while the fault plan degrades the fabric — random loss on every
//! host link, a partition cutting one holder off the switch, and a
//! crash/restart outage of another — all scaled together by one severity
//! knob. Reported per point: completion rate, typed failures, watchdog
//! re-sends, mean access latency, and goodput over the active window.
//!
//! Invariant (same as `tests/chaos_soak.rs`): at every severity, every
//! access either completes or surfaces a typed failure — none wedge.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdv_core::scenarios::{build_star_fabric, host_link_rack};
use rdv_discovery::{DiscoveryMode, HostConfig, HostNode};
use rdv_netsim::{FaultPlan, NodeId, SimTime};
use rdv_objspace::{ObjId, ObjectKind};

use crate::par::par_map;
use crate::report::{f1, Series};

const HOLDERS: usize = 3;
const ACCESSES: usize = 40;
const READ_LEN: u64 = 64;

/// Outcome of one severity point.
#[derive(Debug, Clone, Copy)]
pub struct F4Outcome {
    /// Accesses that completed.
    pub completed: usize,
    /// Accesses that surfaced a typed failure.
    pub failed: usize,
    /// Watchdog re-send firings at the driver.
    pub timeouts: u64,
    /// Packets the fabric dropped (loss + partition + dead node).
    pub packets_dropped: u64,
    /// Mean latency of completed accesses.
    pub mean_latency: SimTime,
    /// Completed read payload bytes per simulated millisecond.
    pub goodput_bytes_per_ms: f64,
}

/// One chaos point: `loss_permille` of random loss on every host link, a
/// partition of `outage_us` around one holder, and a crash/restart outage
/// of `outage_us` on another.
pub fn run_point(loss_permille: u16, outage_us: u64, seed: u64) -> F4Outcome {
    run_point_inner(loss_permille, outage_us, seed, false).0
}

/// [`run_point`] with the telemetry plane and invariant monitor on;
/// sampling observes without perturbing, so the outcome numbers are
/// identical to the plain run at the same point.
pub fn run_point_metrics(
    loss_permille: u16,
    outage_us: u64,
    seed: u64,
) -> (F4Outcome, rdv_netsim::metrics::MetricSet) {
    let (out, set) = run_point_inner(loss_permille, outage_us, seed, true);
    (out, set.expect("metrics were enabled"))
}

fn run_point_inner(
    loss_permille: u16,
    outage_us: u64,
    seed: u64,
    metrics: bool,
) -> (F4Outcome, Option<rdv_netsim::metrics::MetricSet>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF4);
    let host_cfg = HostConfig {
        mode: DiscoveryMode::Controller,
        access_timeout: SimTime::from_micros(200),
        max_access_retries: 8,
        ..HostConfig::default()
    };
    let link = host_link_rack().with_loss(loss_permille);

    let mut nodes: Vec<(Box<dyn rdv_netsim::Node>, ObjId, rdv_netsim::LinkSpec)> = Vec::new();
    let mut driver = HostNode::new("driver", ObjId(0xF4D0), host_cfg);
    let mut obj_routes = Vec::new();
    let mut objects = Vec::new();
    let mut holders = Vec::new();
    for h in 0..HOLDERS {
        let inbox = ObjId(0xF4B0 + h as u128);
        let mut holder = HostNode::new(format!("h{h}"), inbox, host_cfg);
        for _ in 0..2 {
            let obj = holder.store.create(&mut rng, ObjectKind::Data);
            let off = holder.store.get_mut(obj).unwrap().alloc(128).unwrap();
            holder.store.get_mut(obj).unwrap().write_u64(off, 1).unwrap();
            obj_routes.push((obj, 1 + h));
            objects.push(obj);
        }
        holders.push(inbox);
        nodes.push((Box::new(holder), inbox, link));
    }
    for _ in 0..ACCESSES {
        driver.plan.push(objects[rng.gen_range(0..objects.len())]);
    }
    nodes.insert(0, (Box::new(driver), ObjId(0xF4D0), link));

    let (mut sim, ids) = build_star_fabric(seed, nodes, &obj_routes);
    let switch = NodeId(ids.len());
    if metrics {
        sim.enable_metrics(rdv_netsim::metrics::MetricsConfig::default());
    }

    if outage_us > 0 {
        // Partition holder 1 off the switch, and crash-restart holder 2,
        // each for an `outage_us` window placed inside the access train.
        let plan = FaultPlan::new()
            .partition(
                SimTime::from_micros(200),
                SimTime::from_micros(200 + outage_us),
                &[switch],
                &[ids[2]],
            )
            .crash(SimTime::from_micros(400), ids[3])
            .restart(SimTime::from_micros(400 + outage_us), ids[3]);
        sim.install_fault_plan(&plan);
    }

    for i in 0..ACCESSES as u64 {
        sim.schedule(SimTime::from_micros(10 + 50 * i), ids[0], i);
    }
    sim.run_until_idle();

    let set = metrics.then(|| {
        sim.flush_metrics(sim.now());
        sim.take_metrics()
    });
    let drv = sim.node_as::<HostNode>(ids[0]).expect("driver");
    assert_eq!(
        drv.records.len() + drv.failed.len(),
        ACCESSES,
        "every access must complete or fail typed"
    );
    assert_eq!(drv.outstanding(), 0, "no access may wedge");

    let total_ns: u64 = drv.records.iter().map(|r| r.latency().as_nanos()).sum();
    let mean = if drv.records.is_empty() {
        SimTime::ZERO
    } else {
        SimTime::from_nanos(total_ns / drv.records.len() as u64)
    };
    // Goodput: completed read bytes over the active window (first issue to
    // last completion).
    let window_ns = drv
        .records
        .iter()
        .map(|r| r.completed.as_nanos())
        .max()
        .map(|last| last.saturating_sub(10_000).max(1))
        .unwrap_or(1);
    let goodput = (drv.records.len() as u64 * READ_LEN) as f64 / (window_ns as f64 / 1_000_000.0);
    let dropped =
        ["sim.packets_lost", "sim.packets_dropped.partition", "sim.packets_dropped.dead_node"]
            .iter()
            .map(|k| sim.counters.get(k))
            .sum();
    let out = F4Outcome {
        completed: drv.records.len(),
        failed: drv.failed.len(),
        timeouts: drv.counters.get("access_timeouts"),
        packets_dropped: dropped,
        mean_latency: mean,
        goodput_bytes_per_ms: goodput,
    };
    (out, set)
}

/// Sweep fault severity: loss rate and outage windows scale together.
pub fn run(quick: bool) -> Series {
    let sweep: &[(u16, u64)] = if quick {
        &[(0, 0), (100, 200), (300, 600)]
    } else {
        &[(0, 0), (50, 100), (100, 200), (200, 400), (300, 600), (400, 800)]
    };
    let mut series = Series::new(
        "F4",
        "goodput and rendezvous completion vs fault severity (paper §3.2)",
        &[
            "loss_permille",
            "outage_us",
            "completed",
            "failed",
            "timeouts",
            "dropped",
            "mean_us",
            "goodput_B_per_ms",
        ],
    );
    let rows = par_map(sweep.to_vec(), |(loss, outage)| {
        let out = run_point(loss, outage, 0xF4 + loss as u64);
        if loss == 0 && outage == 0 {
            assert_eq!(out.failed, 0, "a healthy fabric completes everything");
            assert_eq!(out.timeouts, 0, "no watchdog work on a healthy fabric");
        }
        vec![
            loss.to_string(),
            outage.to_string(),
            out.completed.to_string(),
            out.failed.to_string(),
            out.timeouts.to_string(),
            out.packets_dropped.to_string(),
            f1(out.mean_latency.as_nanos() as f64 / 1000.0),
            f1(out.goodput_bytes_per_ms),
        ]
    });
    for row in rows {
        series.push_row(row);
    }
    series.note("watchdog re-sends (capped backoff) mask loss, partition, and crash outages until severity exhausts the retry budget; every non-completed access surfaces a typed failure, none wedge — the invariant tests/chaos_soak.rs soaks");
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_point_completes_everything_and_is_deterministic() {
        let a = run_point(0, 0, 7);
        assert_eq!(a.completed, ACCESSES);
        assert_eq!(a.failed, 0);
        let b = run_point(0, 0, 7);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_latency, b.mean_latency);
        assert_eq!(a.goodput_bytes_per_ms, b.goodput_bytes_per_ms);
    }

    #[test]
    fn severity_degrades_goodput_but_not_accounting() {
        let healthy = run_point(0, 0, 7);
        let stressed = run_point(300, 600, 7);
        assert!(stressed.packets_dropped > 0);
        assert!(stressed.timeouts > 0, "faults must force watchdog work");
        assert!(stressed.mean_latency > healthy.mean_latency, "recovery costs latency");
        // Accounting is exact at every severity (asserted inside run_point).
        assert_eq!(stressed.completed + stressed.failed, ACCESSES);
    }
}
