//! F7 — discovery churn at fabric scale: flood rediscovery vs
//! journal-synchronized gossip (ISSUE 9, ROADMAP item 3).
//!
//! The paper's E2E scheme rediscovers a moved object by broadcasting
//! `DiscoverReq` to every host — O(hosts) packets per churn event, the
//! knee that bends F3 upward as the deployment grows. The gossip plane
//! (`rdv-gossip`) replaces that with journal-synchronized anti-entropy:
//! a holder change is one CRDT journal entry that rides the O(1)
//! per-node-round digest/delta exchange, and a stale client repairs its
//! route from the *local* journal without touching the network.
//!
//! This figure puts both disciplines on the [`rdv_netsim::topo::build_rack_ring`]
//! fabric at 1 k / 10 k / 100 k hosts, migrates a fixed set of objects
//! mid-run, and counts the discovery-plane traffic each churn event
//! costs:
//!
//! * **flood arm** — the stale reader hits the old holder, takes the
//!   `Nack`, and floods `DiscoverReq` across the whole fabric; the
//!   `disc_per_churn` column grows linearly with host count.
//! * **gossip arm** — hosts run [`GossipSync`] rounds on sim-time
//!   timers (peers planned by [`plan_gossip_peers`]: rack rings plus
//!   relay-first head links); the new holder journals the fact, the
//!   reader's journal repairs the route, and `disc_per_churn` (delta
//!   entries applied fabric-wide) stays O(rounds), flat in host count
//!   while the background `msgs_per_node_round` stays constant.
//!
//! Every row is a pure simulation output: the run fingerprint (events,
//! clock, merged counters, per-probe latencies) is asserted byte-equal
//! across `--shards 1/2/8` before anything is reported.

use crate::fabric::{host_link, trunk_link};
use crate::report::{f1, f2, Series};
use rdv_discovery::hier::plan_gossip_peers;
use rdv_gossip::sync::ctr;
use rdv_gossip::{GossipConfig, GossipSync};
use rdv_memproto::msg::{Msg, MsgBody, NackCode};
use rdv_netsim::metrics::{MetricSample, MetricSet};
use rdv_netsim::stats::Counters;
use rdv_netsim::topo::build_rack_ring;
use rdv_netsim::{MetricsConfig, Node, NodeCtx, Packet, PortId, Sim, SimConfig, SimTime};
use rdv_objspace::ObjId;

/// ISSUE 9 acceptance: byte-identical across `--shards 1/2/8`.
const SHARD_SWEEP: [usize; 3] = [1, 2, 8];

/// The F5 fabric sizes, ascending: (racks, hosts_per_rack).
const FABRICS: [(usize, usize); 3] = [(16, 64), (32, 320), (256, 400)];

/// Packets with `trace >= FLOOD_BASE` are fabric floods; the low bits
/// carry the remaining trunk-hop budget. Everything below is a unicast
/// routed on `trace` = destination host index.
const FLOOD_BASE: u64 = 1 << 62;

const INBOX_BASE: u128 = 0xF7_0000_0000;
const OBJ_BASE: u128 = 0xF7_8000_0000;

const TAG_ROUND: u64 = 1;
const TAG_CHURN: u64 = 2;
const TAG_DROP: u64 = 3;
const TAG_PROBE: u64 = 4;

/// Journal-repair retry cadence while the churn fact is still in flight.
const PROBE_RETRY: SimTime = SimTime::from_micros(20);

fn inbox(i: usize) -> ObjId {
    ObjId(INBOX_BASE + i as u128)
}

fn obj(i: usize) -> ObjId {
    ObjId(OBJ_BASE + i as u128)
}

fn host_of(id: ObjId) -> usize {
    (id.as_u128() - INBOX_BASE) as usize
}

/// Churn workload shape and timeline (all sim-time).
#[derive(Debug, Clone, Copy)]
struct ChurnSpec {
    racks: usize,
    hpr: usize,
    /// Objects migrated mid-run (one per mover rack).
    churns: usize,
    /// First migration instant.
    churn_at_ns: u64,
    /// Spacing between successive migrations (and their probes).
    spacing_ns: u64,
    /// Probe delay after each migration.
    probe_delay_ns: u64,
    /// Gossip-arm drain after the last probe fires (the flood arm has no
    /// re-arming timers and simply runs to idle).
    drain_ns: u64,
}

impl ChurnSpec {
    fn hosts(&self) -> usize {
        self.racks * self.hpr
    }

    fn end_ns(&self) -> u64 {
        self.churn_at_ns
            + self.probe_delay_ns
            + self.spacing_ns * self.churns as u64
            + self.drain_ns
    }
}

fn spec(racks: usize, hpr: usize, quick: bool) -> ChurnSpec {
    ChurnSpec {
        racks,
        hpr,
        churns: if quick { 4 } else { 16.min(racks) },
        churn_at_ns: 160_000,
        spacing_ns: 10_000,
        probe_delay_ns: 160_000,
        drain_ns: 120_000,
    }
}

/// Per-rack switch: floods replicate to every host port and burn one
/// trunk hop per ring step; unicasts route on `trace` = host index.
struct F7Switch {
    rack: usize,
    hpr: usize,
}

impl Node for F7Switch {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, port: PortId, packet: Packet) {
        if packet.trace >= FLOOD_BASE {
            let hops = packet.trace - FLOOD_BASE;
            for p in 0..self.hpr {
                if PortId(p) != port {
                    ctx.send(PortId(p), Packet::new(packet.payload.clone(), packet.trace));
                }
            }
            if hops > 0 {
                ctx.send(PortId(self.hpr), Packet::new(packet.payload, FLOOD_BASE + hops - 1));
            }
        } else {
            let dest = packet.trace as usize;
            if dest / self.hpr == self.rack {
                ctx.send(PortId(dest % self.hpr), packet);
            } else {
                // Clockwise around the trunk ring until the home rack.
                ctx.send(PortId(self.hpr), packet);
            }
        }
    }
    fn name(&self) -> &str {
        "f7-switch"
    }
}

/// A host in either arm. Everyone starts holding `obj(index)`; movers
/// hand their object to their successor mid-run. The probe host (two
/// slots past the mover) reads the moved object through the discipline
/// under test: journal repair (gossip arm) or Nack + fabric flood
/// rediscovery (flood arm).
struct F7Host {
    index: usize,
    racks: usize,
    /// `Some` in the gossip arm: the embedded anti-entropy machine.
    sync: Option<GossipSync>,
    counters: Counters,
    holds: Vec<ObjId>,
    flood_rx: u64,
    probe_target: Option<ObjId>,
    probe_started_ns: Option<u64>,
    probe_done_ns: Option<u64>,
    journal_hit: bool,
    next_req: u64,
    /// The representative host whose gossip gauges the metrics companion
    /// samples (unique node name `probe`, so the series instance is
    /// stable). Gauge sampling reads state only, so this never perturbs
    /// the run fingerprint.
    metrics_probe: bool,
}

impl F7Host {
    fn new(index: usize, racks: usize, sync: Option<GossipSync>) -> F7Host {
        F7Host {
            index,
            racks,
            sync,
            counters: Counters::new(),
            holds: Vec::new(),
            flood_rx: 0,
            probe_target: None,
            probe_started_ns: None,
            probe_done_ns: None,
            journal_hit: false,
            next_req: 0,
            metrics_probe: false,
        }
    }

    fn req(&mut self) -> u64 {
        self.next_req += 1;
        ((self.index as u64) << 20) | self.next_req
    }

    /// Unicast a message to the inbox named in its header.
    fn send_msg(ctx: &mut NodeCtx<'_>, msg: Msg) {
        let dest = host_of(msg.header.dst) as u64;
        ctx.send(PortId(0), Packet::new(msg.encode(), dest));
    }

    fn read_req(&mut self, ctx: &mut NodeCtx<'_>, holder: ObjId) {
        let (req, target) = (self.req(), self.probe_target.expect("probe target set"));
        Self::send_msg(
            ctx,
            Msg::new(
                holder,
                inbox(self.index),
                MsgBody::ReadReq { req, target, offset: 0, len: 32 },
            ),
        );
    }
}

impl Node for F7Host {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.holds.push(obj(self.index));
        if let Some(sync) = &self.sync {
            ctx.set_timer(sync.period(), TAG_ROUND);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        match tag {
            TAG_ROUND => {
                let Some(sync) = self.sync.as_mut() else { return };
                let now_ns = ctx.now.as_nanos();
                for msg in sync.on_round(now_ns, &mut self.counters) {
                    Self::send_msg(ctx, msg);
                }
                ctx.set_timer(self.sync.as_ref().expect("gossip arm").period(), TAG_ROUND);
            }
            TAG_CHURN => {
                // Take over the predecessor's object; in the gossip arm
                // the fact is journaled and rides the next round.
                let moved = obj(self.index - 1);
                self.holds.push(moved);
                if let Some(sync) = self.sync.as_mut() {
                    sync.journal.record_holder(moved, inbox(self.index), ctx.now.as_nanos());
                }
            }
            TAG_DROP => {
                let own = obj(self.index);
                self.holds.retain(|&o| o != own);
            }
            TAG_PROBE => {
                let target = obj(self.index - 2);
                self.probe_target = Some(target);
                if self.probe_started_ns.is_none() {
                    self.probe_started_ns = Some(ctx.now.as_nanos());
                }
                match self.sync.as_ref().map(|s| s.journal.lookup(target)) {
                    // Route repaired from the local journal — no network
                    // round-trip spent on discovery.
                    Some(Some(holder)) => {
                        self.journal_hit = true;
                        self.counters.inc_id(ctr().repair_hits);
                        self.read_req(ctx, holder);
                    }
                    // Fact still in flight; retry off the network.
                    Some(None) => ctx.set_timer(PROBE_RETRY, TAG_PROBE),
                    // Flood arm: go to the (stale) last-known holder and
                    // let the Nack trigger rediscovery.
                    None => self.read_req(ctx, inbox(self.index - 2)),
                }
            }
            _ => {}
        }
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _port: PortId, packet: Packet) {
        let Ok(msg) = Msg::decode(&packet.payload) else { return };
        match &msg.body {
            MsgBody::GossipDigest { .. } | MsgBody::GossipDelta { .. } => {
                if let Some(sync) = self.sync.as_mut() {
                    for out in sync.on_msg(&msg, &mut self.counters) {
                        Self::send_msg(ctx, out);
                    }
                }
            }
            MsgBody::ReadReq { req, target, .. } => {
                let body = if self.holds.contains(target) {
                    MsgBody::ReadResp { req: *req, offset: 0, version: 1, data: vec![0u8; 32] }
                } else {
                    MsgBody::Nack { req: *req, code: NackCode::NotHere }
                };
                Self::send_msg(ctx, Msg::new(msg.header.src, inbox(self.index), body));
            }
            MsgBody::ReadResp { .. } => {
                if let Some(started) = self.probe_started_ns {
                    self.probe_done_ns.get_or_insert(ctx.now.as_nanos() - started);
                }
            }
            MsgBody::Nack { req, .. } => {
                // Flood rediscovery: broadcast DiscoverReq across the
                // whole fabric — the O(hosts) cost this figure measures.
                let Some(target) = self.probe_target else { return };
                let flood = Msg::new(target, inbox(self.index), MsgBody::DiscoverReq { req: *req });
                let hops = FLOOD_BASE + self.racks as u64 - 1;
                ctx.send(PortId(0), Packet::new(flood.encode(), hops));
            }
            MsgBody::DiscoverReq { req } => {
                self.flood_rx += 1;
                if self.holds.contains(&msg.header.dst) {
                    Self::send_msg(
                        ctx,
                        Msg::new(
                            msg.header.src,
                            inbox(self.index),
                            MsgBody::DiscoverResp { req: *req, holder_inbox: inbox(self.index) },
                        ),
                    );
                }
            }
            MsgBody::DiscoverResp { holder_inbox, .. } => {
                let holder = *holder_inbox;
                self.read_req(ctx, holder);
            }
            _ => {}
        }
    }

    fn sample_metrics(&self, m: &mut MetricSample<'_>) {
        if !self.metrics_probe {
            return;
        }
        if let Some(sync) = &self.sync {
            m.gauge("gossip.journal_entries", sync.journal.len() as u64);
            m.rate_per_s("gossip.sync_rate", self.counters.get_id(ctr().rounds));
            m.gauge("gossip.repair_hits", self.counters.get_id(ctr().repair_hits));
        }
    }

    fn name(&self) -> &str {
        if self.metrics_probe {
            "probe"
        } else {
            "f7-host"
        }
    }
}

/// One arm's deterministic outputs (plus the full fingerprint string).
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct ArmOut {
    pub(crate) events: u64,
    clock_ns: u64,
    pub(crate) flood_rx: u64,
    pub(crate) rounds: u64,
    gossip_msgs: u64,
    pub(crate) entries_applied: u64,
    pub(crate) repair_hits: u64,
    /// Churn-order probe latencies (mover-rack order), ns.
    pub(crate) probe_ns: Vec<u64>,
    fp: String,
}

fn run_arm(spec: &ChurnSpec, gossip: bool, seed: u64, shards: usize) -> ArmOut {
    run_arm_inner(spec, gossip, seed, shards, false).0
}

/// One arm with the telemetry plane armed: engine gauges plus the gossip
/// gauges of the first prober host (node name `probe`). Used by the
/// `figures --metrics F7` companion.
pub(crate) fn run_arm_metrics(spec_quick: bool, gossip: bool, seed: u64) -> (ArmOut, MetricSet) {
    let (racks, hpr) = FABRICS[0];
    let spec = spec(racks, hpr, spec_quick);
    let (out, set) = run_arm_inner(&spec, gossip, seed, 1, true);
    (out, set.expect("metrics were enabled"))
}

fn run_arm_inner(
    spec: &ChurnSpec,
    gossip: bool,
    seed: u64,
    shards: usize,
    metrics: bool,
) -> (ArmOut, Option<MetricSet>) {
    let mut sim = Sim::new(SimConfig { seed, shards, ..Default::default() });
    if metrics {
        sim.enable_metrics(MetricsConfig::default());
    }
    let (racks, hpr) = (spec.racks, spec.hpr);
    let ring = build_rack_ring(
        &mut sim,
        racks,
        hpr,
        |rack| Box::new(F7Switch { rack, hpr }),
        |i| {
            let sync = gossip.then(|| GossipSync::new(inbox(i), i as u64, GossipConfig::default()));
            Box::new(F7Host::new(i, racks, sync))
        },
        host_link(),
        trunk_link(),
    );
    if gossip {
        // Rack rings plus relay-first head links, exactly as a real
        // deployment would plan them.
        let regions: Vec<Vec<ObjId>> =
            (0..racks).map(|r| (0..hpr).map(|h| inbox(r * hpr + h)).collect()).collect();
        for plan in plan_gossip_peers(&regions) {
            let host = ring.hosts[host_of(plan.host)];
            let sync =
                sim.node_as_mut::<F7Host>(host).and_then(|h| h.sync.as_mut()).expect("gossip host");
            for (peer, relay) in plan.peers {
                sync.add_peer(peer, relay);
            }
        }
    }
    // Mover rack c: host slot 1 hands its object to slot 2; slot 3 reads
    // it back through the discipline under test.
    let mut probers = Vec::new();
    for c in 0..spec.churns {
        let rack = c * racks / spec.churns;
        let m = rack * hpr + 1;
        let at = SimTime::from_nanos(spec.churn_at_ns + spec.spacing_ns * c as u64);
        sim.schedule(at, ring.hosts[m], TAG_DROP);
        sim.schedule(at, ring.hosts[m + 1], TAG_CHURN);
        let probe = SimTime::from_nanos(
            spec.churn_at_ns + spec.probe_delay_ns + spec.spacing_ns * c as u64,
        );
        sim.schedule(probe, ring.hosts[m + 2], TAG_PROBE);
        probers.push(m + 2);
    }
    if metrics {
        let probe = sim.node_as_mut::<F7Host>(ring.hosts[probers[0]]).expect("prober");
        probe.metrics_probe = true;
    }
    // Gossip timers re-arm forever, so that arm runs to a deadline; the
    // flood arm has no standing timers and drains to idle.
    let events = if gossip {
        sim.run_until(SimTime::from_nanos(spec.end_ns()))
    } else {
        sim.run_until_idle()
    };
    let clock_ns = sim.now().as_nanos();
    let set = metrics.then(|| {
        sim.flush_metrics(sim.now());
        sim.take_metrics()
    });

    let mut merged = Counters::new();
    let mut flood_rx = 0u64;
    let mut probe_ns = Vec::new();
    for &idx in &probers {
        let h = sim.node_as::<F7Host>(ring.hosts[idx]).expect("prober");
        let done = h
            .probe_done_ns
            .unwrap_or_else(|| panic!("probe on host {idx} never completed (arm gossip={gossip})"));
        assert_eq!(h.journal_hit, gossip, "host {idx}: repair path must match the arm");
        probe_ns.push(done);
    }
    for &id in &ring.hosts {
        let h = sim.node_as::<F7Host>(id).expect("host");
        merged.merge(&h.counters);
        flood_rx += h.flood_rx;
    }
    let g = ctr();
    let mut fp = format!("e:{events};c:{clock_ns};fl:{flood_rx};");
    for (name, value) in merged.iter() {
        fp.push_str(&format!("{name}:{value};"));
    }
    for (i, ns) in probe_ns.iter().enumerate() {
        fp.push_str(&format!("p{i}:{ns};"));
    }
    let out = ArmOut {
        events,
        clock_ns,
        flood_rx,
        rounds: merged.get_id(g.rounds),
        gossip_msgs: merged.get_id(g.digests_sent)
            + merged.get_id(g.deltas_sent)
            + merged.get_id(g.relayed),
        entries_applied: merged.get_id(g.entries_applied),
        repair_hits: merged.get_id(g.repair_hits),
        probe_ns,
        fp,
    };
    (out, set)
}

/// Run the churn sweep: both arms at every fabric size, shard-sweep
/// fingerprint asserted before each row is recorded.
pub fn run(quick: bool) -> Series {
    let mut series = Series::new(
        "F7",
        "discovery churn at fabric scale: flood rediscovery vs journal gossip (ISSUE 9)",
        &[
            "hosts",
            "racks",
            "churns",
            "arm",
            "events",
            "clock_us",
            "disc_per_churn",
            "msgs_per_node_round",
            "probe_mean_us",
            "probe_max_us",
            "journal_hits",
        ],
    );
    for (racks, hpr) in FABRICS {
        let spec = spec(racks, hpr, quick);
        for gossip in [false, true] {
            let flat = run_arm(&spec, gossip, 42, 1);
            for shards in SHARD_SWEEP {
                if shards == 1 {
                    continue;
                }
                let sharded = run_arm(&spec, gossip, 42, shards);
                assert_eq!(sharded.fp, flat.fp, "arm gossip={gossip} diverged at shards={shards}");
            }
            let churns = spec.churns as u64;
            // The knee column: what one churn event costs the discovery
            // plane. Flood = DiscoverReq deliveries (O(hosts)); gossip =
            // journal delta entries applied fabric-wide (O(rounds)).
            let disc_per_churn = if gossip {
                flat.entries_applied as f64 / churns as f64
            } else {
                flat.flood_rx as f64 / churns as f64
            };
            let per_node_round =
                if flat.rounds > 0 { flat.gossip_msgs as f64 / flat.rounds as f64 } else { 0.0 };
            let mean_ns =
                flat.probe_ns.iter().sum::<u64>() as f64 / flat.probe_ns.len().max(1) as f64;
            let max_ns = flat.probe_ns.iter().copied().max().unwrap_or(0);
            series.push_row(vec![
                spec.hosts().to_string(),
                racks.to_string(),
                spec.churns.to_string(),
                if gossip { "gossip".into() } else { "flood".into() },
                flat.events.to_string(),
                f1(flat.clock_ns as f64 / 1e3),
                f1(disc_per_churn),
                f2(per_node_round),
                f1(mean_ns / 1e3),
                f1(max_ns as f64 / 1e3),
                flat.repair_hits.to_string(),
            ]);
        }
    }
    series.note(
        "disc_per_churn is the discovery-plane cost of one migration: DiscoverReq deliveries \
         (flood arm, O(hosts)) vs journal delta entries applied fabric-wide (gossip arm, \
         O(rounds) — flat in host count)",
    );
    series.note(
        "msgs_per_node_round is the gossip arm's steady-state background: digests + deltas + \
         relays per node-round, constant across fabric sizes; every row's fingerprint (events, \
         clock, counters, probe latencies) is asserted byte-identical across --shards 1/2/8 \
         before being recorded",
    );
    if quick {
        series.note("quick mode: fewer churn events per fabric; fabric sizes unchanged");
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ChurnSpec {
        ChurnSpec {
            racks: 4,
            hpr: 8,
            churns: 2,
            churn_at_ns: 160_000,
            spacing_ns: 10_000,
            probe_delay_ns: 160_000,
            drain_ns: 120_000,
        }
    }

    #[test]
    fn both_arms_are_shard_invariant_on_a_tiny_fabric() {
        for gossip in [false, true] {
            let flat = run_arm(&tiny(), gossip, 42, 1);
            assert!(flat.events > 0);
            for shards in SHARD_SWEEP {
                assert_eq!(run_arm(&tiny(), gossip, 42, shards).fp, flat.fp, "gossip={gossip}");
            }
        }
    }

    #[test]
    fn flood_arm_pays_o_hosts_per_churn() {
        let spec = tiny();
        let flood = run_arm(&spec, false, 42, 1);
        assert_eq!(flood.repair_hits, 0);
        assert_eq!(flood.probe_ns.len(), spec.churns);
        // Every host except the prober sees each flood.
        let hosts = spec.hosts() as u64;
        assert!(
            flood.flood_rx >= (hosts - 2) * spec.churns as u64,
            "flood must reach the fabric: {} deliveries for {} churns on {} hosts",
            flood.flood_rx,
            spec.churns,
            hosts
        );
    }

    #[test]
    fn gossip_arm_repairs_from_the_journal_at_o_rounds_cost() {
        let spec = tiny();
        let gossip = run_arm(&spec, true, 42, 1);
        assert_eq!(gossip.flood_rx, 0, "journal repair must not flood");
        assert_eq!(gossip.repair_hits, spec.churns as u64, "every probe repairs locally");
        assert_eq!(gossip.probe_ns.len(), spec.churns);
        // The churn fact spreads one ring hop per round, not fabric-wide.
        let per_churn = gossip.entries_applied / spec.churns as u64;
        assert!(
            per_churn < spec.hosts() as u64 / 2,
            "gossip churn cost must not scale with hosts: {per_churn} entries/churn"
        );
        // Steady-state background stays a small constant per node-round.
        let per_node_round = gossip.gossip_msgs as f64 / gossip.rounds as f64;
        assert!(
            (1.0..6.0).contains(&per_node_round),
            "background must be O(1) per node-round, got {per_node_round}"
        );
        // Probes resolve quickly: the fact arrived before the probe fired,
        // so latency is one direct read RTT, far below flood rediscovery.
        let flood = run_arm(&spec, false, 42, 1);
        let gmax = gossip.probe_ns.iter().copied().max().unwrap();
        let fmax = flood.probe_ns.iter().copied().max().unwrap();
        assert!(gmax < fmax, "journal repair ({gmax} ns) must beat flood rediscovery ({fmax} ns)");
    }
}
