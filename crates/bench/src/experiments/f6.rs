//! F6 — the blip figure: goodput dip and recovery under a mid-load fault
//! window, rendezvous fabric vs RPC baseline (ISSUE 7; methodology after
//! the Autobahn goodput-under-blips artifact referenced in ROADMAP).
//!
//! An open-loop replicated-log workload (million-client id space, Zipf
//! popularity over a small set of hot log heads, batching at four
//! writers) runs against both fabrics at the *same* arrival schedule —
//! identical seed, identical batches, identical issue times. Mid-run, a
//! fault blip partitions one log-head holder off the switch and
//! crash-restarts another. The two arms get equal patience budgets: the
//! rendezvous writers run a 200 µs access watchdog with 8 re-sends
//! (9 × 200 µs of patience); the RPC clients get one attempt with a
//! 1.8 ms deadline. What differs is what the patience buys — watchdog
//! re-sends land as soon as the fabric heals, while an RPC call issued
//! into the blip stays dead until its timeout and is then *lost work*.
//! Reported per skew point and arm: completions, typed failures, overall
//! latency quantiles, windowed goodput before/during/after the blip, the
//! dip, and the recovery time (first SLO window back at ≥ 90 % of the
//! pre-blip mean).

use rdv_load::{
    nearest_rank, replog, ArrivalSchedule, Blip, LoadCurve, LoadFabricSpec, LoadRun, OpenLoopSpec,
    ReplogSpec, SloSeries,
};
use rdv_netsim::{FaultPlan, LinkSpec, Node, NodeId, SimTime};
use rdv_objspace::ObjId;
use rdv_rpc::client::{ClientNode, PlannedCall};
use rdv_rpc::server::ServerNode;
use rdv_rpc::service::{echo_methods, EchoService};

use crate::par::par_map;
use crate::report::Series;

/// Million-user id space: the paper's scale claim is about who *may*
/// show up, not how many are concurrently active.
const CLIENTS: u32 = 1_000_000;
/// Offered base rate, arrivals per second.
const RATE_PER_S: u64 = 1_000_000;
/// Arrival window length.
const DURATION: SimTime = SimTime::from_millis(1);
/// Blip start / length: partition + crash window injected mid-load.
pub(crate) const BLIP_AT: SimTime = SimTime::from_micros(300);
pub(crate) const BLIP_DUR: SimTime = SimTime::from_micros(200);
/// Writer-side patience: watchdog window × (1 + retries) for the
/// rendezvous arm; the same total as a single RPC deadline.
const ACCESS_TIMEOUT: SimTime = SimTime::from_micros(200);
const MAX_RETRIES: u32 = 8;
const RPC_DEADLINE_NS: u64 = ACCESS_TIMEOUT.as_nanos() * (MAX_RETRIES as u64 + 1);
/// SLO window for the goodput/recovery series.
const SLO_INTERVAL: SimTime = SimTime::from_micros(50);

pub(crate) fn fabric_spec() -> LoadFabricSpec {
    LoadFabricSpec {
        holders: 3,
        shards: 0,
        link_loss_permille: 0,
        serve_delay: SimTime::from_micros(2),
        access_timeout: ACCESS_TIMEOUT,
        max_access_retries: MAX_RETRIES,
        slo_interval: SLO_INTERVAL,
        shard_audit: false,
        bystanders: 0,
        gossip_period: None,
        flight_recorder: false,
    }
}

pub(crate) fn replog_spec() -> ReplogSpec {
    ReplogSpec { writers: 4, heads: 8, entry_bytes: 64, batch_window: SimTime::from_micros(20) }
}

pub(crate) fn open_spec(skew_permille: u32) -> OpenLoopSpec {
    OpenLoopSpec {
        clients: CLIENTS,
        objects: replog_spec().heads,
        zipf_skew_permille: skew_permille,
        base_rate_per_s: RATE_PER_S,
        start: SimTime::from_micros(10),
        duration: DURATION,
        curve: LoadCurve::flat(),
        churn: None,
    }
}

pub(crate) fn blip() -> Blip {
    Blip { at: BLIP_AT, dur: BLIP_DUR, partition_holder: Some(0), crash_holder: Some(1) }
}

/// Outcome of one (skew, arm) point.
#[derive(Debug, Clone)]
pub struct F6Outcome {
    /// Batches the open-loop schedule offered.
    pub offered_batches: usize,
    /// Batches that completed.
    pub completed: usize,
    /// Batches that surfaced a typed failure (watchdog exhaustion or RPC
    /// timeout) — lost work.
    pub failed: usize,
    /// Overall completion-latency quantiles, µs.
    pub p50_us: u64,
    /// p99, µs.
    pub p99_us: u64,
    /// p999, µs.
    pub p999_us: u64,
    /// Mean goodput (batches/s) in SLO windows before the blip.
    pub good_before: u64,
    /// Mean goodput during the blip window.
    pub good_during: u64,
    /// Mean goodput after the blip window.
    pub good_after: u64,
    /// Goodput dip during the blip, percent of the pre-blip mean.
    pub dip_pct: u64,
    /// Sim time from blip end to the first SLO window back at ≥ 90 % of
    /// the pre-blip mean, µs (`None` = never recovered in the run).
    pub recovery_us: Option<u64>,
}

fn outcome_from(
    offered_batches: usize,
    completed: &[(u64, u64)],
    failed: usize,
    slo: &SloSeries,
) -> F6Outcome {
    let mut lats: Vec<u64> = completed.iter().map(|&(_, lat)| lat).collect();
    lats.sort_unstable();
    let blip_end = BLIP_AT.as_nanos() + BLIP_DUR.as_nanos();
    let good_before = slo.mean_goodput(0, BLIP_AT.as_nanos());
    let good_during = slo.mean_goodput(BLIP_AT.as_nanos(), blip_end);
    let end_ns = slo.points.last().map(|p| p.at_ns).unwrap_or(blip_end);
    let good_after = slo.mean_goodput(blip_end, end_ns);
    let dip_pct =
        (good_before.saturating_sub(good_during) * 100).checked_div(good_before).unwrap_or(0);
    let recovery_us =
        slo.recovery_ns(blip_end, good_before * 9 / 10).map(|at| (at - blip_end) / 1000);
    F6Outcome {
        offered_batches,
        completed: completed.len(),
        failed,
        p50_us: nearest_rank(&lats, 500) / 1000,
        p99_us: nearest_rank(&lats, 990) / 1000,
        p999_us: nearest_rank(&lats, 999) / 1000,
        good_before,
        good_during,
        good_after,
        dip_pct,
        recovery_us,
    }
}

/// The rendezvous arm: the `rdv-load` harness end to end (writer
/// HostNodes with access watchdogs, object-routed star fabric).
pub fn run_point_rdv(skew_permille: u32, seed: u64) -> F6Outcome {
    let run = LoadRun::execute(
        &fabric_spec(),
        &open_spec(skew_permille),
        &replog_spec(),
        Some(&blip()),
        seed,
        false,
    );
    outcome_from(run.scheduled_batches, &run.completions, run.failed, &run.slo)
}

/// [`run_point_rdv`] with the telemetry plane on; the returned set
/// carries the engine gauges plus the emitted `load.*` SLO gauges.
pub fn run_point_rdv_metrics(
    skew_permille: u32,
    seed: u64,
) -> (F6Outcome, rdv_netsim::metrics::MetricSet) {
    let run = LoadRun::execute(
        &fabric_spec(),
        &open_spec(skew_permille),
        &replog_spec(),
        Some(&blip()),
        seed,
        true,
    );
    let out = outcome_from(run.scheduled_batches, &run.completions, run.failed, &run.slo);
    (out, run.metrics.expect("metrics were enabled"))
}

/// The RPC baseline arm: the *same* batch schedule driven through
/// `ClientNode`s against `ServerNode`s — one attempt per call, a single
/// deadline equal to the rendezvous arm's whole patience budget, and no
/// recovery machinery beyond it.
pub fn run_point_rpc(skew_permille: u32, seed: u64) -> F6Outcome {
    let replog = replog_spec();
    let fabric = fabric_spec();
    let schedule = ArrivalSchedule::generate(&open_spec(skew_permille), seed);
    let plan_batches = replog::batches(&schedule, &replog);

    let writers = replog.writers as usize;
    let servers = fabric.holders;
    let server_inbox = |s: usize| ObjId(0xF6_5000 + s as u128);

    let mut clients: Vec<ClientNode> = (0..writers)
        .map(|w| ClientNode::new(format!("w{w}"), ObjId(0xF6_C000 + w as u128)))
        .collect();
    let mut timers: Vec<(SimTime, usize, u64)> = Vec::with_capacity(plan_batches.len());
    for b in &plan_batches {
        let w = b.writer as usize;
        let tag = clients[w].plan.len() as u64;
        clients[w].plan.push(PlannedCall {
            server: server_inbox(b.head as usize % servers),
            service: 1,
            method: echo_methods::ECHO,
            args: vec![0u8; (b.entries * replog.entry_bytes) as usize],
            serialize_ns: 500,
            lookup_via: None,
            timeout_ns: RPC_DEADLINE_NS,
        });
        timers.push((b.at, w, tag));
    }

    let link = rdv_core::scenarios::host_link_rack().with_loss(fabric.link_loss_permille);
    let mut nodes: Vec<(Box<dyn Node>, ObjId, LinkSpec)> = Vec::new();
    for (w, c) in clients.into_iter().enumerate() {
        nodes.push((Box::new(c), ObjId(0xF6_C000 + w as u128), link));
    }
    for s in 0..servers {
        let mut server = ServerNode::new(format!("s{s}"), server_inbox(s));
        server.register(1, Box::new(EchoService::default()));
        nodes.push((Box::new(server), server_inbox(s), link));
    }
    let (mut sim, ids) = rdv_core::scenarios::build_star_fabric(seed, nodes, &[]);
    let switch = NodeId(ids.len());

    let b = blip();
    let until = SimTime::from_nanos(b.at.as_nanos() + b.dur.as_nanos());
    let mut plan = FaultPlan::new();
    if let Some(p) = b.partition_holder {
        plan = plan.partition(b.at, until, &[switch], &[ids[writers + p]]);
    }
    if let Some(c) = b.crash_holder {
        plan = plan.crash(b.at, ids[writers + c]).restart(until, ids[writers + c]);
    }
    sim.install_fault_plan(&plan);

    sim.schedule_batch(timers.iter().map(|&(at, w, tag)| (at, ids[w], tag)));
    sim.run_until_idle();

    let mut completions: Vec<(u64, u64, u64)> = Vec::new();
    let mut failed = 0usize;
    for &id in ids.iter().take(writers) {
        let client = sim.node_as::<ClientNode>(id).expect("client");
        assert_eq!(
            client.records.len(),
            client.plan.len(),
            "every RPC call must complete or time out"
        );
        assert_eq!(client.outstanding(), 0, "no call may wedge");
        for r in &client.records {
            match &r.result {
                Ok(_) => completions.push((
                    r.completed.as_nanos(),
                    r.issued.as_nanos(),
                    r.latency().as_nanos(),
                )),
                Err(_) => failed += 1,
            }
        }
    }
    completions.sort_unstable();
    let completions: Vec<(u64, u64)> =
        completions.into_iter().map(|(done, _, lat)| (done, lat)).collect();

    let offered_ns: Vec<u64> = plan_batches.iter().map(|b| b.at.as_nanos()).collect();
    let window_end = open_spec(skew_permille).start.as_nanos() + DURATION.as_nanos();
    let slo = SloSeries::compute(
        &offered_ns,
        &completions,
        SLO_INTERVAL.as_nanos(),
        sim.now().as_nanos().max(window_end),
    );
    outcome_from(plan_batches.len(), &completions, failed, &slo)
}

fn push_arm(series: &mut Series, fabric: &str, skew: u32, out: &F6Outcome) {
    series.push_row(vec![
        fabric.to_string(),
        skew.to_string(),
        out.offered_batches.to_string(),
        out.completed.to_string(),
        out.failed.to_string(),
        out.p50_us.to_string(),
        out.p99_us.to_string(),
        out.p999_us.to_string(),
        out.good_before.to_string(),
        out.good_during.to_string(),
        out.good_after.to_string(),
        out.dip_pct.to_string(),
        match out.recovery_us {
            Some(us) => us.to_string(),
            None => "never".to_string(),
        },
    ]);
}

/// Sweep popularity skew; both arms at every point, same schedule.
pub fn run(quick: bool) -> Series {
    let skews: &[u32] = if quick { &[1000] } else { &[0, 500, 1000, 1300] };
    let mut series = Series::new(
        "F6",
        "million-user open-loop blip: goodput dip and recovery, rendezvous vs RPC (ISSUE 7)",
        &[
            "fabric",
            "skew_permille",
            "offered_batches",
            "completed",
            "failed",
            "p50_us",
            "p99_us",
            "p999_us",
            "good_before_per_s",
            "good_during_per_s",
            "good_after_per_s",
            "dip_pct",
            "recovery_us",
        ],
    );
    let points: Vec<(u32, bool)> = skews.iter().flat_map(|&s| [(s, true), (s, false)]).collect();
    let outcomes = par_map(points.clone(), |(skew, rdv)| {
        let seed = 0xF6 + skew as u64;
        if rdv {
            run_point_rdv(skew, seed)
        } else {
            run_point_rpc(skew, seed)
        }
    });
    for ((skew, rdv), out) in points.iter().zip(&outcomes) {
        let arm = if *rdv { "rendezvous" } else { "rpc" };
        if *rdv {
            assert_eq!(
                out.completed + out.failed,
                out.offered_batches,
                "rendezvous arm must account for every batch"
            );
        }
        push_arm(&mut series, arm, *skew, out);
    }
    series.note(
        "same seed, same open-loop schedule, equal patience budgets (9x200us watchdog vs one \
         1.8ms RPC deadline); the rendezvous watchdog re-sends land as soon as the blip heals, \
         while RPC calls issued into the blip hold their deadline and then surface as lost work \
         — the deeper dip, the failed column, and the longer recovery are all the same story",
    );
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_arms_offer_the_same_load() {
        let rdv = run_point_rdv(1000, 0xF6);
        let rpc = run_point_rpc(1000, 0xF6);
        assert_eq!(rdv.offered_batches, rpc.offered_batches, "open loop: same schedule");
        assert!(rdv.offered_batches > 50, "workload too small to mean anything");
    }

    #[test]
    fn rendezvous_recovers_where_rpc_loses_work() {
        let rdv = run_point_rdv(1000, 0xF6);
        let rpc = run_point_rpc(1000, 0xF6);
        // The watchdog completes everything; one-shot RPC calls issued
        // into the blip time out and are lost.
        assert_eq!(rdv.failed, 0, "watchdog must recover the blip window");
        assert!(rpc.failed > 0, "RPC arm must lose in-blip calls");
        assert!(rdv.completed > rpc.completed);
        // Both dip during the blip; RPC dips at least as deep.
        assert!(rdv.dip_pct > 0, "a real blip dips goodput");
        assert!(rpc.dip_pct >= rdv.dip_pct);
        // The rendezvous arm recovers; its tail pays for the blip.
        assert!(rdv.recovery_us.is_some(), "rendezvous arm must recover");
        assert!(rdv.p999_us > rdv.p50_us);
    }

    #[test]
    fn points_are_deterministic() {
        let a = run_point_rdv(500, 42);
        let b = run_point_rdv(500, 42);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = run_point_rpc(500, 42);
        let d = run_point_rpc(500, 42);
        assert_eq!(format!("{c:?}"), format!("{d:?}"));
    }
}
