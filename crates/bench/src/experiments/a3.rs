//! A3 — §3.2's scaling escape hatch: *"To scale to larger deployments, we
//! will explore hierarchical identifier overlay schemes."*
//!
//! Sweeps deployment size past the switch's exact-match SRAM and compares
//! flat exact routing (punt overflow to the controller) against the
//! prefix-region overlay.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rdv_discovery::hier::{plan_overlay, RegionAllocator};
use rdv_objspace::ObjId;
use rdv_p4rt::capacity::SramBudget;
use rdv_p4rt::table::{Action, MatchKind, Table, TableEntry};

use crate::par::par_map;
use crate::report::{f2, Series};

/// Estimated mean access RTTs given how many objects are routed in the
/// dataplane vs punted to the controller (a punt costs one extra RTT).
fn mean_rtts(routed: u64, punted: u64) -> f64 {
    let total = routed + punted;
    if total == 0 {
        return 0.0;
    }
    (routed as f64 + punted as f64 * 2.0) / total as f64
}

/// Run the overlay sweep on a deliberately small switch budget.
pub fn run(quick: bool) -> Series {
    // A switch with room for ~2000 exact 128-bit entries.
    let budget = SramBudget::tiny(4000);
    let cap = budget.max_entries(128);
    let regions = 16u64;
    let alloc = RegionAllocator::new(16);
    let sizes: &[u64] =
        if quick { &[1000, 4000, 16_000] } else { &[1000, 4000, 16_000, 64_000, 256_000] };
    let mut series = Series::new(
        "A3",
        "hierarchical ID overlay vs flat exact routing under SRAM pressure (paper §3.2)",
        &[
            "objects",
            "flat_routed",
            "flat_punted",
            "flat_mean_rtts",
            "ovl_entries",
            "ovl_punted",
            "ovl_mean_rtts",
        ],
    );
    // Each size is an independent point with its own derived RNG stream
    // (seeded by size, not threaded through the sweep), so points fan out.
    let rows = par_map(sizes.to_vec(), |n| {
        let mut rng = StdRng::seed_from_u64(17 ^ n);
        // Objects spread over `regions` single-homed regions (each region
        // is one rack/port).
        let objects: Vec<(ObjId, u16)> = (0..n)
            .map(|i| {
                let region = i % regions;
                (alloc.alloc(&mut rng, region), region as u16)
            })
            .collect();
        // Flat exact routing: fill until SRAM rejects; the rest punt.
        let mut flat = Table::new("flat", vec![1], MatchKind::Exact, 128, budget);
        let mut flat_routed = 0u64;
        for (id, port) in &objects {
            if flat
                .insert(
                    TableEntry::Exact { key: vec![id.as_u128()] },
                    Action::Forward(*port as usize),
                )
                .is_ok()
            {
                flat_routed += 1;
            }
        }
        let flat_punted = n - flat_routed;
        // Overlay planning.
        let mut exact = Table::new("exact", vec![1], MatchKind::Exact, 128, budget);
        let mut lpm = Table::new("lpm", vec![1], MatchKind::Lpm, 128, budget);
        let plan = plan_overlay(&alloc, &budget, &objects, &mut exact, &mut lpm);
        let ovl_entries = plan.exact_entries + plan.region_entries;
        vec![
            n.to_string(),
            flat_routed.to_string(),
            flat_punted.to_string(),
            f2(mean_rtts(flat_routed, flat_punted)),
            ovl_entries.to_string(),
            plan.punted_objects.to_string(),
            f2(mean_rtts(n - plan.punted_objects, plan.punted_objects)),
        ]
    });
    for row in rows {
        series.push_row(row);
    }
    let _ = cap;
    series.note(format!(
        "switch budget: {cap} exact 128-bit entries; {regions} single-homed regions"
    ));
    series.note("shape: flat routing degrades towards 2 RTTs past SRAM capacity; the overlay stays at 1 RTT with a constant handful of LPM entries");
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlay_keeps_one_rtt_past_capacity() {
        let s = run(true);
        let last = s.rows.last().unwrap();
        let flat_rtts: f64 = last[3].parse().unwrap();
        let ovl_rtts: f64 = last[6].parse().unwrap();
        assert!(flat_rtts > 1.5, "flat should degrade: {flat_rtts}");
        assert!((ovl_rtts - 1.0).abs() < 0.01, "overlay stays at 1 RTT: {ovl_rtts}");
        // Overlay uses drastically fewer entries at scale.
        let ovl_entries: u64 = last[4].parse().unwrap();
        assert!(ovl_entries <= 16);
    }
}
