//! `figures` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p rdv-bench --bin figures --release -- \
//!     [--quick] [--jobs N] [--list] [--trace EXP]… [IDS…]
//! ```
//!
//! With no IDs, runs everything (F1 F2 F3 T1 S1 A1–A5). Text tables
//! go to stdout; JSON goes to `results/<id>.json`.
//!
//! `--list` prints every experiment ID with its one-line description.
//!
//! `--trace EXP` re-runs one representative point of EXP with the causal
//! tracer enabled, writes a Perfetto-loadable Chrome trace to
//! `results/trace_<exp>.json`, and prints a critical-path summary. With
//! only `--trace` flags (no positional IDs), the full sweeps are skipped.
//!
//! `--metrics EXP` re-runs one representative point of EXP with the
//! telemetry plane (gauge sampling + live invariant monitor) enabled,
//! writes the deterministic time series to `results/metrics_<exp>.json`,
//! and prints a sparkline summary attributing the figure's shape to the
//! gauges. Like `--trace`, metrics-only invocations skip the full sweeps.
//!
//! `--jobs N` caps the worker threads used to fan independent sweep
//! points out (default: available parallelism; `--jobs 1` is serial).
//! Every point carries its own derived seed and rows are collected in
//! point order, so the output bytes — including trace JSON — are
//! identical for every jobs value.
//!
//! `--shards N` sets the engine's default shard count: every simulation
//! in the run executes on N parallel shards under conservative lookahead
//! (see DESIGN.md §9). Output bytes are identical for every N, including
//! 1 — CI cmp-checks this.

use std::io::Write;

use rdv_bench::experiments;
use rdv_bench::experiments::CATALOG;
use rdv_bench::Series;

fn usage_exit() -> ! {
    eprintln!(
        "usage: figures [--quick] [--jobs N] [--shards N] [--list] [--trace EXP] \
         [--metrics EXP] [F1 F2 F3 F4 F5 F6 F7 F8 T1 T2 S1 A1 A2 A3 A4 A5]"
    );
    std::process::exit(2);
}

fn list_exit() -> ! {
    println!("experiments:");
    for (id, desc) in CATALOG {
        let traced = if experiments::trace::TRACEABLE.contains(id) { "  [--trace]" } else { "" };
        let metered =
            if experiments::metrics::METRICABLE.contains(id) { "  [--metrics]" } else { "" };
        println!("  {id:<4} {desc}{traced}{metered}");
    }
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut wanted: Vec<String> = Vec::new();
    let mut traces: Vec<String> = Vec::new();
    let mut metered: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--quick" {
            // consumed above
        } else if a == "--list" {
            list_exit();
        } else if a == "--jobs" {
            i += 1;
            let Some(n) = args.get(i).and_then(|v| v.parse::<usize>().ok()) else {
                eprintln!("[figures] --jobs needs a positive integer");
                usage_exit();
            };
            rdv_bench::par::set_jobs(n);
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            let Ok(n) = v.parse::<usize>() else {
                eprintln!("[figures] --jobs needs a positive integer");
                usage_exit();
            };
            rdv_bench::par::set_jobs(n);
        } else if a == "--shards" {
            i += 1;
            let Some(n) = args.get(i).and_then(|v| v.parse::<usize>().ok()) else {
                eprintln!("[figures] --shards needs a positive integer");
                usage_exit();
            };
            rdv_netsim::set_default_shards(n);
        } else if let Some(v) = a.strip_prefix("--shards=") {
            let Ok(n) = v.parse::<usize>() else {
                eprintln!("[figures] --shards needs a positive integer");
                usage_exit();
            };
            rdv_netsim::set_default_shards(n);
        } else if a == "--trace" {
            i += 1;
            let Some(e) = args.get(i) else {
                eprintln!("[figures] --trace needs an experiment id");
                usage_exit();
            };
            traces.push(e.trim_start_matches('-').to_uppercase());
        } else if let Some(v) = a.strip_prefix("--trace=") {
            traces.push(v.to_uppercase());
        } else if a == "--metrics" {
            i += 1;
            let Some(e) = args.get(i) else {
                eprintln!("[figures] --metrics needs an experiment id");
                usage_exit();
            };
            metered.push(e.trim_start_matches('-').to_uppercase());
        } else if let Some(v) = a.strip_prefix("--metrics=") {
            metered.push(v.to_uppercase());
        } else if a.starts_with("--") {
            eprintln!("[figures] warning: ignoring unknown flag {a}");
        } else {
            wanted.push(a.trim_start_matches('-').to_uppercase());
        }
        i += 1;
    }
    for w in &wanted {
        if !CATALOG.iter().any(|(id, _)| id == w) {
            eprintln!(
                "[figures] warning: unknown experiment id {w} — run `figures --list` \
                 for ids and descriptions (known: {})",
                CATALOG.iter().map(|(id, _)| *id).collect::<Vec<_>>().join(" ")
            );
        }
    }
    let run_one = |id: &str| -> Option<Series> {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == id) {
            return None;
        }
        eprintln!("[figures] running {id}{}…", if quick { " (quick)" } else { "" });
        Some(match id {
            "F1" => experiments::fig1::run(quick),
            "F2" => experiments::fig2::run(quick),
            "F3" => experiments::fig3::run(quick),
            "F4" => experiments::f4::run(quick),
            "F5" => experiments::f5::run(quick),
            "F6" => experiments::f6::run(quick),
            "F7" => experiments::f7::run(quick),
            "F8" => experiments::f8::run(quick),
            "T1" => experiments::t1::run(quick),
            "T2" => experiments::t2::run(quick),
            "S1" => experiments::s1::run(quick),
            "A1" => experiments::a1::run(quick),
            "A2" => experiments::a2::run(quick),
            "A3" => experiments::a3::run(quick),
            "A4" => experiments::a4::run(quick),
            "A5" => experiments::a5::run(quick),
            _ => unreachable!(),
        })
    };
    let _ = std::fs::create_dir_all("results");
    let mut ran = 0;
    // With only --trace/--metrics flags, skip the full sweeps.
    if (traces.is_empty() && metered.is_empty()) || !wanted.is_empty() {
        for (id, _) in CATALOG {
            let Some(series) = run_one(id) else { continue };
            ran += 1;
            println!("{}", series.to_text());
            let path = format!("results/{}.json", id.to_lowercase());
            match std::fs::File::create(&path) {
                Ok(mut f) => {
                    let _ = writeln!(f, "{}", series.to_json());
                    eprintln!("[figures] wrote {path}");
                }
                Err(e) => eprintln!("[figures] could not write {path}: {e}"),
            }
        }
    }
    for exp in &traces {
        match experiments::trace::run(exp, quick) {
            Some(report) => {
                ran += 1;
                let path = format!("results/trace_{}.json", exp.to_lowercase());
                match std::fs::write(&path, &report.json) {
                    Ok(()) => {
                        eprintln!("[figures] wrote {path} (open in Perfetto or chrome://tracing)")
                    }
                    Err(e) => eprintln!("[figures] could not write {path}: {e}"),
                }
                print!("{}", report.summary);
            }
            None => eprintln!(
                "[figures] warning: no traced companion for {exp} (traceable: {}; run \
                 `figures --list`)",
                experiments::trace::TRACEABLE.join(" ")
            ),
        }
    }
    for exp in &metered {
        match experiments::metrics::run(exp, quick) {
            Some(report) => {
                ran += 1;
                let path = format!("results/metrics_{}.json", exp.to_lowercase());
                match std::fs::write(&path, &report.json) {
                    Ok(()) => eprintln!("[figures] wrote {path}"),
                    Err(e) => eprintln!("[figures] could not write {path}: {e}"),
                }
                print!("{}", report.summary);
            }
            None => eprintln!(
                "[figures] warning: no metrics companion for {exp} (metricable: {}; run \
                 `figures --list`)",
                experiments::metrics::METRICABLE.join(" ")
            ),
        }
    }
    if ran == 0 {
        usage_exit();
    }
}
