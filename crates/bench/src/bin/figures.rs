//! `figures` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p rdv-bench --bin figures --release -- [--quick] [--jobs N] [IDS…]
//! ```
//!
//! With no IDs, runs everything (F1 F2 F3 T1 S1 A1–A5). Text tables
//! go to stdout; JSON goes to `results/<id>.json`.
//!
//! `--jobs N` caps the worker threads used to fan independent sweep
//! points out (default: available parallelism; `--jobs 1` is serial).
//! Every point carries its own derived seed and rows are collected in
//! point order, so the output bytes are identical for every jobs value.

use std::io::Write;

use rdv_bench::experiments;
use rdv_bench::Series;

const IDS: [&str; 12] = ["F1", "F2", "F3", "F4", "T1", "T2", "S1", "A1", "A2", "A3", "A4", "A5"];

fn usage_exit() -> ! {
    eprintln!("usage: figures [--quick] [--jobs N] [F1 F2 F3 F4 T1 T2 S1 A1 A2 A3 A4 A5]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut wanted: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--quick" {
            // consumed above
        } else if a == "--jobs" {
            i += 1;
            let Some(n) = args.get(i).and_then(|v| v.parse::<usize>().ok()) else {
                eprintln!("[figures] --jobs needs a positive integer");
                usage_exit();
            };
            rdv_bench::par::set_jobs(n);
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            let Ok(n) = v.parse::<usize>() else {
                eprintln!("[figures] --jobs needs a positive integer");
                usage_exit();
            };
            rdv_bench::par::set_jobs(n);
        } else if a.starts_with("--") {
            eprintln!("[figures] warning: ignoring unknown flag {a}");
        } else {
            wanted.push(a.trim_start_matches('-').to_uppercase());
        }
        i += 1;
    }
    for w in &wanted {
        if !IDS.contains(&w.as_str()) {
            eprintln!("[figures] warning: unknown experiment id {w} (known: {})", IDS.join(" "));
        }
    }
    let run_one = |id: &str| -> Option<Series> {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == id) {
            return None;
        }
        eprintln!("[figures] running {id}{}…", if quick { " (quick)" } else { "" });
        Some(match id {
            "F1" => experiments::fig1::run(quick),
            "F2" => experiments::fig2::run(quick),
            "F3" => experiments::fig3::run(quick),
            "F4" => experiments::f4::run(quick),
            "T1" => experiments::t1::run(quick),
            "T2" => experiments::t2::run(quick),
            "S1" => experiments::s1::run(quick),
            "A1" => experiments::a1::run(quick),
            "A2" => experiments::a2::run(quick),
            "A3" => experiments::a3::run(quick),
            "A4" => experiments::a4::run(quick),
            "A5" => experiments::a5::run(quick),
            _ => unreachable!(),
        })
    };
    let _ = std::fs::create_dir_all("results");
    let mut ran = 0;
    for id in IDS {
        let Some(series) = run_one(id) else { continue };
        ran += 1;
        println!("{}", series.to_text());
        let path = format!("results/{}.json", id.to_lowercase());
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                let _ = writeln!(f, "{}", series.to_json());
                eprintln!("[figures] wrote {path}");
            }
            Err(e) => eprintln!("[figures] could not write {path}: {e}"),
        }
    }
    if ran == 0 {
        usage_exit();
    }
}
