//! Shared rack-ring storm workload for the sharded-engine benchmarks and
//! the F5 scaling figure.
//!
//! The fabric is [`rdv_netsim::topo::build_rack_ring`]: `racks` top-of-rack
//! switches in a trunk ring, `hosts_per_rack` hosts each, one region (=
//! shard candidate) per rack. The traffic mixes the two classes the
//! sharded engine distinguishes:
//!
//! * **intra-rack bounces** — every host storms its switch with a `burst`
//!   of packets and bounces each echo until its budget is spent; rack =
//!   region, so this parallelizes freely inside lookahead windows;
//! * **trunk relays** — every switch launches hop-bounded ring packets
//!   that cross shard boundaries and exercise the barrier merge.
//!
//! [`run_fabric`] returns the event count and final clock, which together
//! fingerprint the run: the engine guarantees they are identical for every
//! shard count, and every harness built on this module asserts it.

use rdv_netsim::topo::build_rack_ring;
use rdv_netsim::trace::{EventId, SampleSpec, Tracer};
use rdv_netsim::{LinkSpec, Node, NodeCtx, Packet, PortId, Sim, SimConfig, SimTime};

/// Trace-ring capacity for sampled storm runs; sampling keeps the
/// recorded stream far below this.
const TRACE_CAPACITY: usize = 1 << 20;

/// Workload shape: fabric size and per-node traffic budgets.
#[derive(Debug, Clone, Copy)]
pub struct FabricSpec {
    /// Top-of-rack switches in the trunk ring.
    pub racks: usize,
    /// Hosts under each switch.
    pub hosts_per_rack: usize,
    /// Packets each host launches at start.
    pub burst: u64,
    /// Echo bounces each host serves before going quiet.
    pub bounces: u64,
    /// Ring packets each switch launches at start.
    pub ring_packets: u64,
    /// Trunk hops each ring packet survives.
    pub ring_hops: u64,
}

impl FabricSpec {
    /// Total host count (`racks * hosts_per_rack`).
    pub fn hosts(&self) -> usize {
        self.racks * self.hosts_per_rack
    }
}

/// Host edge link: 500 ns / 8 Gbps.
pub fn host_link() -> LinkSpec {
    LinkSpec {
        latency: SimTime::from_nanos(500),
        bandwidth_bps: 8_000_000_000,
        queue_bytes: 1 << 20,
        loss_permille: 0,
    }
}

/// Inter-switch trunk link: 2 µs / 40 Gbps.
pub fn trunk_link() -> LinkSpec {
    LinkSpec {
        latency: SimTime::from_micros(2),
        bandwidth_bps: 40_000_000_000,
        queue_bytes: 1 << 22,
        loss_permille: 0,
    }
}

/// Storms its uplink (port 0) and bounces every echo until spent. Each
/// host's whole bounce chain is one `fabric.storm` span rooted at start:
/// under sampled tracing a kept host records every echo leg of its chain
/// and an unsampled host records nothing, which is what makes tracing
/// affordable on the 100 k-host F5 fabrics.
struct StormHost {
    index: u64,
    burst: u64,
    remaining: u64,
    span: Option<EventId>,
}

impl Node for StormHost {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.trace.sample("fabric.storm", self.index);
        self.span = ctx.trace.span_begin("fabric.storm", self.index);
        for i in 0..self.burst {
            ctx.send(PortId(0), Packet::new(vec![0u8; 64], i));
        }
    }
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, port: PortId, packet: Packet) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(port, packet);
            if self.remaining == 0 {
                ctx.trace.span_end("fabric.storm", self.span.take());
            }
        }
    }
    fn name(&self) -> &str {
        "host"
    }
}

/// Echoes host traffic; relays trunk traffic to the next switch in the
/// ring until the packet's hop budget (carried in `trace`) is spent.
struct RingSwitch {
    host_ports: usize,
    next_trunk: PortId,
    ring_packets: u64,
    ring_hops: u64,
}

impl Node for RingSwitch {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        for _ in 0..self.ring_packets {
            ctx.send(self.next_trunk, Packet::new(vec![0u8; 128], self.ring_hops));
        }
    }
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, port: PortId, packet: Packet) {
        if port.0 < self.host_ports {
            ctx.send(port, packet);
        } else if packet.trace > 0 {
            ctx.send(self.next_trunk, Packet::new(packet.payload, packet.trace - 1));
        }
    }
    fn name(&self) -> &str {
        "switch"
    }
}

/// One full fabric storm at `shards`. Returns `(events, final clock ns)` —
/// the run fingerprint, identical for every shard count.
pub fn run_fabric(spec: &FabricSpec, seed: u64, shards: usize) -> (u64, u64) {
    storm(spec, seed, shards, None).0
}

/// [`run_fabric`] with deterministic sampled tracing: hosts whose
/// `fabric.storm` chain wins the sample verdict record their full bounce
/// chain into the returned ring. Also returns display names indexed by
/// node id for the Perfetto export. The fingerprint is unchanged —
/// tracing records events, it never adds any.
pub fn run_fabric_traced(
    spec: &FabricSpec,
    seed: u64,
    shards: usize,
    sample: &SampleSpec,
) -> ((u64, u64), Tracer, Vec<String>) {
    let (fp, traced) = storm(spec, seed, shards, Some(sample));
    let (tracer, names) = traced.expect("traced run");
    (fp, tracer, names)
}

/// `(fingerprint, Some((tracer, node names)) when sampling was armed)`.
type StormOutput = ((u64, u64), Option<(Tracer, Vec<String>)>);

fn storm(spec: &FabricSpec, seed: u64, shards: usize, sample: Option<&SampleSpec>) -> StormOutput {
    let mut sim = Sim::new(SimConfig { seed, shards, ..Default::default() });
    if let Some(spec) = sample {
        sim.enable_trace_sampled(TRACE_CAPACITY, spec.clone());
    }
    let hpr = spec.hosts_per_rack;
    let (ring_packets, ring_hops) = (spec.ring_packets, spec.ring_hops);
    let (burst, bounces) = (spec.burst, spec.bounces);
    let ring = build_rack_ring(
        &mut sim,
        spec.racks,
        hpr,
        |_| {
            Box::new(RingSwitch {
                host_ports: hpr,
                // Host links are wired first, so the first trunk port is
                // the one towards the next switch in the ring.
                next_trunk: PortId(hpr),
                ring_packets,
                ring_hops,
            })
        },
        |i| Box::new(StormHost { index: i as u64, burst, remaining: bounces, span: None }),
        host_link(),
        trunk_link(),
    );
    let events = sim.run_until_idle();
    debug_assert_eq!(ring.hosts.len(), spec.hosts());
    let traced = sample.is_some().then(|| {
        let count = ring.switches.len() + ring.hosts.len();
        let mut names = vec![String::new(); count];
        for (r, &id) in ring.switches.iter().enumerate() {
            names[id.0] = format!("sw{r}");
        }
        for (i, &id) in ring.hosts.iter().enumerate() {
            names[id.0] = format!("h{}.{}", i / hpr, i % hpr);
        }
        (sim.take_tracer(), names)
    });
    ((events, sim.now().as_nanos()), traced)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: FabricSpec = FabricSpec {
        racks: 4,
        hosts_per_rack: 3,
        burst: 4,
        bounces: 20,
        ring_packets: 8,
        ring_hops: 12,
    };

    #[test]
    fn storm_fingerprint_is_shard_invariant() {
        let flat = run_fabric(&SPEC, 7, 1);
        assert!(flat.0 > 0 && flat.1 > 0);
        for shards in [2usize, 4, 8] {
            assert_eq!(run_fabric(&SPEC, 7, shards), flat, "shards={shards}");
        }
    }

    #[test]
    fn workload_knobs_change_the_fingerprint() {
        let base = run_fabric(&SPEC, 7, 1);
        let bigger = run_fabric(&FabricSpec { bounces: 40, ..SPEC }, 7, 1);
        assert!(bigger.0 > base.0, "more bounces must mean more events");
    }
}
