//! Regression test for the parallel harness: fanning sweep points over
//! threads must not change a single output byte. Every point derives its
//! own seed and rows are reassembled in point order, so a serial run and
//! a 4-way run of the same experiment must serialize identically.

use rdv_bench::experiments::fig2;
use rdv_bench::par::set_jobs;

#[test]
fn quick_f2_is_byte_identical_serial_vs_parallel() {
    set_jobs(1);
    let serial = fig2::run(true);
    set_jobs(4);
    let parallel = fig2::run(true);
    set_jobs(0);
    assert_eq!(serial.to_json(), parallel.to_json(), "results/f2.json must not depend on --jobs");
    assert_eq!(serial.to_text(), parallel.to_text());
}
