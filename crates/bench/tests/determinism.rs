//! Regression test for the parallel harness: fanning sweep points over
//! threads must not change a single output byte. Every point derives its
//! own seed and rows are reassembled in point order, so a serial run and
//! a 4-way run of the same experiment must serialize identically.

use rdv_bench::experiments::{fig2, trace};
use rdv_bench::par::set_jobs;

#[test]
fn quick_f2_is_byte_identical_serial_vs_parallel() {
    set_jobs(1);
    let serial = fig2::run(true);
    set_jobs(4);
    let parallel = fig2::run(true);
    set_jobs(0);
    assert_eq!(serial.to_json(), parallel.to_json(), "results/f2.json must not depend on --jobs");
    assert_eq!(serial.to_text(), parallel.to_text());
}

#[test]
fn trace_json_is_byte_identical_across_runs_and_jobs() {
    set_jobs(1);
    let serial = trace::run("F3", true).expect("F3 is traceable");
    set_jobs(4);
    let parallel = trace::run("F3", true).expect("F3 is traceable");
    set_jobs(0);
    let again = trace::run("F3", true).expect("F3 is traceable");
    assert_eq!(serial.json, parallel.json, "results/trace_f3.json must not depend on --jobs");
    assert_eq!(serial.json, again.json, "repeat runs must be byte-identical");
    assert_eq!(serial.summary, parallel.summary);
    assert_eq!(serial.summary, again.summary);
}
