//! Criterion wall-clock cross-check of the S1 phases: serialize,
//! deserialize+load, in-place use after byte copy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdv_core::modelobj::{infer_in_place, model_to_object};
use rdv_objspace::{ObjId, Object};
use rdv_wire::cost::CostMeter;
use rdv_wire::sparsemodel::{
    deserialize_model, load_model, serialize_model, SparseModel, SparseModelSpec,
};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("s1_serialization");
    for rows in [128usize, 512] {
        let spec =
            SparseModelSpec { layers: 4, rows, cols: rows, nnz_per_row: 8, vocab: rows, seed: 21 };
        let model = SparseModel::generate(&spec);
        let mut meter = CostMeter::new();
        let bytes = serialize_model(&model, &mut meter);
        let activation: Vec<f32> = (0..rows).map(|i| i as f32 / rows as f32).collect();

        group.bench_with_input(BenchmarkId::new("rpc_deser_load_infer", rows), &rows, |b, _| {
            b.iter(|| {
                let mut m = CostMeter::new();
                let decoded = deserialize_model(&bytes, &mut m).unwrap();
                let loaded = load_model(decoded, &mut m);
                loaded.infer(&activation, &mut m)
            })
        });

        let obj = model_to_object(ObjId(1), &model).unwrap();
        let image = obj.to_image();
        group.bench_with_input(BenchmarkId::new("gas_bytecopy_infer", rows), &rows, |b, _| {
            b.iter(|| {
                // The entire "move + use" path: byte copy, then use in place.
                let moved = Object::from_image(&image).unwrap();
                infer_in_place(&moved, &activation).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
