//! Criterion wall-clock timing for the A2 middleware sweep (the whole
//! simulated scenario per iteration).

use criterion::{criterion_group, criterion_main, Criterion};
use rdv_bench::experiments::a2;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_middleware");
    group.sample_size(10);
    group.bench_function("full_sweep_quick", |b| b.iter(|| a2::run(true)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
