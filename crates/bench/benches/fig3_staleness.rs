//! Criterion wall-clock timing for the Figure 3 staleness sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdv_discovery::scenario::run_discovery;
use rdv_discovery::{DiscoveryMode, ScenarioConfig, ScenarioKind, StalenessMode};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_staleness");
    group.sample_size(10);
    for pct_moved in [0u8, 50, 90] {
        group.bench_with_input(
            BenchmarkId::from_parameter(pct_moved),
            &pct_moved,
            |b, &pct_moved| {
                b.iter(|| {
                    run_discovery(&ScenarioConfig {
                        kind: ScenarioKind::Fig3Staleness { pct_moved },
                        mode: DiscoveryMode::E2E,
                        staleness: StalenessMode::InvalidateOnMove,
                        accesses: 100,
                        ..Default::default()
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
