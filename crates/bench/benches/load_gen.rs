//! `load_gen` — traffic-plane generation throughput (arrivals/sec
//! *generated*, no simulation): the open-loop Poisson/Zipf/churn schedule
//! and the replicated-log batch fold. F6 and the chaos soak regenerate
//! schedules constantly, so generation must stay cheap relative to the
//! engine's event loop; this bench is regression-tracked in
//! `results/bench_baseline.json` alongside the engine benches.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rdv_load::replog::batches;
use rdv_load::{ArrivalSchedule, ChurnSpec, LoadCurve, OpenLoopSpec, ReplogSpec, Spike};
use rdv_netsim::SimTime;

fn spec() -> OpenLoopSpec {
    // A million-client id space at 2M ops/s for 4ms of sim time, with the
    // full feature set turned on: diurnal curve + flash-crowd spike,
    // heavy Zipf skew, and a churned client pool.
    let mut open = OpenLoopSpec::flat(1_000_000, 64, 2_000_000, SimTime::from_millis(4));
    open.zipf_skew_permille = 1_100;
    open.curve = LoadCurve::diurnal().with_spike(Spike {
        at_permille: 400,
        dur_permille: 150,
        add_permille: 1_500,
    });
    open.churn =
        Some(ChurnSpec { initial_active: 100_000, join_per_s: 5_000_000, leave_per_s: 5_000_000 });
    open
}

fn bench(c: &mut Criterion) {
    let open = spec();
    let replog = ReplogSpec {
        writers: 8,
        heads: 64,
        entry_bytes: 64,
        batch_window: SimTime::from_micros(20),
    };
    let schedule = ArrivalSchedule::generate(&open, 42);
    assert!(schedule.arrivals.len() > 1_000, "workload too small to time");

    let mut group = c.benchmark_group("load_gen");
    group.sample_size(10);
    group.throughput(Throughput::Elements(schedule.arrivals.len() as u64));
    group.bench_function("open_loop_schedule", |b| {
        b.iter(|| black_box(ArrivalSchedule::generate(&open, 42)))
    });
    group.bench_function("schedule_plus_batches", |b| {
        b.iter(|| {
            let s = ArrivalSchedule::generate(&open, 42);
            black_box(batches(&s, &replog))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
