//! Criterion wall-clock timing for the Figure 2 discovery sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdv_discovery::scenario::run_discovery;
use rdv_discovery::{DiscoveryMode, ScenarioConfig, ScenarioKind, StalenessMode};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_discovery");
    group.sample_size(10);
    for pct_new in [0u8, 50, 90] {
        for (mode, label) in
            [(DiscoveryMode::Controller, "controller"), (DiscoveryMode::E2E, "e2e")]
        {
            group.bench_with_input(BenchmarkId::new(label, pct_new), &pct_new, |b, &pct_new| {
                b.iter(|| {
                    run_discovery(&ScenarioConfig {
                        kind: ScenarioKind::Fig2NewObjects { pct_new },
                        mode,
                        staleness: StalenessMode::InvalidateOnMove,
                        accesses: 200,
                        num_objects: 64,
                        ..Default::default()
                    })
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
