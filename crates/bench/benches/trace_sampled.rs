//! `trace_sampled` — cost of deterministic sampled tracing on the fabric
//! storm hot path. Three arms run the byte-identical storm: tracing
//! disabled, selective sampling at 20‰ (the always-on production
//! setting F5/F8 rely on), and full recording (every event kept). The
//! claim the baseline pins is that the sampled arm stays within noise of
//! the disabled arm — the per-event cost of an armed-but-skipping
//! sampler is one hash-based verdict lookup — while full recording is
//! the expensive mode you only reach for in postmortems. Regression-
//! tracked in `results/bench_baseline.json` alongside the engine benches.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rdv_bench::fabric::{run_fabric, run_fabric_traced, FabricSpec};
use rdv_netsim::trace::SampleSpec;

const SEED: u64 = 0x7_5A3;

/// 256-host fabric, small enough to iterate but busy enough that the
/// per-event sampler verdict dominates setup cost.
const SPEC: FabricSpec = FabricSpec {
    racks: 8,
    hosts_per_rack: 32,
    burst: 2,
    bounces: 8,
    ring_packets: 8,
    ring_hops: 8,
};

/// The production shape: nothing kept by default, `fabric.storm` chains
/// sampled at 20‰ — so roughly five of the 256 hosts record their full
/// bounce chain and the rest pay only the verdict hash.
fn sampled_spec() -> SampleSpec {
    SampleSpec { seed: SEED ^ 0x5A, default_permille: 0, classes: vec![("fabric.storm", 20)] }
}

fn bench(c: &mut Criterion) {
    // One storm's event count, shared by all arms: tracing records
    // events, it never adds any, so the fingerprint must not move.
    let fp = run_fabric(&SPEC, SEED, 1);
    assert!(fp.0 > 0);
    let (fp_sampled, tracer, _) = run_fabric_traced(&SPEC, SEED, 1, &sampled_spec());
    assert_eq!(fp, fp_sampled, "sampling must not perturb the run");
    assert!(tracer.count() > 0, "20‰ must keep at least one chain");
    let (fp_full, full_tracer, _) = run_fabric_traced(&SPEC, SEED, 1, &SampleSpec::keep_all(SEED));
    assert_eq!(fp, fp_full, "full recording must not perturb the run");
    assert!(full_tracer.count() > tracer.count());

    let mut group = c.benchmark_group("trace_sampled");
    group.sample_size(10);
    group.throughput(Throughput::Elements(fp.0));
    group.bench_function("disabled", |b| b.iter(|| black_box(run_fabric(&SPEC, SEED, 1))));
    group.bench_function("sampled_20pm", |b| {
        b.iter(|| black_box(run_fabric_traced(&SPEC, SEED, 1, &sampled_spec()).0))
    });
    group.bench_function("full_recording", |b| {
        b.iter(|| black_box(run_fabric_traced(&SPEC, SEED, 1, &SampleSpec::keep_all(SEED)).0))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
