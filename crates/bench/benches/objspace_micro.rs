//! Micro-benchmarks of the object-space primitives: the byte-copy movement
//! path, pointer make/resolve, FOT interning, and store snapshots. These
//! are the raw costs underneath every macro experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rdv_objspace::{FotFlags, ObjId, Object, ObjectKind, ObjectStore};

fn build_object(kb: usize, refs: usize) -> Object {
    let mut obj = Object::with_capacity(ObjId(7), ObjectKind::Data, 1 << 24);
    let data = obj.alloc(kb as u64 * 1024).unwrap();
    obj.write(data, &vec![0xAB; kb * 1024]).unwrap();
    for i in 0..refs {
        let cell = obj.alloc(8).unwrap();
        let ptr = obj.make_ptr(ObjId(1000 + i as u128 % 64), 8, FotFlags::RO).unwrap();
        obj.write_ptr(cell, ptr).unwrap();
    }
    obj
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("objspace_micro");

    for kb in [4usize, 64, 1024] {
        let obj = build_object(kb, 64);
        let image = obj.to_image();
        group.throughput(Throughput::Bytes(image.len() as u64));
        group.bench_with_input(BenchmarkId::new("move_byte_copy", kb), &kb, |b, _| {
            // The full movement path: serialize + deserialize, no fix-ups.
            b.iter(|| Object::from_image(&obj.to_image()).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("objspace_pointers");
    let obj = build_object(4, 1024);
    group.bench_function("resolve_ptr", |b| {
        let ptr = obj.read_ptr(4096 + 8).unwrap();
        b.iter(|| obj.resolve_ptr(ptr).unwrap())
    });
    group.bench_function("make_ptr_interned", |b| {
        let mut obj = build_object(4, 64);
        b.iter(|| obj.make_ptr(ObjId(1010), 8, FotFlags::RO).unwrap())
    });
    group.finish();

    let mut group = c.benchmark_group("objspace_snapshot");
    let mut rng = StdRng::seed_from_u64(1);
    let mut store = ObjectStore::new();
    for _ in 0..64 {
        let id = store.create(&mut rng, ObjectKind::Data);
        store.get_mut(id).unwrap().alloc(4096).unwrap();
    }
    let snap = store.to_snapshot();
    group.throughput(Throughput::Bytes(snap.len() as u64));
    group.bench_function("persist_64x4k", |b| b.iter(|| store.to_snapshot()));
    group
        .bench_function("restore_64x4k", |b| b.iter(|| ObjectStore::from_snapshot(&snap).unwrap()));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
