//! Criterion wall-clock timing for the A1 prefetch ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdv_core::runtime::PrefetchPolicy;
use rdv_core::scenarios::{run_a1, A1Config};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_prefetch");
    group.sample_size(10);
    for (label, policy) in [
        ("none", PrefetchPolicy::None),
        ("adjacency", PrefetchPolicy::Adjacency { window: 3 }),
        ("reachability", PrefetchPolicy::Reachability),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, &policy| {
            b.iter(|| {
                run_a1(&A1Config {
                    nodes: 48,
                    decoys: 144,
                    policy,
                    scattered: true,
                    ..Default::default()
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
