//! Criterion timing of table fill and lookup at the §3.2 capacity point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdv_bench::experiments::t1::fill_to_rejection;
use rdv_p4rt::capacity::SramBudget;
use rdv_p4rt::table::{Action, MatchKind, Table, TableEntry};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1_capacity");
    let budget = SramBudget { total_bits: 2_560_000, ..SramBudget::tofino() };
    for bits in [64u64, 128] {
        group.bench_with_input(BenchmarkId::new("fill", bits), &bits, |b, &bits| {
            b.iter(|| fill_to_rejection(budget, bits))
        });
    }
    // Lookup throughput on a full table.
    let mut table = Table::new("t", vec![1], MatchKind::Exact, 128, budget);
    let cap = budget.max_entries(128);
    for i in 0..cap {
        table
            .insert(TableEntry::Exact { key: vec![u128::from(i) + 1] }, Action::Forward(1))
            .unwrap();
    }
    group.bench_function("lookup_hit", |b| {
        let mut i = 0u128;
        b.iter(|| {
            i = (i + 1) % u128::from(cap);
            table.lookup(&[0, i + 1, 0]).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
