//! `engine_shards` — parallel engine throughput (events/sec) on a
//! rack-ring fabric at 1, 4, and 8 shards.
//!
//! The workload is [`rdv_bench::fabric`]'s rack-ring storm: intra-rack
//! bounces that parallelize freely plus trunk relays that cross shard
//! boundaries and exercise the barrier merge. All three shard counts
//! process byte-identical simulations (the engine guarantees it; the
//! harness asserts equal event counts and final clocks), so the
//! throughput ratio isolates the parallel speedup. On a single-core box
//! the 4- and 8-shard numbers measure scheduling overhead instead — see
//! EXPERIMENTS.md §F5.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rdv_bench::fabric::{run_fabric, FabricSpec};

const SPEC: FabricSpec = FabricSpec {
    racks: 8,
    hosts_per_rack: 4,
    burst: 8,
    bounces: 400,
    ring_packets: 64,
    ring_hops: 24,
};

fn bench(c: &mut Criterion) {
    let flat = run_fabric(&SPEC, 42, 1);
    assert!(flat.0 > 0, "the storm must generate events");

    let mut group = c.benchmark_group("engine_shards");
    group.sample_size(10);
    group.throughput(Throughput::Elements(flat.0));
    for shards in [1usize, 4, 8] {
        // Identical simulation at every shard count — the bench is only
        // valid if the parallel runs do the same work.
        assert_eq!(run_fabric(&SPEC, 42, shards), flat, "shards={shards} diverged from flat");
        group.bench_function(format!("rack_ring_shards{shards}"), |b| {
            b.iter(|| black_box(run_fabric(&SPEC, 42, shards)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
