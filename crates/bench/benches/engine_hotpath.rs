//! `engine_hotpath` — raw event-loop throughput (events/sec) under a
//! two-node packet storm.
//!
//! Two engines run the identical storm:
//!
//! * the real `rdv_netsim::Sim`, whose hot path uses interned counter IDs
//!   (`inc_id` = bounds check + index), a plain event-budget field, and
//!   `mem::take`n scratch action buffers (no steady-state allocation);
//! * a transcription of the seed engine's hot path (`seed` module below):
//!   string-keyed `BTreeMap` counters paying a `String` allocation per
//!   `inc`, a `counters.get("sim.events")` map lookup per event for the
//!   budget check, and per-callback owned action vectors.
//!
//! Everything else — heap discipline, link admission math, dyn node
//! dispatch, port lookup — is identical, so the throughput ratio isolates
//! the cost of the string-keyed bookkeeping the refactor removed.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rdv_netsim::{
    CounterId, Counters, LinkSpec, Node, NodeCtx, Packet, PortId, Sim, SimConfig, SimTime,
};

const BOUNCES: u64 = 10_000;
const WINDOW: u64 = 8;

fn storm_link() -> LinkSpec {
    LinkSpec {
        latency: SimTime::from_nanos(500),
        bandwidth_bps: 8_000_000_000,
        queue_bytes: 1 << 20,
        loss_permille: 0,
    }
}

/// Per-packet accounting every protocol node in this repo performs (see
/// `GasHostNode`, `SwitchNode`, `HostNode`): packet and byte counters on
/// both directions. Interned once at node construction.
struct HostCtr {
    rx_packets: CounterId,
    rx_bytes: CounterId,
    tx_packets: CounterId,
    tx_bytes: CounterId,
}

impl HostCtr {
    fn intern() -> HostCtr {
        HostCtr {
            rx_packets: CounterId::intern("host.rx_packets"),
            rx_bytes: CounterId::intern("host.rx_bytes"),
            tx_packets: CounterId::intern("host.tx_packets"),
            tx_bytes: CounterId::intern("host.tx_bytes"),
        }
    }
}

/// Sends a window of packets at start, then bounces every arrival back
/// until its budget is spent, keeping rx/tx accounts like a real host.
struct Storm {
    remaining: u64,
    counters: Counters,
    ctr: HostCtr,
}

impl Storm {
    fn new(remaining: u64) -> Storm {
        Storm { remaining, counters: Counters::new(), ctr: HostCtr::intern() }
    }
}

impl Node for Storm {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        for i in 0..WINDOW {
            ctx.send(PortId(0), Packet::new(vec![0u8; 64], i));
        }
    }
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, port: PortId, packet: Packet) {
        self.counters.inc_id(self.ctr.rx_packets);
        self.counters.add_id(self.ctr.rx_bytes, packet.wire_len() as u64);
        if self.remaining > 0 {
            self.remaining -= 1;
            self.counters.inc_id(self.ctr.tx_packets);
            self.counters.add_id(self.ctr.tx_bytes, packet.wire_len() as u64);
            ctx.send(port, packet);
        }
    }
    fn name(&self) -> &str {
        "storm"
    }
}

/// Reflects every packet back out the port it arrived on, with the same
/// per-packet accounting.
struct Echo {
    counters: Counters,
    ctr: HostCtr,
}

impl Echo {
    fn new() -> Echo {
        Echo { counters: Counters::new(), ctr: HostCtr::intern() }
    }
}

impl Node for Echo {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, port: PortId, packet: Packet) {
        self.counters.inc_id(self.ctr.rx_packets);
        self.counters.add_id(self.ctr.rx_bytes, packet.wire_len() as u64);
        self.counters.inc_id(self.ctr.tx_packets);
        self.counters.add_id(self.ctr.tx_bytes, packet.wire_len() as u64);
        ctx.send(port, packet);
    }
    fn name(&self) -> &str {
        "echo"
    }
}

/// One full storm through the real engine. Returns events processed.
fn run_interned() -> u64 {
    let mut sim = Sim::new(SimConfig::default());
    let storm = sim.add_node(Box::new(Storm::new(BOUNCES)));
    let echo = sim.add_node(Box::new(Echo::new()));
    sim.connect(storm, echo, storm_link());
    sim.run_until_idle()
}

/// Transcription of the seed engine's hot path, trimmed to the features
/// the storm exercises (no RNG loss draws, no external timers — neither
/// fires in the interned run either). Kept deliberately line-for-line
/// close to the pre-refactor `rdv_netsim::engine`.
mod seed {
    use std::cmp::Reverse;
    use std::collections::{BTreeMap, BinaryHeap};

    use rdv_netsim::{LinkSpec, Packet, PortId, SimTime};

    /// The seed's `Counters`: string keys, `to_string()` on every touch.
    #[derive(Default)]
    pub struct StrCounters {
        inner: BTreeMap<String, u64>,
    }

    impl StrCounters {
        fn add(&mut self, name: &str, delta: u64) {
            *self.inner.entry(name.to_string()).or_insert(0) += delta;
        }
        fn inc(&mut self, name: &str) {
            self.add(name, 1);
        }
        fn get(&self, name: &str) -> u64 {
            self.inner.get(name).copied().unwrap_or(0)
        }
    }

    /// The seed's `NodeCtx`: action buffers owned by the context, born
    /// empty for every callback.
    pub struct Ctx {
        // Never read here, but constructed per callback exactly like the
        // seed's NodeCtx — the fresh `timers` Vec is part of the measured
        // allocation cost.
        #[allow(dead_code)]
        pub now: SimTime,
        pub sends: Vec<(PortId, Packet)>,
        #[allow(dead_code)]
        pub timers: Vec<(SimTime, u64)>,
    }

    impl Ctx {
        pub fn send(&mut self, port: PortId, packet: Packet) {
            self.sends.push((port, packet));
        }
    }

    /// Seed-shaped node behaviour (dyn-dispatched, like the real trait).
    pub trait Node {
        fn on_start(&mut self, ctx: &mut Ctx) {
            let _ = ctx;
        }
        fn on_packet(&mut self, ctx: &mut Ctx, port: PortId, packet: Packet);
    }

    enum EventKind {
        Deliver {
            node: usize,
            port: PortId,
            packet: Packet,
        },
        #[allow(dead_code)]
        Timer {
            node: usize,
            tag: u64,
        },
    }

    struct Event {
        at: SimTime,
        seq: u64,
        kind: EventKind,
    }

    impl PartialEq for Event {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl Eq for Event {}
    impl PartialOrd for Event {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Event {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.at, self.seq).cmp(&(other.at, other.seq))
        }
    }

    /// The seed's `Direction::admit`, verbatim (u128 backlog/tx math).
    #[derive(Default, Clone, Copy)]
    struct Direction {
        next_free: SimTime,
    }

    impl Direction {
        fn admit(&mut self, spec: &LinkSpec, now: SimTime, bytes: usize) -> Option<SimTime> {
            let backlog_ns = self.next_free.saturating_sub(now).as_nanos();
            let backlog_bytes =
                (backlog_ns as u128 * spec.bandwidth_bps as u128) / (8 * 1_000_000_000);
            if backlog_bytes + bytes as u128 > spec.queue_bytes as u128 {
                return None;
            }
            let start = self.next_free.max(now);
            let tx = (bytes as u128 * 8 * 1_000_000_000) / spec.bandwidth_bps as u128;
            let done = start + SimTime::from_nanos(tx as u64);
            self.next_free = done;
            Some(done + spec.latency)
        }
    }

    struct Link {
        spec: LinkSpec,
        ends: [(usize, PortId); 2],
        dirs: [Direction; 2],
    }

    impl Link {
        fn direction_from(&self, from: usize, port: PortId) -> Option<(usize, usize, PortId)> {
            if self.ends[0] == (from, port) {
                Some((0, self.ends[1].0, self.ends[1].1))
            } else if self.ends[1] == (from, port) {
                Some((1, self.ends[0].0, self.ends[0].1))
            } else {
                None
            }
        }
    }

    /// The seed engine, minus the features the storm never exercises.
    pub struct SeedSim {
        clock: SimTime,
        seq: u64,
        nodes: Vec<Box<dyn Node>>,
        ports: Vec<Vec<usize>>,
        links: Vec<Link>,
        heap: BinaryHeap<Reverse<Event>>,
        pub counters: StrCounters,
        max_events: u64,
    }

    impl SeedSim {
        pub fn new() -> SeedSim {
            SeedSim {
                clock: SimTime::ZERO,
                seq: 0,
                nodes: Vec::new(),
                ports: Vec::new(),
                links: Vec::new(),
                heap: BinaryHeap::new(),
                counters: StrCounters::default(),
                max_events: 200_000_000,
            }
        }

        pub fn add_node(&mut self, node: Box<dyn Node>) -> usize {
            self.nodes.push(node);
            self.ports.push(Vec::new());
            self.ports.len() - 1
        }

        pub fn connect(&mut self, a: usize, b: usize, spec: LinkSpec) {
            let pa = PortId(self.ports[a].len());
            let pb = PortId(self.ports[b].len());
            let id = self.links.len();
            self.links.push(Link {
                spec,
                ends: [(a, pa), (b, pb)],
                dirs: [Direction::default(); 2],
            });
            self.ports[a].push(id);
            self.ports[b].push(id);
        }

        fn apply_actions(&mut self, node: usize, sends: Vec<(PortId, Packet)>) {
            for (port, packet) in sends {
                self.counters.inc("sim.packets_sent");
                let Some(&link_id) = self.ports[node].get(port.0) else {
                    self.counters.inc("sim.packets_dropped.bad_port");
                    continue;
                };
                let link = &mut self.links[link_id];
                let Some((dir, dst, dst_port)) = link.direction_from(node, port) else {
                    self.counters.inc("sim.packets_dropped.bad_port");
                    continue;
                };
                let spec = link.spec;
                match link.dirs[dir].admit(&spec, self.clock, packet.wire_len()) {
                    Some(arrival) => {
                        let seq = self.seq;
                        self.seq += 1;
                        self.heap.push(Reverse(Event {
                            at: arrival,
                            seq,
                            kind: EventKind::Deliver { node: dst, port: dst_port, packet },
                        }));
                    }
                    None => {
                        self.counters.inc("sim.packets_dropped");
                    }
                }
            }
        }

        pub fn run_until_idle(&mut self) -> u64 {
            // start_if_needed
            for i in 0..self.nodes.len() {
                let mut ctx = Ctx { now: self.clock, sends: Vec::new(), timers: Vec::new() };
                self.nodes[i].on_start(&mut ctx);
                self.apply_actions(i, ctx.sends);
            }
            let mut processed = 0u64;
            while let Some(Reverse(ev)) = self.heap.peek() {
                let _ = ev;
                // Seed path: per-event budget check through the counter map.
                if self.counters.get("sim.events") >= self.max_events {
                    panic!("event storm");
                }
                let Reverse(ev) = self.heap.pop().unwrap();
                self.clock = ev.at;
                self.counters.inc("sim.events");
                processed += 1;
                match ev.kind {
                    EventKind::Deliver { node, port, packet } => {
                        self.counters.inc("sim.packets_delivered");
                        // Seed path: fresh action buffers per callback.
                        let mut ctx =
                            Ctx { now: self.clock, sends: Vec::new(), timers: Vec::new() };
                        self.nodes[node].on_packet(&mut ctx, port, packet);
                        self.apply_actions(node, ctx.sends);
                    }
                    EventKind::Timer { node, .. } => {
                        self.counters.inc("sim.timers");
                        let mut ctx =
                            Ctx { now: self.clock, sends: Vec::new(), timers: Vec::new() };
                        let _ = &mut ctx;
                        self.apply_actions(node, ctx.sends);
                    }
                }
            }
            processed
        }
    }

    /// Seed-trait twins of the storm nodes, with the accounting style the
    /// seed's protocol nodes used: string-keyed incs per packet.
    pub struct Storm {
        pub remaining: u64,
        pub counters: StrCounters,
    }

    impl Node for Storm {
        fn on_start(&mut self, ctx: &mut Ctx) {
            for i in 0..super::WINDOW {
                ctx.send(PortId(0), Packet::new(vec![0u8; 64], i));
            }
        }
        fn on_packet(&mut self, ctx: &mut Ctx, port: PortId, packet: Packet) {
            self.counters.inc("host.rx_packets");
            self.counters.add("host.rx_bytes", packet.wire_len() as u64);
            if self.remaining > 0 {
                self.remaining -= 1;
                self.counters.inc("host.tx_packets");
                self.counters.add("host.tx_bytes", packet.wire_len() as u64);
                ctx.send(port, packet);
            }
        }
    }

    pub struct Echo {
        pub counters: StrCounters,
    }

    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut Ctx, port: PortId, packet: Packet) {
            self.counters.inc("host.rx_packets");
            self.counters.add("host.rx_bytes", packet.wire_len() as u64);
            self.counters.inc("host.tx_packets");
            self.counters.add("host.tx_bytes", packet.wire_len() as u64);
            ctx.send(port, packet);
        }
    }
}

/// The same storm through the seed-engine transcription. Returns events
/// processed (must equal [`run_interned`]'s count for a fair ratio).
fn run_string_keyed() -> u64 {
    let mut sim = seed::SeedSim::new();
    let storm =
        sim.add_node(Box::new(seed::Storm { remaining: BOUNCES, counters: Default::default() }));
    let echo = sim.add_node(Box::new(seed::Echo { counters: Default::default() }));
    sim.connect(storm, echo, storm_link());
    sim.run_until_idle()
}

/// The event-queue workload a sharded 100k-host fabric generates: a deep
/// standing queue (one in-flight event per simulated flow) where each pop
/// schedules a successor at one of the fabric's natural delay scales —
/// host-link RTTs, trunk RTTs, pacing timers — plus a rare far-future
/// scenario deadline that lands beyond the calendar horizon. Delays are
/// chosen by a cycling deterministic pattern, not an RNG, so both queues
/// replay the identical schedule.
const QUEUE_OPS: u64 = 100_000;
const QUEUE_DEPTH: u64 = 8_192;
const FAR_EVERY: u64 = 512;

/// 600 ns / 1.2 µs host RTT traffic, 24 µs trunk hops, 100 µs pacing.
const DELAYS: [u64; 8] = [600, 1_200, 1_200, 2_400, 24_000, 24_000, 100_000, 1_200];

fn queue_delay(processed: u64) -> u64 {
    if processed.is_multiple_of(FAR_EVERY) {
        50_000_000
    } else {
        DELAYS[(processed % DELAYS.len() as u64) as usize]
    }
}

fn queue_storm_calendar() -> u64 {
    use rdv_netsim::queue::{CalendarQueue, EventKey};
    // The engine's own parameters: 4 µs buckets, 512-slot ring.
    let mut q: CalendarQueue<u64> = CalendarQueue::new(1 << 12, 512);
    for i in 0..QUEUE_DEPTH {
        q.push(EventKey { at: queue_delay(i), src: 1, seq: i }, i);
    }
    let mut processed = 0u64;
    while processed < QUEUE_OPS {
        let (key, _) = q.pop().expect("storm never drains");
        processed += 1;
        let seq = QUEUE_DEPTH + processed;
        q.push(EventKey { at: key.at + queue_delay(processed), src: 1, seq }, seq);
    }
    processed
}

fn queue_storm_heap() -> u64 {
    use rdv_netsim::queue::EventKey;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut q: BinaryHeap<Reverse<(EventKey, u64)>> = BinaryHeap::new();
    for i in 0..QUEUE_DEPTH {
        q.push(Reverse((EventKey { at: queue_delay(i), src: 1, seq: i }, i)));
    }
    let mut processed = 0u64;
    while processed < QUEUE_OPS {
        let Reverse((key, _)) = q.pop().expect("storm never drains");
        processed += 1;
        let seq = QUEUE_DEPTH + processed;
        q.push(Reverse((EventKey { at: key.at + queue_delay(processed), src: 1, seq }, seq)));
    }
    processed
}

fn bench(c: &mut Criterion) {
    let events = run_interned();
    let baseline_events = run_string_keyed();
    assert_eq!(events, baseline_events, "both engines must process the same storm");

    let mut group = c.benchmark_group("engine_hotpath");
    group.sample_size(20);
    group.throughput(Throughput::Elements(events));
    group.bench_function("packet_storm_interned", |b| b.iter(|| black_box(run_interned())));
    group.bench_function("packet_storm_string_keyed_baseline", |b| {
        b.iter(|| black_box(run_string_keyed()))
    });

    assert_eq!(queue_storm_calendar(), queue_storm_heap(), "same op count on both queues");
    group.throughput(Throughput::Elements(QUEUE_OPS));
    group.bench_function("queue_storm_calendar", |b| b.iter(|| black_box(queue_storm_calendar())));
    group.bench_function("queue_storm_heap_baseline", |b| b.iter(|| black_box(queue_storm_heap())));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
