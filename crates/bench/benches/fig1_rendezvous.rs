//! Criterion wall-clock timing for the Figure 1 strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdv_core::scenarios::{run_fig1, F1Config, F1Strategy};
use rdv_wire::sparsemodel::SparseModelSpec;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_rendezvous");
    group.sample_size(10);
    let model =
        SparseModelSpec { layers: 2, rows: 512, cols: 512, nnz_per_row: 16, vocab: 64, seed: 11 };
    for strategy in F1Strategy::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &strategy| b.iter(|| run_fig1(&F1Config { strategy, model, seed: 3 })),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
