//! `gossip_sync` — anti-entropy throughput of the sans-IO round machine
//! (entries applied per second, no simulation): the digest/delta exchange
//! every gossip-enabled host runs each round, and a full ring convergence
//! sweep. The F7 figure and the chaos soak's gossip family pump these
//! paths constantly, so the exchange must stay cheap relative to the
//! engine's event loop; this bench is regression-tracked in
//! `results/bench_baseline.json` alongside the engine benches.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rdv_gossip::sync::ctr;
use rdv_gossip::{GossipConfig, GossipSync};
use rdv_memproto::msg::Msg;
use rdv_netsim::stats::Counters;
use rdv_objspace::ObjId;

const INBOX_BASE: u128 = 0xB_0000;

fn inbox(i: usize) -> ObjId {
    ObjId(INBOX_BASE + i as u128)
}

/// A fresh pair: `a` holds `entries` facts, `b` holds none.
fn pair(entries: u64) -> (GossipSync, GossipSync) {
    let cfg = GossipConfig::default();
    let mut a = GossipSync::new(inbox(0), 1, cfg);
    let mut b = GossipSync::new(inbox(1), 2, cfg);
    a.add_peer(inbox(1), None);
    b.add_peer(inbox(0), None);
    for e in 0..entries {
        a.journal.record_holder(ObjId(0xF00 + e as u128), inbox(0), 100 + e);
    }
    (a, b)
}

/// Deliver until quiescent; returns messages delivered.
fn pump(nodes: &mut [GossipSync], counters: &mut Counters, mut inflight: Vec<Msg>) -> u64 {
    let mut delivered = 0u64;
    while let Some(msg) = inflight.pop() {
        delivered += 1;
        // Route on the destination inbox (nodes are inbox-ordered).
        let idx = (msg.header.dst.as_u128() - INBOX_BASE) as usize;
        inflight.extend(nodes[idx].on_msg(&msg, counters));
    }
    delivered
}

/// One node per ring slot, each holding `per_node` facts; pump rounds
/// until every journal fingerprint matches. Returns entries applied.
fn ring_converge(nodes: usize, per_node: u64) -> u64 {
    let cfg = GossipConfig::default();
    let mut ring: Vec<GossipSync> = (0..nodes)
        .map(|i| {
            let mut s = GossipSync::new(inbox(i), i as u64 + 1, cfg);
            s.add_peer(inbox((i + 1) % nodes), None);
            for e in 0..per_node {
                s.journal.record_holder(
                    ObjId(0x1000 * (i as u128 + 1) + e as u128),
                    inbox(i),
                    100 + e,
                );
            }
            s
        })
        .collect();
    let mut counters = Counters::new();
    for _ in 0..2 * nodes {
        let outs: Vec<Msg> = ring.iter_mut().flat_map(|n| n.on_round(0, &mut counters)).collect();
        pump(&mut ring, &mut counters, outs);
        let fp = ring[0].journal.fingerprint();
        if ring.iter().all(|n| n.journal.fingerprint() == fp) {
            break;
        }
    }
    let fp = ring[0].journal.fingerprint();
    assert!(ring.iter().all(|n| n.journal.fingerprint() == fp), "ring must converge");
    counters.get_id(ctr().entries_applied)
}

fn bench(c: &mut Criterion) {
    let entries = 1024u64;
    let mut group = c.benchmark_group("gossip_sync");
    group.sample_size(10);

    // One full three-leg exchange moving `entries` facts A -> B.
    group.throughput(Throughput::Elements(entries));
    group.bench_function("digest_delta_exchange", |b| {
        b.iter(|| {
            let (mut a, bn) = pair(entries);
            let mut counters = Counters::new();
            let first = a.on_round(0, &mut counters);
            let mut nodes = vec![a, bn];
            let delivered = pump(&mut nodes, &mut counters, first);
            assert_eq!(nodes[0].journal.fingerprint(), nodes[1].journal.fingerprint());
            black_box((delivered, counters.get_id(ctr().entries_applied)))
        })
    });

    // 64-node ring, 4 facts each, pumped to global convergence.
    let applied = ring_converge(64, 4);
    assert!(applied > 0);
    group.throughput(Throughput::Elements(applied));
    group.bench_function("ring_convergence_64", |b| b.iter(|| black_box(ring_converge(64, 4))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
