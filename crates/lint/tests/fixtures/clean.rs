//! Fixture: clean file — banned names in strings/comments are not findings.
// A comment may say HashMap and Instant::now freely.
const DOC: &str = "HashMap and SystemTime live in strings";
const RAW: &str = r#"thread_rng "quoted" env::var"#;

fn tidy(map: &mut rdv_det::DetMap<u32, u32>) {
    map.insert(1, 2);
    let _lifetime: &'static str = "ok";
    let _ch = 'h';
}
