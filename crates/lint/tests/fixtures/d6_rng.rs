// D6 fixture: RNG stream construction, cloning, and OS entropy.
fn streams(seed: u64, node: &NodeState, buf: &Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let other = StdRng::from_entropy();
    let dup = rng.clone();
    let shared = node.rngs.clone();
    let data = buf.clone();
    // rdv-lint: allow(rng-stream) -- fixture: pre-sim generator stream salt-split from the seed
    let gen = StdRng::seed_from_u64(seed ^ 0xA5);
}
