//! Fixture: D2 ambient nondeterminism.
use std::time::Instant;

fn naughty() {
    let t = Instant::now();
    let s = std::time::SystemTime::now();
    let r: u8 = rand::random();
    let mut rng = rand::thread_rng();
    let v = std::env::var("SEED");
}

fn excused() {
    // rdv-lint: allow(ambient-time) -- fixture: wall-clock probe
    let t = Instant::now();
}
