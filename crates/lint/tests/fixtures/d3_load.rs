//! Fixture: D3 discipline over the load-plane counter names.
fn naughty(c: &mut Counters) {
    c.add("load.bogus_counter", 1);
    c.inc("load.Bad");
    c.add("load.arrivals", 2);
    c.inc("load.completions");
    let n = c.get("load.failures");
    // rdv-lint: allow(counter-name) -- fixture: migration shim name
    c.add("load.legacy_shim", 1);
}
