// D5 fixture: engine internals reached from node/scenario code.
fn meddle(sim: &mut FakeSim, g: &Globals) {
    let q: CalendarQueue<u64> = CalendarQueue::new(4096, 512);
    let key = EventKey { at: 0, src: 1, seq: 0 };
    sim.shards[0].outbox.push((1, key, q));
    sim.drain_outboxes();
    sim.shards[1].process_window(g, 10, 100);
    let loc = sim.globals.node_loc[0];
    if sim.zero_lookahead {}
    // rdv-lint: allow(shard-interference) -- fixture: engine-side test helper drives one window
    sim.run_window(0, 1, 2);
}
