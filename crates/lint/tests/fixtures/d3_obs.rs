//! Fixture: D3 discipline over the observability-plane names — sampler
//! tallies (obs.*), flight-recorder counters (flight.*), and the
//! sampled-tracing span-label registry for plane-scoped labels.
fn naughty(c: &mut Counters, ctx: &mut Ctx) {
    c.add("obs.bogus_tally", 1);
    c.inc("flight.bogus_dumps");
    ctx.trace.sample("gossip.unregistered_round", 7);
    let s = ctx.trace.span_begin("load.bogus_batch", 1);
    ctx.trace.span_end("fabric.bogus_storm", s);
    c.add("obs.spans_sampled", 2);
    c.inc("flight.dumps");
    ctx.trace.sample("load.batch", 7);
    let ok = ctx.trace.span_begin("fabric.storm", 1);
    ctx.trace.span_end("gossip.round", ok);
    ctx.trace.span_begin("discovery.access", 2);
    // rdv-lint: allow(event-name) -- fixture: migration shim label
    ctx.trace.sample("load.legacy_batch", 8);
    // rdv-lint: allow(counter-name) -- fixture: migration shim tally
    c.add("obs.legacy_tally", 1);
}
