//! Fixture: malformed allow comments are diagnostics themselves.
// rdv-lint: allow(hash-order)
// rdv-lint: allow(made-up-category) -- why
// rdv-lint: allowance(hash-order) -- why
// rdv-lint: allow(hash-order -- why
fn f() {}
