//! Fixture: D1 hash-order violations.
use std::collections::HashMap;
use std::collections::HashSet;

fn naughty() {
    let m: HashMap<u32, u32> = HashMap::new();
    let s: HashSet<u32> = HashSet::new();
}

// rdv-lint: allow(hash-order) -- fixture: order never observed
fn excused() -> std::collections::HashMap<u32, u32> {
    std::collections::HashMap::new() // rdv-lint: allow(hash-order) -- same-line excuse
}
