//! Fixture: D3 discipline over the sharded-engine counter and gauge names.
fn naughty(c: &mut Counters, m: &mut MetricSample<'_>) {
    c.inc("sim.shard.bogus");
    m.gauge("shard.bogus_gauge", 1);
    c.inc("sim.shard.windows");
    c.add("sim.shard.xshard_packets", 2);
    c.add("sim.shard.worker_spawns", 3);
    m.gauge("shard.queue_events", 4);
    m.gauge("shard.clock_ns", 5);
}
