//! Fixture: D3 counter-name discipline.
fn naughty(c: &mut Counters) {
    c.add("Bad.Name", 1);
    c.inc("spaced name");
    c.add("trailing.", 1);
    let x = c.get("sim.unknown_counter");
    let id = CounterId::intern("Kebab-case");
    c.add("fine.name_2", 1);
    c.inc("sim.events");
    // rdv-lint: allow(counter-name) -- fixture: legacy dashboard name
    c.add("Legacy.Name", 1);
}
