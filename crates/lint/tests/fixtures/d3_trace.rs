fn trace_names(ctx: &mut Ctx) {
    let s = ctx.trace.span_begin("Discovery.Access", 1);
    ctx.trace.span_end("discovery access", s);
    ctx.trace.mark("discovery..broadcast", 2);
    ctx.trace.mark_linked("CamelCase", 3, s);
    let ok = ctx.trace.span_begin("discovery.access", 1);
    ctx.trace.span_end("discovery.access", ok);
    ctx.trace.mark("transport.retransmit_2", 4);
    // rdv-lint: allow(event-name) -- legacy label kept for trace diffing
    ctx.trace.mark("Legacy-Name", 5);
}
