// D7 fixture: dispatches over the `Body` wire enum.
enum Body {
    Ping(u64),
    Pong(u64),
    Halt,
}

fn on_msg_good(b: &Body) {
    match b {
        Body::Ping(x) => reply(*x),
        Body::Pong(_) => {}
        // Halt is not ours: name it in an ignore arm so D7 stays satisfied.
        Body::Halt => {}
    }
}

fn on_msg_bad(b: &Body) {
    match b {
        Body::Ping(x) => reply(*x),
        _ => {}
    }
}

// rdv-lint: allow(handler-parity) -- fixture: single-purpose demux, every other variant is opaque
fn on_msg_allowed(b: &Body) {
    if let Body::Ping(x) = b {
        reply(*x);
    }
}
