//! Fixture: D3 gauge-name discipline.
fn naughty(m: &mut MetricSample<'_>) {
    m.gauge("Link.QueueBytes", 1);
    m.rate_per_s("spaced gauge", 2);
    m.windowed_pct("trailing.", 3, 4);
    m.windowed_ratio_pct("fine.but_unregistered", 5, 6);
    m.gauge("link.queue_bytes", 7);
    m.rate_per_s("transport.inflight", 8);
    m.windowed_pct("link.queue_bytes", 9, 10);
    m.gauge(&format!("rate.{name}"), 11);
    // rdv-lint: allow(gauge-name) -- fixture: legacy dashboard gauge
    m.gauge("Legacy.Gauge", 12);
}
