//! Fixture: D4 wire parity — decode misses one variant.
pub enum Frame {
    Ping { seq: u64 },
    Pong { seq: u64 },
    Data(Vec<u8>),
}

impl Frame {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Frame::Ping { seq } => vec![1, *seq as u8],
            Frame::Pong { seq } => vec![2, *seq as u8],
            Frame::Data(d) => d.clone(),
        }
    }

    pub fn decode(b: &[u8]) -> Option<Frame> {
        match b.first()? {
            1 => Some(Frame::Ping { seq: 0 }),
            2 => Some(Frame::Pong { seq: 0 }),
            _ => None,
        }
    }
}
