//! Fixture tests: each rule fires with exact `file:line` diagnostics, the
//! allow-comment escape hatch suppresses, and the real workspace is clean.

use rdv_lint::rules::{
    enum_variants_in, lint_enum_parity, lint_handler_parity, lint_source, LintConfig, ParityTarget,
};
use rdv_lint::{lint_workspace, to_json, Diagnostic};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn stub_cfg() -> LintConfig {
    LintConfig {
        sim_registry: vec!["sim.events".to_string()],
        gauge_registry: vec!["link.queue_bytes".to_string(), "transport.inflight".to_string()],
        load_registry: ["load.arrivals", "load.completions", "load.failures"]
            .map(String::from)
            .to_vec(),
        gossip_registry: ["gossip.rounds", "gossip.digests_sent"].map(String::from).to_vec(),
        span_registry: ["gossip.round", "load.batch", "fabric.storm"].map(String::from).to_vec(),
        obs_registry: ["obs.spans_sampled", "obs.spans_skipped"].map(String::from).to_vec(),
        flight_registry: ["flight.dumps", "flight.events"].map(String::from).to_vec(),
    }
}

/// (line, rule) pairs, in output order.
fn locs(diags: &[Diagnostic]) -> Vec<(usize, &str)> {
    diags.iter().map(|d| (d.line, d.rule.as_str())).collect()
}

#[test]
fn d1_flags_every_hash_collection_and_honors_allows() {
    let diags = lint_source("d1_hash.rs", &fixture("d1_hash.rs"), &stub_cfg());
    assert_eq!(
        locs(&diags),
        vec![
            (2, "D1/hash-order"),
            (3, "D1/hash-order"),
            (6, "D1/hash-order"),
            (6, "D1/hash-order"),
            (7, "D1/hash-order"),
            (7, "D1/hash-order"),
        ],
        "lines 11–12 are excused by allow comments; diagnostics were: {diags:#?}"
    );
    assert!(diags[0].message.contains("DetMap"), "fix hint names the replacement");
}

#[test]
fn d2_flags_ambient_time_rand_env_but_not_bare_imports() {
    let diags = lint_source("d2_ambient.rs", &fixture("d2_ambient.rs"), &stub_cfg());
    assert_eq!(
        locs(&diags),
        vec![
            (5, "D2/ambient-time"),
            (6, "D2/ambient-time"),
            (7, "D2/ambient-rand"),
            (8, "D2/ambient-rand"),
            (9, "D2/ambient-env"),
        ],
        "line 2 `use Instant` and line 14 (allowed) must not fire; got: {diags:#?}"
    );
}

#[test]
fn d3_enforces_name_scheme_and_sim_registry() {
    let diags = lint_source("d3_counters.rs", &fixture("d3_counters.rs"), &stub_cfg());
    assert_eq!(
        locs(&diags),
        vec![
            (3, "D3/counter-name"),
            (4, "D3/counter-name"),
            (5, "D3/counter-name"),
            (6, "D3/counter-name"),
            (7, "D3/counter-name"),
        ],
        "good names (lines 8–9) and the allowed legacy name (line 11) must pass; \
         got: {diags:#?}"
    );
    assert!(diags[3].message.contains("not a registered engine counter"));
}

#[test]
fn d3_enforces_event_name_scheme_on_trace_labels() {
    let diags = lint_source("d3_trace.rs", &fixture("d3_trace.rs"), &stub_cfg());
    assert_eq!(
        locs(&diags),
        vec![
            (2, "D3/event-name"),
            (3, "D3/event-name"),
            (4, "D3/event-name"),
            (5, "D3/event-name"),
        ],
        "good labels (lines 6–8) and the allowed one (line 10) must pass; got: {diags:#?}"
    );
    assert!(diags[0].message.contains("dotted lowercase"));
}

#[test]
fn d3_enforces_gauge_name_scheme_and_registry() {
    let diags = lint_source("d3_gauges.rs", &fixture("d3_gauges.rs"), &stub_cfg());
    assert_eq!(
        locs(&diags),
        vec![
            (3, "D3/gauge-name"),
            (4, "D3/gauge-name"),
            (5, "D3/gauge-name"),
            (6, "D3/gauge-name"),
        ],
        "registered names (lines 7–9), dynamic names (line 10), and the allowed one \
         (line 12) must pass; got: {diags:#?}"
    );
    assert!(diags[0].message.contains("dotted lowercase"));
    assert!(diags[3].message.contains("not a registered gauge"));
}

#[test]
fn d3_covers_the_sharded_engine_names() {
    // Same D3 rules, registries extended the way the real workspace's are:
    // the shard counters live in ENGINE_SLOTS, the shard gauges in
    // GAUGE_NAMES. Unregistered `sim.shard.*` / `shard.*` names must fire.
    let cfg = LintConfig {
        sim_registry: [
            "sim.events",
            "sim.shard.windows",
            "sim.shard.xshard_packets",
            "sim.shard.worker_spawns",
        ]
        .map(String::from)
        .to_vec(),
        gauge_registry: ["shard.queue_events", "shard.clock_ns"].map(String::from).to_vec(),
        load_registry: Vec::new(),
        gossip_registry: Vec::new(),
        span_registry: Vec::new(),
        obs_registry: Vec::new(),
        flight_registry: Vec::new(),
    };
    let diags = lint_source("d3_shards.rs", &fixture("d3_shards.rs"), &cfg);
    assert_eq!(
        locs(&diags),
        vec![(3, "D3/counter-name"), (4, "D3/gauge-name")],
        "registered shard names (lines 5–9) must pass; got: {diags:#?}"
    );
    assert!(diags[0].message.contains("not a registered engine counter"));
    assert!(diags[1].message.contains("not a registered gauge"));
}

#[test]
fn d3_enforces_load_counter_registry() {
    let diags = lint_source("d3_load.rs", &fixture("d3_load.rs"), &stub_cfg());
    assert_eq!(
        locs(&diags),
        vec![(3, "D3/counter-name"), (4, "D3/counter-name")],
        "registered names (lines 5–7) and the allowed shim (line 9) must pass; got: {diags:#?}"
    );
    assert!(diags[0].message.contains("not a registered load-plane counter"));
    assert!(diags[1].message.contains("dotted lowercase"));
}

#[test]
fn d3_enforces_obs_flight_and_span_label_registries() {
    let diags = lint_source("d3_obs.rs", &fixture("d3_obs.rs"), &stub_cfg());
    assert_eq!(
        locs(&diags),
        vec![
            (5, "D3/counter-name"),
            (6, "D3/counter-name"),
            (7, "D3/event-name"),
            (8, "D3/event-name"),
            (9, "D3/event-name"),
        ],
        "registered names (lines 10–15), the unscoped discovery label (line 16), and \
         the allowed shims (lines 17–20) must pass; got: {diags:#?}"
    );
    assert!(diags[0].message.contains("not a registered sampler tally"));
    assert!(diags[1].message.contains("not a registered flight-recorder counter"));
    assert!(diags[2].message.contains("not a registered span label"));
}

/// The observability names the engine and protocol planes actually emit
/// are present in the real registries the workspace lint parses —
/// renaming a span label or a sampler/flight counter without updating
/// its table breaks here first.
#[test]
fn real_registries_carry_the_observability_names() {
    use rdv_lint::rules::{parse_flight_counters, parse_obs_counters, parse_span_labels};
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
    let event = std::fs::read_to_string(root.join("crates/trace/src/event.rs")).unwrap();
    let spans = parse_span_labels(&event);
    for name in ["gossip.round", "gossip.sync", "load.batch", "load.head_advance", "fabric.storm"] {
        assert!(spans.iter().any(|s| s == name), "{name} missing from SPAN_LABELS");
    }
    let sample = std::fs::read_to_string(root.join("crates/trace/src/sample.rs")).unwrap();
    let obs = parse_obs_counters(&sample);
    for name in ["obs.spans_sampled", "obs.spans_skipped"] {
        assert!(obs.iter().any(|s| s == name), "{name} missing from OBS_COUNTERS");
    }
    let flight = std::fs::read_to_string(root.join("crates/netsim/src/flight.rs")).unwrap();
    let counters = parse_flight_counters(&flight);
    for name in ["flight.dumps", "flight.events"] {
        assert!(counters.iter().any(|s| s == name), "{name} missing from FLIGHT_COUNTERS");
    }
}

/// The load-plane counters the harness actually emits are present in the
/// real registry the workspace lint parses — renaming a `load.*` tally
/// without updating `LOAD_COUNTERS` breaks here first.
#[test]
fn real_registry_carries_the_load_counters() {
    use rdv_lint::rules::parse_load_counters;
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
    let src = std::fs::read_to_string(root.join("crates/load/src/lib.rs")).unwrap();
    let counters = parse_load_counters(&src);
    for name in [
        "load.arrivals",
        "load.batches",
        "load.entries",
        "load.completions",
        "load.failures",
        "load.churn_joins",
        "load.churn_leaves",
    ] {
        assert!(counters.iter().any(|c| c == name), "{name} missing from LOAD_COUNTERS");
    }
}

/// The shard names the engine actually emits are present in the real
/// registries the workspace lint parses — if someone renames a slot, this
/// pins the D3 contract to the sharded engine's telemetry.
#[test]
fn real_registries_carry_the_shard_names() {
    use rdv_lint::rules::{parse_engine_slots, parse_gauge_names};
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
    let stats = std::fs::read_to_string(root.join("crates/netsim/src/stats.rs")).unwrap();
    let slots = parse_engine_slots(&stats);
    for name in ["sim.shard.windows", "sim.shard.xshard_packets", "sim.shard.worker_spawns"] {
        assert!(slots.iter().any(|s| s == name), "{name} missing from ENGINE_SLOTS");
    }
    let metrics = std::fs::read_to_string(root.join("crates/metrics/src/lib.rs")).unwrap();
    let gauges = parse_gauge_names(&metrics);
    for name in ["shard.queue_events", "shard.clock_ns"] {
        assert!(gauges.iter().any(|g| g == name), "{name} missing from GAUGE_NAMES");
    }
}

#[test]
fn gauge_name_table_is_validated() {
    use rdv_lint::rules::lint_gauge_names;
    let bad =
        "pub const GAUGE_NAMES: [&str; 2] = [\n    \"link.queue_bytes\",\n    \"Bad.Gauge\",\n];\n";
    let diags = lint_gauge_names("lib.rs", bad);
    assert_eq!(locs(&diags), vec![(3, "D3/gauge-name")], "got: {diags:#?}");
    let missing = "pub const OTHER: &[&str] = &[\"x\"];\n";
    let diags = lint_gauge_names("lib.rs", missing);
    assert_eq!(locs(&diags), vec![(1, "D3/gauge-name")], "unparseable table is a finding");
}

#[test]
fn event_name_table_is_validated() {
    use rdv_lint::rules::lint_event_names;
    let bad =
        "pub const EVENT_NAMES: &[&str] = &[\n    \"packet.enqueue\",\n    \"Bad.Name\",\n];\n";
    let diags = lint_event_names("event.rs", bad);
    assert_eq!(locs(&diags), vec![(3, "D3/event-name")], "got: {diags:#?}");
    let missing = "pub const OTHER: &[&str] = &[\"x\"];\n";
    let diags = lint_event_names("event.rs", missing);
    assert_eq!(locs(&diags), vec![(1, "D3/event-name")], "unparseable table is a finding");
}

#[test]
fn d4_reports_decode_missing_a_variant() {
    let target = [ParityTarget { enum_name: "Frame", fns: &["encode", "decode"] }];
    let diags = lint_enum_parity("d4_parity.rs", &fixture("d4_parity.rs"), &target);
    assert_eq!(locs(&diags), vec![(17, "D4/wire-parity")], "got: {diags:#?}");
    assert!(diags[0].message.contains("Frame::Data"));
    assert!(diags[0].message.contains("fn decode"));
}

#[test]
fn d5_flags_engine_internals_outside_the_barrier_files() {
    let diags = lint_source("d5_shard.rs", &fixture("d5_shard.rs"), &stub_cfg());
    assert_eq!(
        locs(&diags),
        vec![
            (3, "D5/shard-interference"),
            (3, "D5/shard-interference"),
            (4, "D5/shard-interference"),
            (5, "D5/shard-interference"),
            (6, "D5/shard-interference"),
            (7, "D5/shard-interference"),
            (8, "D5/shard-interference"),
            (9, "D5/shard-interference"),
        ],
        "the allowed window-drive on line 11 must pass; got: {diags:#?}"
    );
    assert!(diags[0].message.contains("outbox"), "fix hint names the sanctioned channel");
}

#[test]
fn d5_and_d6_exempt_the_engine_internal_files() {
    // The same source is a violation in node code but legitimate inside the
    // engine's own barrier internals (the exemption is path-keyed).
    let src = "fn seed(gid: u64) {\n    let key = EventKey { at: 0, src: 0, seq: 0 };\n    \
               let rng = StdRng::seed_from_u64(gid);\n    self.queue.push(key, rng);\n}\n";
    let hits = lint_source("crates/foo/src/node.rs", src, &stub_cfg());
    assert_eq!(hits.len(), 2, "node code trips D5+D6: {hits:#?}");
    for file in
        ["crates/netsim/src/engine.rs", "crates/netsim/src/queue.rs", "crates/netsim/src/audit.rs"]
    {
        let diags = lint_source(file, src, &stub_cfg());
        assert!(diags.is_empty(), "{file} is barrier-internal and exempt: {diags:#?}");
    }
}

#[test]
fn d6_flags_stream_construction_cloning_and_entropy() {
    let diags = lint_source("d6_rng.rs", &fixture("d6_rng.rs"), &stub_cfg());
    assert_eq!(
        locs(&diags),
        vec![
            (3, "D6/rng-stream"),
            (4, "D6/rng-stream"),
            (5, "D6/rng-stream"),
            (6, "D6/rng-stream"),
        ],
        "non-RNG clones (line 7) and the allowed generator stream (line 9) must pass; \
         got: {diags:#?}"
    );
    assert!(diags[0].message.contains("NodeCtx"), "fix hint names the per-node stream");
    assert!(diags[2].message.contains("cloning an RNG"), "clone case gets its own message");
}

#[test]
fn d7_reports_wildcard_dispatches_and_honors_allows() {
    let src = fixture("d7_handlers.rs");
    let variants = enum_variants_in(&src, "Body").expect("enum Body parses");
    assert_eq!(variants, ["Ping", "Pong", "Halt"]);
    let diags = lint_handler_parity(
        "d7_handlers.rs",
        &src,
        "Body",
        &variants,
        &["on_msg_good", "on_msg_bad", "on_msg_allowed"],
    );
    assert_eq!(
        locs(&diags),
        vec![(17, "D7/handler-parity"), (17, "D7/handler-parity")],
        "the exhaustive dispatch and the allowed demux must pass; got: {diags:#?}"
    );
    assert!(diags[0].message.contains("Body::Pong"));
    assert!(diags[1].message.contains("Body::Halt"));
    assert!(diags[0].message.contains("fn on_msg_bad"));
}

#[test]
fn json_output_is_stable_and_escaped() {
    let diags = vec![Diagnostic {
        file: "a.rs".to_string(),
        line: 3,
        rule: "D1/hash-order".to_string(),
        message: "uses \"HashMap\"".to_string(),
    }];
    assert_eq!(
        to_json(&diags),
        "[\n  {\"file\": \"a.rs\", \"line\": 3, \"rule\": \"D1/hash-order\", \
         \"message\": \"uses \\\"HashMap\\\"\"}\n]\n"
    );
    assert_eq!(to_json(&[]), "[]\n", "a clean run is an empty array, still valid JSON");
}

#[test]
fn malformed_allow_comments_are_diagnostics() {
    let diags = lint_source("bad_allow.rs", &fixture("bad_allow.rs"), &stub_cfg());
    assert_eq!(
        locs(&diags),
        vec![(2, "allow-syntax"), (3, "allow-syntax"), (4, "allow-syntax"), (5, "allow-syntax")],
        "got: {diags:#?}"
    );
    assert!(diags[0].message.contains("reason"), "missing-reason case explains the grammar");
}

#[test]
fn clean_fixture_has_zero_findings() {
    let diags = lint_source("clean.rs", &fixture("clean.rs"), &stub_cfg());
    assert!(diags.is_empty(), "strings/comments must never fire: {diags:#?}");
}

/// The acceptance criterion: the migrated workspace itself lints clean.
#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
    let diags = lint_workspace(root).expect("workspace walk");
    assert!(
        diags.is_empty(),
        "the deterministic crates must lint clean:\n{}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
}
