//! A small, self-contained Rust tokenizer.
//!
//! Produces just enough structure for the determinism rules: identifiers,
//! string/char literals, comments (kept, with text — the allow-comment
//! escape hatch lives in them), numbers, and single-character punctuation.
//! It understands the lexical forms that defeat naive grepping: raw strings
//! (`r#"…"#`), byte strings, nested block comments, lifetimes vs char
//! literals, and escapes — so `"HashMap"` in a string or comment is never
//! confused with the type.

/// Token classes relevant to the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// String literal (text is the *content*, quotes and prefixes stripped).
    StrLit,
    /// Character literal (text includes the content only).
    CharLit,
    /// Lifetime like `'a` (text excludes the quote).
    Lifetime,
    /// Numeric literal.
    Num,
    /// One punctuation character (`:`/`.`/`(`/…). Multi-char operators
    /// arrive as consecutive tokens.
    Punct,
    /// `// …` comment (text excludes the slashes, includes doc `///`).
    LineComment,
    /// `/* … */` comment, possibly nested (text excludes delimiters).
    BlockComment,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see per-kind notes on [`TokKind`]).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied();
        if let Some(b) = b {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
            }
        }
        b
    }

    fn take_while(&mut self, f: impl Fn(u8) -> bool) -> String {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if f(b) {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// Consume a `"…"` body (opening quote already consumed); returns content.
    fn string_body(&mut self) -> String {
        let mut out = String::new();
        while let Some(b) = self.bump() {
            match b {
                b'"' => break,
                b'\\' => {
                    out.push('\\');
                    if let Some(esc) = self.bump() {
                        out.push(esc as char);
                    }
                }
                _ => out.push(b as char),
            }
        }
        out
    }

    /// Consume a raw string: `pos` is at the first `#` or `"` after `r`/`br`.
    fn raw_string_body(&mut self) -> String {
        let mut hashes = 0;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) == Some(b'"') {
            self.bump();
        }
        let start = self.pos;
        let closer: Vec<u8> =
            std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
        while self.pos < self.src.len() {
            if self.src[self.pos..].starts_with(&closer) {
                let content = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                for _ in 0..closer.len() {
                    self.bump();
                }
                return content;
            }
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..]).into_owned()
    }

    /// Consume after a `'`: a char literal or a lifetime.
    fn char_or_lifetime(&mut self) -> (TokKind, String) {
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: '\n', '\'', '\u{…}'.
                let mut out = String::new();
                out.push(self.bump().unwrap() as char);
                while let Some(b) = self.bump() {
                    if b == b'\'' {
                        break;
                    }
                    out.push(b as char);
                }
                (TokKind::CharLit, out)
            }
            Some(b) if is_ident_start(b) => {
                let ident = self.take_while(is_ident_continue);
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                    (TokKind::CharLit, ident)
                } else {
                    (TokKind::Lifetime, ident)
                }
            }
            Some(b) => {
                // Plain one-char literal like ' ' or '('.
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                (TokKind::CharLit, (b as char).to_string())
            }
            None => (TokKind::CharLit, String::new()),
        }
    }

    fn block_comment_body(&mut self) -> String {
        let start = self.pos;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos..].starts_with(b"/*") {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.src[self.pos..].starts_with(b"*/") {
                depth -= 1;
                if depth == 0 {
                    let content = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    self.bump();
                    self.bump();
                    return content;
                }
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

/// Tokenize Rust source. Never fails: unknown bytes become punctuation and
/// unterminated literals run to end of input, which is the right behavior
/// for a linter that must keep scanning.
pub fn tokenize(src: &str) -> Vec<Token> {
    let mut lx = Lexer { src: src.as_bytes(), pos: 0, line: 1 };
    let mut out = Vec::new();
    while let Some(b) = lx.peek(0) {
        let line = lx.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                lx.bump();
            }
            b'/' if lx.peek(1) == Some(b'/') => {
                lx.bump();
                lx.bump();
                let text = lx.take_while(|b| b != b'\n');
                out.push(Token { kind: TokKind::LineComment, text, line });
            }
            b'/' if lx.peek(1) == Some(b'*') => {
                lx.bump();
                lx.bump();
                let text = lx.block_comment_body();
                out.push(Token { kind: TokKind::BlockComment, text, line });
            }
            b'"' => {
                lx.bump();
                let text = lx.string_body();
                out.push(Token { kind: TokKind::StrLit, text, line });
            }
            b'\'' => {
                lx.bump();
                let (kind, text) = lx.char_or_lifetime();
                out.push(Token { kind, text, line });
            }
            b'r' | b'b' if raw_or_byte_string_ahead(lx.src, lx.pos) => {
                // r"…", r#"…"#, b"…", br"…", br#"…"#
                let mut raw = b == b'r';
                lx.bump();
                if !raw && lx.peek(0) == Some(b'r') {
                    lx.bump();
                    raw = true;
                }
                let text = if raw {
                    lx.raw_string_body()
                } else {
                    lx.bump(); // opening quote
                    lx.string_body()
                };
                out.push(Token { kind: TokKind::StrLit, text, line });
            }
            _ if is_ident_start(b) => {
                let text = lx.take_while(is_ident_continue);
                out.push(Token { kind: TokKind::Ident, text, line });
            }
            _ if b.is_ascii_digit() => {
                let mut text = lx.take_while(is_ident_continue);
                // Float part: consume `.5` but not the range operator `..`.
                if lx.peek(0) == Some(b'.')
                    && lx.peek(1).map(|b| b.is_ascii_digit()).unwrap_or(false)
                {
                    lx.bump();
                    text.push('.');
                    text.push_str(&lx.take_while(is_ident_continue));
                }
                out.push(Token { kind: TokKind::Num, text, line });
            }
            _ => {
                lx.bump();
                out.push(Token { kind: TokKind::Punct, text: (b as char).to_string(), line });
            }
        }
    }
    out
}

/// True when the `r`/`b` at `pos` starts a raw/byte string rather than an
/// identifier (`r"`, `r#"`, `b"`, `br"`, `br#"`).
fn raw_or_byte_string_ahead(src: &[u8], pos: usize) -> bool {
    let rest = &src[pos..];
    match rest.first() {
        Some(b'r') => match rest.get(1) {
            Some(b'"') => true,
            Some(b'#') => {
                // r#"…"# vs raw identifier r#foo: a raw string has `"` after
                // the hashes.
                let mut i = 1;
                while rest.get(i) == Some(&b'#') {
                    i += 1;
                }
                rest.get(i) == Some(&b'"')
            }
            _ => false,
        },
        Some(b'b') => match rest.get(1) {
            Some(b'"') => true,
            Some(b'r') => matches!(rest.get(2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_strings_comments() {
        let toks = kinds("let x = \"HashMap\"; // HashMap here\nuse map;");
        assert!(toks.contains(&(TokKind::StrLit, "HashMap".into())));
        assert!(toks.contains(&(TokKind::LineComment, " HashMap here".into())));
        assert!(toks.contains(&(TokKind::Ident, "use".into())));
        // The string/comment HashMaps are NOT Ident tokens.
        assert!(!toks.contains(&(TokKind::Ident, "HashMap".into())));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r####"let a = r#"raw "quoted" HashMap"#; let b = br"bytes";"####);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::StrLit && t.contains("raw")));
        assert!(toks.contains(&(TokKind::StrLit, "bytes".into())));
        assert!(!toks.contains(&(TokKind::Ident, "HashMap".into())));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::CharLit).count(), 2);
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let toks = tokenize("/* a /* nested */ b */ fn\nnext");
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert_eq!(toks[1].text, "fn");
        assert_eq!(toks[2].line, 2, "line numbers advance through newlines");
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = kinds("for i in 0..10 { let f = 1.5; }");
        assert!(toks.contains(&(TokKind::Num, "0".into())));
        assert!(toks.contains(&(TokKind::Num, "10".into())));
        assert!(toks.contains(&(TokKind::Num, "1.5".into())));
    }
}
