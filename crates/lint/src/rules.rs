//! The determinism rules (D1–D7) and the allow-comment escape hatch.
//!
//! Rules operate on the token stream from [`crate::lexer`], so strings and
//! comments never trigger false positives. Each finding carries the rule id,
//! the suppression category (if suppressible), and a `file:line` location.

use crate::lexer::{tokenize, TokKind, Token};
use crate::Diagnostic;
use std::collections::BTreeMap;

/// Suppression categories accepted by `// rdv-lint: allow(<category>) -- <reason>`.
pub const ALLOW_CATEGORIES: &[&str] = &[
    "hash-order",
    "ambient-time",
    "ambient-rand",
    "ambient-env",
    "counter-name",
    "event-name",
    "gauge-name",
    "shard-interference",
    "rng-stream",
    "handler-parity",
];

/// Files that *are* the sharded engine's barrier internals: the window
/// coordinator, the calendar queue, and the shard-audit instrumentation.
/// D5 exempts them (they implement the protocol the rule protects) and the
/// D6 stream-construction check exempts them too (`engine.rs` is the one
/// sanctioned node-stream seeding site).
const ENGINE_INTERNAL_FILES: &[&str] =
    &["crates/netsim/src/engine.rs", "crates/netsim/src/queue.rs", "crates/netsim/src/audit.rs"];

/// Engine-internal types that node/scenario code must never name: holding a
/// `CalendarQueue` or forging an `EventKey` outside the engine bypasses the
/// canonical ordering that makes sharded runs byte-identical.
const D5_ENGINE_TYPES: &[&str] = &["CalendarQueue", "EventKey"];

/// Members (fields and methods) of the engine's shard/coordinator state.
/// A `.member` access to any of these from outside the barrier internals is
/// shard interference: mutating foreign-shard node/link/timer state or
/// driving windows by hand instead of going through the outbox API.
const D5_ENGINE_MEMBERS: &[&str] = &[
    "outbox",
    "merge_buf",
    "node_loc",
    "dir_slot",
    "lookahead_ns",
    "zero_lookahead",
    "drain_outboxes",
    "process_window",
    "run_window",
    "dispatch_coord",
    "next_key",
];

/// Configuration shared across files.
pub struct LintConfig {
    /// Valid `sim.*` counter names, parsed from the netsim registry
    /// (`ENGINE_SLOTS` in `crates/netsim/src/stats.rs`).
    pub sim_registry: Vec<String>,
    /// Valid gauge base names, parsed from the metrics registry
    /// (`GAUGE_NAMES` in `crates/metrics/src/lib.rs`). Empty when the
    /// table could not be read; membership checks are skipped then (the
    /// workspace linter reports the missing table separately).
    pub gauge_registry: Vec<String>,
    /// Valid `load.*` counter names, parsed from the traffic-plane
    /// registry (`LOAD_COUNTERS` in `crates/load/src/lib.rs`). Empty when
    /// the table could not be read; membership checks are skipped then
    /// (the workspace linter reports the missing table separately).
    pub load_registry: Vec<String>,
    /// Valid `gossip.*` counter names, parsed from the anti-entropy
    /// registry (`GOSSIP_COUNTERS` in `crates/gossip/src/lib.rs`). Same
    /// empty-table semantics as `load_registry`.
    pub gossip_registry: Vec<String>,
    /// Valid protocol-plane span labels, parsed from the sampled-tracing
    /// registry (`SPAN_LABELS` in `crates/trace/src/event.rs`). Labels in
    /// the `gossip.` / `load.` / `fabric.` namespaces must appear here —
    /// the sampler's per-class keep rates key on these strings, so a typo
    /// silently samples nothing. Same empty-table semantics as
    /// `load_registry`.
    pub span_registry: Vec<String>,
    /// Valid `obs.*` counter names, parsed from the sampler tally
    /// registry (`OBS_COUNTERS` in `crates/trace/src/sample.rs`). Same
    /// empty-table semantics as `load_registry`.
    pub obs_registry: Vec<String>,
    /// Valid `flight.*` counter names, parsed from the crash-recorder
    /// registry (`FLIGHT_COUNTERS` in `crates/netsim/src/flight.rs`).
    /// Same empty-table semantics as `load_registry`.
    pub flight_registry: Vec<String>,
}

/// Parsed allow comments: line → categories allowed on that line and the next.
struct AllowMap {
    /// (line, category) pairs. An entry on line N covers findings on N and N+1,
    /// so the annotation can sit on its own line above the code it excuses.
    allows: Vec<(usize, String)>,
}

impl AllowMap {
    fn covers(&self, line: usize, category: &str) -> bool {
        self.allows.iter().any(|(l, c)| c == category && (*l == line || l + 1 == line))
    }
}

/// Extract allow comments; malformed ones are themselves diagnostics — a
/// suppression that silently fails to parse would be worse than no linter.
fn collect_allows(file: &str, tokens: &[Token], diags: &mut Vec<Diagnostic>) -> AllowMap {
    let mut allows = Vec::new();
    for t in tokens {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let Some(idx) = t.text.find("rdv-lint:") else { continue };
        let rest = t.text[idx + "rdv-lint:".len()..].trim();
        let malformed = |msg: &str, diags: &mut Vec<Diagnostic>| {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: t.line,
                rule: "allow-syntax".to_string(),
                message: msg.to_string(),
            });
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            malformed("rdv-lint comment must be `allow(<category>) -- <reason>`", diags);
            continue;
        };
        let Some(close) = args.find(')') else {
            malformed("unterminated `allow(`", diags);
            continue;
        };
        let category = args[..close].trim().to_string();
        if !ALLOW_CATEGORIES.contains(&category.as_str()) {
            malformed(
                &format!(
                    "unknown allow category `{category}` (expected one of: {})",
                    ALLOW_CATEGORIES.join(", ")
                ),
                diags,
            );
            continue;
        }
        let tail = args[close + 1..].trim();
        let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            malformed(
                &format!("allow({category}) needs a reason: `allow({category}) -- <why>`"),
                diags,
            );
            continue;
        }
        allows.push((t.line, category));
    }
    AllowMap { allows }
}

fn push(
    diags: &mut Vec<Diagnostic>,
    allow: &AllowMap,
    file: &str,
    line: usize,
    rule: &str,
    category: &str,
    message: String,
) {
    if allow.covers(line, category) {
        return;
    }
    diags.push(Diagnostic { file: file.to_string(), line, rule: rule.to_string(), message });
}

/// Does `code[i..]` start with the ident/punct sequence `pat`?
/// Punct entries match one punctuation char; idents match exactly.
fn seq_at(code: &[&Token], i: usize, pat: &[&str]) -> bool {
    pat.iter().enumerate().all(|(j, p)| {
        code.get(i + j).is_some_and(|t| match t.kind {
            TokKind::Ident | TokKind::Punct => t.text == *p,
            _ => false,
        })
    })
}

/// Valid counter name: dotted segments of `[a-z0-9_]+`.
fn counter_name_ok(name: &str) -> bool {
    !name.is_empty()
        && name.split('.').all(|seg| {
            !seg.is_empty()
                && seg.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        })
}

/// Run D1–D3 and D5–D6 (plus allow-comment syntax checking) over one file.
pub fn lint_source(file: &str, src: &str, cfg: &LintConfig) -> Vec<Diagnostic> {
    let tokens = tokenize(src);
    let mut diags = Vec::new();
    let allow = collect_allows(file, &tokens, &mut diags);
    let engine_internal = ENGINE_INTERNAL_FILES.iter().any(|f| file.ends_with(f));

    // Code-only view: comments dropped so sequences span commented lines.
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();

    for i in 0..code.len() {
        let t = code[i];
        // D1: hash-ordered collections.
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            push(
                &mut diags,
                &allow,
                file,
                t.line,
                "D1/hash-order",
                "hash-order",
                format!(
                    "`{}` iterates in hasher-seed order, which differs across processes; \
                     use `rdv_det::Det{}` (insertion-ordered) or annotate \
                     `// rdv-lint: allow(hash-order) -- <reason>`",
                    t.text,
                    &t.text[4..]
                ),
            );
        }

        // D2: ambient nondeterminism.
        if seq_at(&code, i, &["Instant", ":", ":", "now"]) {
            push(
                &mut diags,
                &allow,
                file,
                t.line,
                "D2/ambient-time",
                "ambient-time",
                "`Instant::now()` reads the wall clock; sim time must come from the \
                 engine's virtual clock"
                    .to_string(),
            );
        }
        if t.kind == TokKind::Ident && t.text == "SystemTime" {
            push(
                &mut diags,
                &allow,
                file,
                t.line,
                "D2/ambient-time",
                "ambient-time",
                "`SystemTime` reads the wall clock; sim time must come from the \
                 engine's virtual clock"
                    .to_string(),
            );
        }
        if t.kind == TokKind::Ident && t.text == "thread_rng" {
            push(
                &mut diags,
                &allow,
                file,
                t.line,
                "D2/ambient-rand",
                "ambient-rand",
                "`thread_rng()` is seeded from the OS; use the engine's seeded RNG".to_string(),
            );
        }
        if seq_at(&code, i, &["rand", ":", ":", "random"]) {
            push(
                &mut diags,
                &allow,
                file,
                t.line,
                "D2/ambient-rand",
                "ambient-rand",
                "`rand::random()` is seeded from the OS; use the engine's seeded RNG".to_string(),
            );
        }
        if seq_at(&code, i, &["env", ":", ":", "var"]) {
            push(
                &mut diags,
                &allow,
                file,
                t.line,
                "D2/ambient-env",
                "ambient-env",
                "`env::var` makes behavior depend on the process environment".to_string(),
            );
        }

        // D5: shard interference. Outside the engine's own barrier internals,
        // sim code may not name the event-ordering types or reach into the
        // shard/coordinator state — cross-shard effects flow through the
        // outbox API at the window barrier, nothing else.
        if !engine_internal {
            if t.kind == TokKind::Ident && D5_ENGINE_TYPES.contains(&t.text.as_str()) {
                push(
                    &mut diags,
                    &allow,
                    file,
                    t.line,
                    "D5/shard-interference",
                    "shard-interference",
                    format!(
                        "`{}` is a sharded-engine internal; node and scenario code must \
                         schedule through the `NodeCtx`/`Sim` public API so every event \
                         gets a canonical key (cross-shard effects go through the outbox \
                         at the window barrier)",
                        t.text
                    ),
                );
            }
            if t.kind == TokKind::Punct && t.text == "." {
                if let Some(m) = code.get(i + 1) {
                    if m.kind == TokKind::Ident && D5_ENGINE_MEMBERS.contains(&m.text.as_str()) {
                        push(
                            &mut diags,
                            &allow,
                            file,
                            m.line,
                            "D5/shard-interference",
                            "shard-interference",
                            format!(
                                "`.{}` reaches into the engine's shard/coordinator state; \
                                 node/link/timer state is owner-shard-only and windows are \
                                 driven by the coordinator — cross-shard effects must go \
                                 through the outbox API",
                                m.text
                            ),
                        );
                    }
                }
            }
        }

        // D6: RNG stream discipline. Sim randomness flows through the
        // per-node `NodeCtx` stream that the engine seeds; constructing or
        // duplicating streams elsewhere risks two nodes (or two shards)
        // silently drawing correlated values.
        if t.kind == TokKind::Ident && t.text == "from_entropy" {
            push(
                &mut diags,
                &allow,
                file,
                t.line,
                "D6/rng-stream",
                "rng-stream",
                "`from_entropy` seeds from the OS; every sim RNG stream must derive from \
                 the scenario seed"
                    .to_string(),
            );
        }
        if !engine_internal && t.kind == TokKind::Ident && t.text == "seed_from_u64" {
            push(
                &mut diags,
                &allow,
                file,
                t.line,
                "D6/rng-stream",
                "rng-stream",
                "constructing an RNG stream outside the engine risks sharing it across \
                 nodes or shards; node randomness comes from the per-node `NodeCtx` \
                 stream (seeded once in engine.rs). Pre-sim generator streams need \
                 `// rdv-lint: allow(rng-stream) -- <why>`"
                    .to_string(),
            );
        }
        if t.kind == TokKind::Ident
            && (t.text == "rng" || t.text == "rngs")
            && seq_at(&code, i + 1, &[".", "clone", "("])
        {
            push(
                &mut diags,
                &allow,
                file,
                t.line,
                "D6/rng-stream",
                "rng-stream",
                "cloning an RNG duplicates its stream; two consumers of clones draw \
                 identical values and silently correlate — derive a fresh salted stream \
                 or use the per-node `NodeCtx` stream"
                    .to_string(),
            );
        }

        // D3: counter-name discipline. Fires on string-literal names passed to
        // the stats API: `.add("…")`, `.inc("…")`, `.get("…")`,
        // `CounterId::intern("…")` / `.intern("…")`.
        let lit = if t.kind == TokKind::Punct && t.text == "." {
            match (code.get(i + 1), code.get(i + 2), code.get(i + 3)) {
                (Some(name), Some(open), Some(arg))
                    if name.kind == TokKind::Ident
                        && matches!(name.text.as_str(), "add" | "inc" | "get" | "intern")
                        && open.text == "("
                        && arg.kind == TokKind::StrLit =>
                {
                    Some(arg)
                }
                _ => None,
            }
        } else if seq_at(&code, i, &["CounterId", ":", ":", "intern", "("]) {
            code.get(i + 5).filter(|a| a.kind == TokKind::StrLit)
        } else {
            None
        };
        if let Some(arg) = lit {
            if !counter_name_ok(&arg.text) {
                push(
                    &mut diags,
                    &allow,
                    file,
                    arg.line,
                    "D3/counter-name",
                    "counter-name",
                    format!(
                        "counter name `{}` violates the dotted lowercase scheme \
                         `[a-z0-9_]+(.[a-z0-9_]+)*`",
                        arg.text
                    ),
                );
            } else if arg.text.starts_with("sim.")
                && !cfg.sim_registry.iter().any(|n| n == &arg.text)
            {
                push(
                    &mut diags,
                    &allow,
                    file,
                    arg.line,
                    "D3/counter-name",
                    "counter-name",
                    format!(
                        "`{}` is not a registered engine counter (see ENGINE_SLOTS in \
                         crates/netsim/src/stats.rs); sim.* names must be pre-interned",
                        arg.text
                    ),
                );
            } else if arg.text.starts_with("load.")
                && !cfg.load_registry.is_empty()
                && !cfg.load_registry.iter().any(|n| n == &arg.text)
            {
                push(
                    &mut diags,
                    &allow,
                    file,
                    arg.line,
                    "D3/counter-name",
                    "counter-name",
                    format!(
                        "`{}` is not a registered load-plane counter (see LOAD_COUNTERS in \
                         crates/load/src/lib.rs); load.* names must be table-registered",
                        arg.text
                    ),
                );
            } else if arg.text.starts_with("gossip.")
                && !cfg.gossip_registry.is_empty()
                && !cfg.gossip_registry.iter().any(|n| n == &arg.text)
            {
                push(
                    &mut diags,
                    &allow,
                    file,
                    arg.line,
                    "D3/counter-name",
                    "counter-name",
                    format!(
                        "`{}` is not a registered anti-entropy counter (see GOSSIP_COUNTERS in \
                         crates/gossip/src/lib.rs); gossip.* names must be table-registered",
                        arg.text
                    ),
                );
            } else if arg.text.starts_with("obs.")
                && !cfg.obs_registry.is_empty()
                && !cfg.obs_registry.iter().any(|n| n == &arg.text)
            {
                push(
                    &mut diags,
                    &allow,
                    file,
                    arg.line,
                    "D3/counter-name",
                    "counter-name",
                    format!(
                        "`{}` is not a registered sampler tally (see OBS_COUNTERS in \
                         crates/trace/src/sample.rs); obs.* names must be table-registered",
                        arg.text
                    ),
                );
            } else if arg.text.starts_with("flight.")
                && !cfg.flight_registry.is_empty()
                && !cfg.flight_registry.iter().any(|n| n == &arg.text)
            {
                push(
                    &mut diags,
                    &allow,
                    file,
                    arg.line,
                    "D3/counter-name",
                    "counter-name",
                    format!(
                        "`{}` is not a registered flight-recorder counter (see FLIGHT_COUNTERS \
                         in crates/netsim/src/flight.rs); flight.* names must be table-registered",
                        arg.text
                    ),
                );
            }
        }

        // D3: gauge-name discipline. String-literal base names entering the
        // rdv-metrics sampling API — `.gauge("…")`, `.rate_per_s("…")`,
        // `.windowed_pct("…")`, `.windowed_ratio_pct("…")` — follow the same
        // dotted lowercase scheme and must be registered in `GAUGE_NAMES`.
        // Dynamically built names (e.g. the engine's derived `rate.*`
        // series) are not literals and are exempt by construction.
        if t.kind == TokKind::Punct && t.text == "." {
            if let (Some(name), Some(open), Some(arg)) =
                (code.get(i + 1), code.get(i + 2), code.get(i + 3))
            {
                if name.kind == TokKind::Ident
                    && matches!(
                        name.text.as_str(),
                        "gauge" | "rate_per_s" | "windowed_pct" | "windowed_ratio_pct"
                    )
                    && open.text == "("
                    && arg.kind == TokKind::StrLit
                {
                    if !counter_name_ok(&arg.text) {
                        push(
                            &mut diags,
                            &allow,
                            file,
                            arg.line,
                            "D3/gauge-name",
                            "gauge-name",
                            format!(
                                "gauge name `{}` violates the dotted lowercase scheme \
                                 `[a-z0-9_]+(.[a-z0-9_]+)*`",
                                arg.text
                            ),
                        );
                    } else if !cfg.gauge_registry.is_empty()
                        && !cfg.gauge_registry.iter().any(|n| n == &arg.text)
                    {
                        push(
                            &mut diags,
                            &allow,
                            file,
                            arg.line,
                            "D3/gauge-name",
                            "gauge-name",
                            format!(
                                "`{}` is not a registered gauge (see GAUGE_NAMES in \
                                 crates/metrics/src/lib.rs); gauge base names must be \
                                 table-registered",
                                arg.text
                            ),
                        );
                    }
                }
            }
        }

        // D3: trace event-name discipline. Span and mark labels entering the
        // rdv-trace API follow the same dotted lowercase scheme as counters:
        // `.span_begin("…")`, `.span_end("…")`, `.mark("…")`, `.mark_linked("…")`,
        // and the sampler's class key `.sample("…")`. Labels in the planes
        // that committed to the sampled-tracing registry (`gossip.` /
        // `load.` / `fabric.`) must additionally appear in `SPAN_LABELS` —
        // the sampler's per-class keep rates key on these strings, so an
        // unregistered label silently samples nothing.
        if t.kind == TokKind::Punct && t.text == "." {
            if let (Some(name), Some(open), Some(arg)) =
                (code.get(i + 1), code.get(i + 2), code.get(i + 3))
            {
                if name.kind == TokKind::Ident
                    && matches!(
                        name.text.as_str(),
                        "span_begin" | "span_end" | "mark" | "mark_linked" | "sample"
                    )
                    && open.text == "("
                    && arg.kind == TokKind::StrLit
                {
                    if !counter_name_ok(&arg.text) {
                        push(
                            &mut diags,
                            &allow,
                            file,
                            arg.line,
                            "D3/event-name",
                            "event-name",
                            format!(
                                "trace event name `{}` violates the dotted lowercase scheme \
                                 `[a-z0-9_]+(.[a-z0-9_]+)*`",
                                arg.text
                            ),
                        );
                    } else if ["gossip.", "load.", "fabric."]
                        .iter()
                        .any(|p| arg.text.starts_with(p))
                        && !cfg.span_registry.is_empty()
                        && !cfg.span_registry.iter().any(|n| n == &arg.text)
                    {
                        push(
                            &mut diags,
                            &allow,
                            file,
                            arg.line,
                            "D3/event-name",
                            "event-name",
                            format!(
                                "`{}` is not a registered span label (see SPAN_LABELS in \
                                 crates/trace/src/event.rs); gossip./load./fabric. plane \
                                 labels must be table-registered so sampling classes \
                                 resolve",
                                arg.text
                            ),
                        );
                    }
                }
            }
        }
    }
    diags
}

/// One D4 check: every variant of `enum_name` must be mentioned
/// (`Enum::Variant` or `Self::Variant`) inside each function in `fns`.
pub struct ParityTarget {
    /// Enum whose variants must stay in sync.
    pub enum_name: &'static str,
    /// Functions (encode/decode pairs) that must each cover every variant.
    pub fns: &'static [&'static str],
}

/// D4: wire-message encode/decode parity.
pub fn lint_enum_parity(file: &str, src: &str, targets: &[ParityTarget]) -> Vec<Diagnostic> {
    let tokens = tokenize(src);
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut diags = Vec::new();

    for target in targets {
        let Some(variants) = enum_variants(&code, target.enum_name) else {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: 1,
                rule: "D4/wire-parity".to_string(),
                message: format!("expected `enum {}` in this file; not found", target.enum_name),
            });
            continue;
        };
        for fn_name in target.fns {
            let Some((fn_line, body)) = fn_body(&code, fn_name) else {
                diags.push(Diagnostic {
                    file: file.to_string(),
                    line: 1,
                    rule: "D4/wire-parity".to_string(),
                    message: format!("expected `fn {fn_name}` in this file; not found"),
                });
                continue;
            };
            for variant in &variants {
                let mentioned = (0..body.len()).any(|i| {
                    seq_at(&body, i, &[target.enum_name, ":", ":", variant])
                        || seq_at(&body, i, &["Self", ":", ":", variant])
                });
                if !mentioned {
                    diags.push(Diagnostic {
                        file: file.to_string(),
                        line: fn_line,
                        rule: "D4/wire-parity".to_string(),
                        message: format!(
                            "`fn {fn_name}` does not handle `{}::{variant}`; every wire \
                             variant must appear in both encode and decode paths",
                            target.enum_name
                        ),
                    });
                }
            }
        }
    }
    diags
}

/// One D7 check: a node dispatch function must either handle or *explicitly
/// ignore* (name in a `=> {}` arm) every variant of a wire enum. Unlike D4,
/// the enum and the handlers live in different files: a protocol crate grows
/// a variant, and D7 forces every dispatch in every consuming crate to take a
/// position on it — a wildcard `_ =>` arm silently swallowing new message
/// kinds is exactly the bug class this rule exists to kill.
pub struct HandlerTarget {
    /// File declaring the wire enum (workspace-relative).
    pub enum_file: &'static str,
    /// Enum whose variants each handler must cover.
    pub enum_name: &'static str,
    /// File containing the dispatch functions (workspace-relative).
    pub handler_file: &'static str,
    /// Dispatch functions that must each mention every variant.
    pub fns: &'static [&'static str],
}

/// Parse `enum <name>` variants out of raw source (D7 reads the enum from a
/// different file than the handlers it checks).
pub fn enum_variants_in(src: &str, name: &str) -> Option<Vec<String>> {
    let tokens = tokenize(src);
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    enum_variants(&code, name)
}

/// D7: handler exhaustiveness. Every variant in `variants` must be mentioned
/// (`Enum::Variant` or `Self::Variant`) inside each named function of
/// `handler_src`. The handler file's `allow(handler-parity)` annotations
/// apply, keyed on the `fn` line — a dispatch that is a deliberate
/// single-purpose demux can opt out with a reason.
pub fn lint_handler_parity(
    handler_file: &str,
    handler_src: &str,
    enum_name: &str,
    variants: &[String],
    fns: &[&str],
) -> Vec<Diagnostic> {
    let tokens = tokenize(handler_src);
    // lint_source already reports malformed allow comments for this file;
    // swallow the duplicates here and keep only the allow map.
    let mut scratch = Vec::new();
    let allow = collect_allows(handler_file, &tokens, &mut scratch);
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut diags = Vec::new();

    for fn_name in fns {
        let Some((fn_line, body)) = fn_body(&code, fn_name) else {
            diags.push(Diagnostic {
                file: handler_file.to_string(),
                line: 1,
                rule: "D7/handler-parity".to_string(),
                message: format!("expected `fn {fn_name}` in this file; not found"),
            });
            continue;
        };
        for variant in variants {
            let mentioned = (0..body.len()).any(|i| {
                seq_at(&body, i, &[enum_name, ":", ":", variant])
                    || seq_at(&body, i, &["Self", ":", ":", variant])
            });
            if !mentioned {
                push(
                    &mut diags,
                    &allow,
                    handler_file,
                    fn_line,
                    "D7/handler-parity",
                    "handler-parity",
                    format!(
                        "`fn {fn_name}` neither handles nor explicitly ignores \
                         `{enum_name}::{variant}`; every wire variant must appear in the \
                         dispatch (a wildcard arm silently swallows new message kinds)"
                    ),
                );
            }
        }
    }
    diags
}

/// Find `enum <name> { … }` and return its variant identifiers.
fn enum_variants(code: &[&Token], name: &str) -> Option<Vec<String>> {
    let start = (0..code.len()).find(|&i| seq_at(code, i, &["enum", name]))?;
    // Skip to the opening brace (generics would sit in between; none here,
    // but handle them anyway).
    let mut i = start + 2;
    while i < code.len() && code[i].text != "{" {
        i += 1;
    }
    let mut depth = 0usize;
    let mut variants = Vec::new();
    let mut expect_variant = false;
    while i < code.len() {
        let t = code[i];
        match t.text.as_str() {
            "{" | "(" | "[" => {
                if t.text == "{" && depth == 0 {
                    expect_variant = true;
                }
                depth += 1;
            }
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(variants);
                }
            }
            "," if depth == 1 => expect_variant = true,
            "#" => {} // attribute — the bracket tracking skips its body
            _ if depth == 1 && expect_variant && t.kind == TokKind::Ident => {
                variants.push(t.text.clone());
                expect_variant = false;
            }
            _ => {}
        }
        i += 1;
    }
    Some(variants)
}

/// Find `fn <name>` and return (line, body tokens between its braces).
fn fn_body<'t>(code: &[&'t Token], name: &str) -> Option<(usize, Vec<&'t Token>)> {
    let start = (0..code.len()).find(|&i| seq_at(code, i, &["fn", name]))?;
    let fn_line = code[start].line;
    let mut i = start + 2;
    // Skip the signature: the body starts at the first `{` at paren-depth 0.
    let mut paren = 0usize;
    while i < code.len() {
        match code[i].text.as_str() {
            "(" | "[" | "<" => paren += 1,
            ")" | "]" | ">" => paren = paren.saturating_sub(1),
            "{" if paren == 0 => break,
            _ => {}
        }
        i += 1;
    }
    let body_start = i + 1;
    let mut depth = 1usize;
    i = body_start;
    while i < code.len() && depth > 0 {
        match code[i].text.as_str() {
            "{" => depth += 1,
            "}" => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    Some((fn_line, code[body_start..i.saturating_sub(1)].to_vec()))
}

/// Parse the engine counter registry out of `stats.rs` source: the string
/// literals inside the `ENGINE_SLOTS` array.
pub fn parse_engine_slots(stats_src: &str) -> Vec<String> {
    parse_str_array(stats_src, "ENGINE_SLOTS").into_iter().map(|(name, _)| name).collect()
}

/// Parse the gauge registry out of the rdv-metrics source: the string
/// literals inside the `GAUGE_NAMES` array.
pub fn parse_gauge_names(metrics_src: &str) -> Vec<String> {
    parse_str_array(metrics_src, "GAUGE_NAMES").into_iter().map(|(name, _)| name).collect()
}

/// Parse the traffic-plane counter registry out of the rdv-load source:
/// the string literals inside the `LOAD_COUNTERS` array.
pub fn parse_load_counters(load_src: &str) -> Vec<String> {
    parse_str_array(load_src, "LOAD_COUNTERS").into_iter().map(|(name, _)| name).collect()
}

/// Parse the anti-entropy counter registry out of the rdv-gossip source:
/// the string literals inside the `GOSSIP_COUNTERS` array.
pub fn parse_gossip_counters(gossip_src: &str) -> Vec<String> {
    parse_str_array(gossip_src, "GOSSIP_COUNTERS").into_iter().map(|(name, _)| name).collect()
}

/// Parse the sampled-tracing span-label registry out of the rdv-trace
/// source: the string literals inside the `SPAN_LABELS` array.
pub fn parse_span_labels(event_src: &str) -> Vec<String> {
    parse_str_array(event_src, "SPAN_LABELS").into_iter().map(|(name, _)| name).collect()
}

/// Parse the sampler tally registry out of the rdv-trace source: the
/// string literals inside the `OBS_COUNTERS` array.
pub fn parse_obs_counters(sample_src: &str) -> Vec<String> {
    parse_str_array(sample_src, "OBS_COUNTERS").into_iter().map(|(name, _)| name).collect()
}

/// Parse the crash-recorder counter registry out of the rdv-netsim
/// source: the string literals inside the `FLIGHT_COUNTERS` array.
pub fn parse_flight_counters(flight_src: &str) -> Vec<String> {
    parse_str_array(flight_src, "FLIGHT_COUNTERS").into_iter().map(|(name, _)| name).collect()
}

/// D3 over the canonical gauge-name table: every entry of `GAUGE_NAMES`
/// in `crates/metrics/src/lib.rs` must satisfy the dotted lowercase
/// scheme. An unparseable table is itself a finding — the D3 gauge-name
/// membership check leans on it.
pub fn lint_gauge_names(file: &str, src: &str) -> Vec<Diagnostic> {
    let names = parse_str_array(src, "GAUGE_NAMES");
    if names.is_empty() {
        return vec![Diagnostic {
            file: file.to_string(),
            line: 1,
            rule: "D3/gauge-name".to_string(),
            message: "could not parse the GAUGE_NAMES table; gauge names are unverifiable"
                .to_string(),
        }];
    }
    names
        .into_iter()
        .filter(|(name, _)| !counter_name_ok(name))
        .map(|(name, line)| Diagnostic {
            file: file.to_string(),
            line,
            rule: "D3/gauge-name".to_string(),
            message: format!(
                "gauge name `{name}` violates the dotted lowercase scheme \
                 `[a-z0-9_]+(.[a-z0-9_]+)*`"
            ),
        })
        .collect()
}

/// Collect the string literals (with their lines) inside the array literal
/// assigned to `const_name`.
fn parse_str_array(src: &str, const_name: &str) -> Vec<(String, usize)> {
    let tokens = tokenize(src);
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let Some(start) = code.iter().position(|t| t.text == const_name) else {
        return Vec::new();
    };
    let mut names = Vec::new();
    let mut i = start;
    // Skip past the `=` first — the type annotation `[&str; N]` also contains
    // brackets — then collect strings inside the array literal.
    while i < code.len() && code[i].text != "=" {
        i += 1;
    }
    while i < code.len() && code[i].text != "[" {
        i += 1;
    }
    let mut depth = 0usize;
    while i < code.len() {
        match code[i].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ if code[i].kind == TokKind::StrLit => {
                names.push((code[i].text.clone(), code[i].line));
            }
            _ => {}
        }
        i += 1;
    }
    names
}

/// D3 over the canonical trace event-name table: every entry of
/// `EVENT_NAMES` in `crates/trace/src/event.rs` must satisfy the dotted
/// lowercase scheme. An unparseable table is itself a finding — the
/// exporters and the D3 trace-label check both lean on it.
pub fn lint_event_names(file: &str, src: &str) -> Vec<Diagnostic> {
    let names = parse_str_array(src, "EVENT_NAMES");
    if names.is_empty() {
        return vec![Diagnostic {
            file: file.to_string(),
            line: 1,
            rule: "D3/event-name".to_string(),
            message: "could not parse the EVENT_NAMES table; engine event names are \
                      unverifiable"
                .to_string(),
        }];
    }
    names
        .into_iter()
        .filter(|(name, _)| !counter_name_ok(name))
        .map(|(name, line)| Diagnostic {
            file: file.to_string(),
            line,
            rule: "D3/event-name".to_string(),
            message: format!(
                "event name `{name}` violates the dotted lowercase scheme \
                 `[a-z0-9_]+(.[a-z0-9_]+)*`"
            ),
        })
        .collect()
}

/// Keep diagnostics deterministic and readable: sort by file, line, rule.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str(), a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule.as_str(),
            b.message.as_str(),
        ))
    });
}

/// Group count per rule id, for the summary footer.
pub fn rule_counts(diags: &[Diagnostic]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for d in diags {
        *counts.entry(d.rule.clone()).or_insert(0) += 1;
    }
    counts
}
