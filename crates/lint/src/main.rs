//! CLI entry point: lint the workspace, print `file:line: [rule] message`
//! lines (or a JSON array with `--json`), exit 1 on findings (2 on I/O
//! failure) so CI can gate on it.

use rdv_lint::{find_workspace_root, lint_workspace, rules, to_json};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root_override: Option<PathBuf> = None;
    let mut json = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root_override = args.next().map(PathBuf::from),
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "rdv-lint: workspace determinism linter\n\n\
                     USAGE: rdv-lint [--root <workspace-root>] [--json]\n\n\
                     Checks the deterministic crates for hash-ordered collections (D1),\n\
                     ambient time/randomness/env (D2), counter-name discipline (D3),\n\
                     wire-message encode/decode parity (D4), shard interference (D5),\n\
                     RNG stream discipline (D6), and handler exhaustiveness (D7).\n\
                     --json prints findings as a JSON array (for CI annotations).\n\
                     Exits nonzero on findings. See DESIGN.md \u{a7}11 \"Correctness tooling\"."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("rdv-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root_override {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("rdv-lint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "rdv-lint: no workspace root found above {} (pass --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let diags = match lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("rdv-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", to_json(&diags));
        return if diags.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if diags.is_empty() {
        println!("rdv-lint: clean ({} deterministic crates checked)", rdv_lint::DET_CRATES.len());
        return ExitCode::SUCCESS;
    }

    for d in &diags {
        println!("{d}");
    }
    println!();
    for (rule, count) in rules::rule_counts(&diags) {
        println!("  {count:>4}  {rule}");
    }
    println!("rdv-lint: {} finding(s)", diags.len());
    ExitCode::FAILURE
}
