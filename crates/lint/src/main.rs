//! CLI entry point: lint the workspace, print `file:line: [rule] message`
//! lines, exit 1 on findings (2 on I/O failure) so CI can gate on it.

use rdv_lint::{find_workspace_root, lint_workspace, rules};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root_override: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root_override = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "rdv-lint: workspace determinism linter\n\n\
                     USAGE: rdv-lint [--root <workspace-root>]\n\n\
                     Checks the deterministic crates for hash-ordered collections (D1),\n\
                     ambient time/randomness/env (D2), counter-name discipline (D3), and\n\
                     wire-message encode/decode parity (D4). Exits nonzero on findings.\n\
                     See DESIGN.md \u{a7}\"Determinism rules\"."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("rdv-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root_override {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("rdv-lint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "rdv-lint: no workspace root found above {} (pass --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let diags = match lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("rdv-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if diags.is_empty() {
        println!("rdv-lint: clean ({} deterministic crates checked)", rdv_lint::DET_CRATES.len());
        return ExitCode::SUCCESS;
    }

    for d in &diags {
        println!("{d}");
    }
    println!();
    for (rule, count) in rules::rule_counts(&diags) {
        println!("  {count:>4}  {rule}");
    }
    println!("rdv-lint: {} finding(s)", diags.len());
    ExitCode::FAILURE
}
