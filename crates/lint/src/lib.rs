//! rdv-lint: the workspace determinism linter.
//!
//! "Same seed ⇒ byte-identical run" is the repo's core experimental claim
//! (ROADMAP §determinism). The sim crates keep that promise only if nothing
//! in them consults ambient state: hasher seeds, wall clocks, OS entropy,
//! environment variables. This linter makes the discipline *static*:
//!
//! - **D1 `hash-order`** — `std::collections::{HashMap, HashSet}` are banned
//!   in the deterministic crates; iteration order depends on the per-process
//!   `RandomState` seed. Use `rdv_det::{DetMap, DetSet}` instead, or annotate
//!   `// rdv-lint: allow(hash-order) -- <reason>` when order provably never
//!   escapes.
//! - **D2 `ambient-*`** — `Instant::now`, `SystemTime`, `thread_rng`,
//!   `rand::random`, `env::var` are banned in the same crates.
//! - **D3 `counter-name` / `event-name`** — string literals entering the
//!   stats counter API must match the dotted lowercase scheme, `sim.*`
//!   names must exist in the pre-interned engine registry, `load.*`
//!   names in the traffic-plane registry (`LOAD_COUNTERS`), `gossip.*`
//!   names in the anti-entropy registry (`GOSSIP_COUNTERS`), `obs.*` names
//!   in the sampler tally registry (`OBS_COUNTERS`), and `flight.*` names
//!   in the crash-recorder registry (`FLIGHT_COUNTERS`). Trace span/mark
//!   labels (`span_begin`, `span_end`, `mark`, `mark_linked`, and the
//!   sampler class key `sample`) follow the same scheme; `gossip.`/`load.`/
//!   `fabric.` plane labels must additionally exist in the sampled-tracing
//!   registry (`SPAN_LABELS`), and every entry of the rdv-trace
//!   `EVENT_NAMES` table is scheme-checked too.
//! - **D4 `wire-parity`** — every variant of the wire-message enums must be
//!   handled by both the encode and decode functions.
//! - **D5 `shard-interference`** — outside the engine's own barrier
//!   internals (`engine.rs`, `queue.rs`, `audit.rs`), sim code may not name
//!   the event-ordering types (`CalendarQueue`, `EventKey`) or reach into
//!   shard/coordinator state; cross-shard effects flow through the outbox
//!   API at the window barrier, nothing else.
//! - **D6 `rng-stream`** — randomness flows through the per-node `NodeCtx`
//!   stream the engine seeds; `from_entropy`, RNG cloning, and stream
//!   construction outside `engine.rs` are flagged (pre-sim generator streams
//!   carry an `allow(rng-stream)` with the salt-split justification).
//! - **D7 `handler-parity`** — every node dispatch must handle or explicitly
//!   ignore every variant of the wire enums it demuxes; wildcard arms that
//!   would silently swallow new message kinds are rejected.
//!
//! See DESIGN.md §11 "Correctness tooling" for the full contract.

pub mod lexer;
pub mod rules;

use rules::{HandlerTarget, LintConfig, ParityTarget};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One finding, printed as `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule id, e.g. `D1/hash-order` or `allow-syntax`.
    pub rule: String,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Crates whose behavior must be bit-reproducible across processes. `rpc` and
/// `bench` sit outside the sim boundary (they may time real wall-clock work);
/// `det` wraps a `HashMap` internally by design (its index is never iterated).
pub const DET_CRATES: &[&str] = &[
    "netsim",
    "memproto",
    "discovery",
    "objspace",
    "core",
    "wire",
    "p4rt",
    "crdt",
    "trace",
    "metrics",
    "load",
    "gossip",
];

/// D4 targets: wire enums and the functions that must cover every variant.
const PARITY_TARGETS: &[(&str, &[ParityTarget])] = &[
    (
        "crates/memproto/src/msg.rs",
        &[
            ParityTarget {
                enum_name: "MsgBody",
                fns: &["msg_type", "encode_fields", "decode_fields"],
            },
            ParityTarget { enum_name: "NackCode", fns: &["to_byte", "from_byte"] },
        ],
    ),
    (
        "crates/p4rt/src/pipeline.rs",
        &[ParityTarget { enum_name: "ControlMsg", fns: &["encode", "decode"] }],
    ),
];

/// D7 targets: every node dispatch that demuxes a wire enum. The enum lives
/// in the protocol crate; the handlers live wherever the nodes do — D7 is
/// the cross-crate completion of D4's same-file codec parity.
const HANDLER_TARGETS: &[HandlerTarget] = &[
    HandlerTarget {
        enum_file: "crates/memproto/src/msg.rs",
        enum_name: "MsgBody",
        handler_file: "crates/discovery/src/host.rs",
        fns: &["on_packet"],
    },
    HandlerTarget {
        enum_file: "crates/memproto/src/msg.rs",
        enum_name: "NackCode",
        handler_file: "crates/discovery/src/host.rs",
        fns: &["complete"],
    },
    HandlerTarget {
        enum_file: "crates/memproto/src/msg.rs",
        enum_name: "MsgBody",
        handler_file: "crates/discovery/src/controller.rs",
        fns: &["on_packet"],
    },
    HandlerTarget {
        enum_file: "crates/memproto/src/msg.rs",
        enum_name: "MsgBody",
        handler_file: "crates/core/src/runtime.rs",
        fns: &["on_packet"],
    },
    HandlerTarget {
        enum_file: "crates/memproto/src/msg.rs",
        enum_name: "MsgBody",
        handler_file: "crates/memproto/src/transport.rs",
        fns: &["on_receive"],
    },
    HandlerTarget {
        enum_file: "crates/p4rt/src/pipeline.rs",
        enum_name: "ControlMsg",
        handler_file: "crates/p4rt/src/pipeline.rs",
        fns: &["on_packet"],
    },
];

/// Lint every deterministic crate under `root` (the workspace root).
/// Returns diagnostics sorted by (file, line, rule).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let stats_path = root.join("crates/netsim/src/stats.rs");
    let sim_registry = match fs::read_to_string(&stats_path) {
        Ok(src) => rules::parse_engine_slots(&src),
        Err(_) => Vec::new(),
    };
    let metrics_path = root.join("crates/metrics/src/lib.rs");
    let gauge_registry = match fs::read_to_string(&metrics_path) {
        Ok(src) => rules::parse_gauge_names(&src),
        Err(_) => Vec::new(),
    };
    let load_path = root.join("crates/load/src/lib.rs");
    let load_registry = match fs::read_to_string(&load_path) {
        Ok(src) => rules::parse_load_counters(&src),
        Err(_) => Vec::new(),
    };
    let gossip_path = root.join("crates/gossip/src/lib.rs");
    let gossip_registry = match fs::read_to_string(&gossip_path) {
        Ok(src) => rules::parse_gossip_counters(&src),
        Err(_) => Vec::new(),
    };
    let span_path = root.join("crates/trace/src/event.rs");
    let span_registry = match fs::read_to_string(&span_path) {
        Ok(src) => rules::parse_span_labels(&src),
        Err(_) => Vec::new(),
    };
    let obs_path = root.join("crates/trace/src/sample.rs");
    let obs_registry = match fs::read_to_string(&obs_path) {
        Ok(src) => rules::parse_obs_counters(&src),
        Err(_) => Vec::new(),
    };
    let flight_path = root.join("crates/netsim/src/flight.rs");
    let flight_registry = match fs::read_to_string(&flight_path) {
        Ok(src) => rules::parse_flight_counters(&src),
        Err(_) => Vec::new(),
    };
    let cfg = LintConfig {
        sim_registry,
        gauge_registry,
        load_registry,
        gossip_registry,
        span_registry,
        obs_registry,
        flight_registry,
    };

    let mut diags = Vec::new();
    if cfg.sim_registry.is_empty() {
        diags.push(Diagnostic {
            file: "crates/netsim/src/stats.rs".to_string(),
            line: 1,
            rule: "D3/counter-name".to_string(),
            message: "could not parse ENGINE_SLOTS registry; sim.* names are unverifiable"
                .to_string(),
        });
    }
    if cfg.gauge_registry.is_empty() {
        diags.push(Diagnostic {
            file: "crates/metrics/src/lib.rs".to_string(),
            line: 1,
            rule: "D3/gauge-name".to_string(),
            message: "could not parse GAUGE_NAMES registry; gauge names are unverifiable"
                .to_string(),
        });
    }
    if cfg.load_registry.is_empty() {
        diags.push(Diagnostic {
            file: "crates/load/src/lib.rs".to_string(),
            line: 1,
            rule: "D3/counter-name".to_string(),
            message: "could not parse LOAD_COUNTERS registry; load.* names are unverifiable"
                .to_string(),
        });
    }
    if cfg.gossip_registry.is_empty() {
        diags.push(Diagnostic {
            file: "crates/gossip/src/lib.rs".to_string(),
            line: 1,
            rule: "D3/counter-name".to_string(),
            message: "could not parse GOSSIP_COUNTERS registry; gossip.* names are unverifiable"
                .to_string(),
        });
    }
    if cfg.span_registry.is_empty() {
        diags.push(Diagnostic {
            file: "crates/trace/src/event.rs".to_string(),
            line: 1,
            rule: "D3/event-name".to_string(),
            message: "could not parse SPAN_LABELS registry; plane span labels are unverifiable"
                .to_string(),
        });
    }
    if cfg.obs_registry.is_empty() {
        diags.push(Diagnostic {
            file: "crates/trace/src/sample.rs".to_string(),
            line: 1,
            rule: "D3/counter-name".to_string(),
            message: "could not parse OBS_COUNTERS registry; obs.* names are unverifiable"
                .to_string(),
        });
    }
    if cfg.flight_registry.is_empty() {
        diags.push(Diagnostic {
            file: "crates/netsim/src/flight.rs".to_string(),
            line: 1,
            rule: "D3/counter-name".to_string(),
            message: "could not parse FLIGHT_COUNTERS registry; flight.* names are unverifiable"
                .to_string(),
        });
    }

    for krate in DET_CRATES {
        for sub in ["src", "tests", "benches"] {
            let dir = root.join("crates").join(krate).join(sub);
            if dir.is_dir() {
                lint_dir(root, &dir, &cfg, &mut diags)?;
            }
        }
    }

    let event_rel = "crates/trace/src/event.rs";
    match fs::read_to_string(root.join(event_rel)) {
        Ok(src) => diags.extend(rules::lint_event_names(event_rel, &src)),
        Err(_) => diags.push(Diagnostic {
            file: event_rel.to_string(),
            line: 1,
            rule: "D3/event-name".to_string(),
            message: "event-name table file is missing".to_string(),
        }),
    }

    let gauge_rel = "crates/metrics/src/lib.rs";
    match fs::read_to_string(root.join(gauge_rel)) {
        Ok(src) => diags.extend(rules::lint_gauge_names(gauge_rel, &src)),
        Err(_) => diags.push(Diagnostic {
            file: gauge_rel.to_string(),
            line: 1,
            rule: "D3/gauge-name".to_string(),
            message: "gauge-name table file is missing".to_string(),
        }),
    }

    for (rel, targets) in PARITY_TARGETS {
        let path = root.join(rel);
        match fs::read_to_string(&path) {
            Ok(src) => diags.extend(rules::lint_enum_parity(rel, &src, targets)),
            Err(_) => diags.push(Diagnostic {
                file: rel.to_string(),
                line: 1,
                rule: "D4/wire-parity".to_string(),
                message: "wire-parity target file is missing".to_string(),
            }),
        }
    }

    for target in HANDLER_TARGETS {
        let missing = |file: &str, what: &str| Diagnostic {
            file: file.to_string(),
            line: 1,
            rule: "D7/handler-parity".to_string(),
            message: what.to_string(),
        };
        let Ok(enum_src) = fs::read_to_string(root.join(target.enum_file)) else {
            diags.push(missing(target.enum_file, "handler-parity enum file is missing"));
            continue;
        };
        let Some(variants) = rules::enum_variants_in(&enum_src, target.enum_name) else {
            diags.push(missing(
                target.enum_file,
                &format!("expected `enum {}` in this file; not found", target.enum_name),
            ));
            continue;
        };
        match fs::read_to_string(root.join(target.handler_file)) {
            Ok(src) => diags.extend(rules::lint_handler_parity(
                target.handler_file,
                &src,
                target.enum_name,
                &variants,
                target.fns,
            )),
            Err(_) => {
                diags.push(missing(target.handler_file, "handler-parity handler file is missing"))
            }
        }
    }

    rules::sort_diagnostics(&mut diags);
    Ok(diags)
}

/// Render diagnostics as a stable JSON array (one object per finding, sorted
/// like the text output). Hand-rolled so the linter keeps its zero-dependency
/// footprint; CI turns these into GitHub error annotations.
pub fn to_json(diags: &[Diagnostic]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            esc(&d.file),
            d.line,
            esc(&d.rule),
            esc(&d.message)
        ));
    }
    out.push_str(if diags.is_empty() { "]\n" } else { "\n]\n" });
    out
}

/// Recursively lint `.rs` files under `dir`, in sorted path order.
fn lint_dir(
    root: &Path,
    dir: &Path,
    cfg: &LintConfig,
    diags: &mut Vec<Diagnostic>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            lint_dir(root, &path, cfg, diags)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            let src = fs::read_to_string(&path)?;
            diags.extend(rules::lint_source(&rel, &src, cfg));
        }
    }
    Ok(())
}

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`. This is how the binary finds the repo root regardless of
/// the invocation directory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
