//! Anti-entropy convergence laws (ISSUE 9 satellite): the journal is a
//! CRDT, so digest→delta exchanges must converge to identical content in
//! any order, any grouping, and under arbitrary repetition. Each law is
//! checked on journals built from a random op tape (records, retires,
//! membership joins across several replicas) — the same state space the
//! chaos soak's gossip family drives through a lossy fabric, here with
//! the network stripped away so a violation names the algebra directly.

use proptest::prelude::*;
use rdv_gossip::{Digest, Journal};
use rdv_objspace::ObjId;

/// One raw op draw: `(kind, obj, holder, at)`. Kinds 0–3 record, 4
/// retires, 5 joins — records dominate, mirroring real churn. The value
/// spaces are small so replicas collide on objects (forcing real LWW
/// conflicts, not disjoint merges).
type RawOp = (u8, u8, u8, u16);

/// Op tapes for `n` replicas: each tape is applied to its own journal.
fn tapes(n: usize) -> impl Strategy<Value = Vec<Vec<RawOp>>> {
    collection::vec(collection::vec((0u8..6, 0u8..6, 0u8..5, 0u16..1000), 1..12), n)
}

fn build(replica: u64, tape: &[RawOp]) -> Journal {
    let mut j = Journal::new(replica);
    for &(kind, obj, holder, at) in tape {
        match kind {
            // Inboxes offset past the object space so a holder is never
            // confused with an object id.
            0..=3 => j.record_holder(ObjId(obj as u128), ObjId(0x100 + holder as u128), at as u64),
            4 => j.retire_holder(ObjId(obj as u128), at as u64),
            _ => j.join_member(ObjId(0x100 + holder as u128)),
        }
    }
    j
}

/// Ship everything `from` knows that `to`'s digest lacks.
fn push(from: &Journal, to: &mut Journal) {
    let delta = from.delta_since(&to.digest(), false);
    to.apply(&delta);
}

/// One full state as a delta (what a brand-new peer would receive).
fn full(j: &Journal) -> rdv_gossip::Delta {
    j.delta_since(&Digest::default(), false)
}

proptest! {
    /// Idempotence: applying the same delta twice is the same as once.
    #[test]
    fn apply_is_idempotent(tapes in tapes(2)) {
        let a = build(1, &tapes[0]);
        let mut b = build(2, &tapes[1]);
        let delta = full(&a);
        b.apply(&delta);
        let once = b.fingerprint();
        b.apply(&delta);
        prop_assert_eq!(b.fingerprint(), once, "re-applying a delta changed content");
    }

    /// Commutativity: merging B-then-C equals merging C-then-B.
    #[test]
    fn apply_commutes(tapes in tapes(3)) {
        let b = build(2, &tapes[1]);
        let c = build(3, &tapes[2]);
        let mut bc = build(1, &tapes[0]);
        let mut cb = build(1, &tapes[0]);
        bc.apply(&full(&b));
        bc.apply(&full(&c));
        cb.apply(&full(&c));
        cb.apply(&full(&b));
        prop_assert_eq!(bc.fingerprint(), cb.fingerprint(), "merge order changed content");
    }

    /// Associativity (grouping): A∪(B∪C) equals (A∪B)∪C — a delta built
    /// from an already-merged journal carries the same information as the
    /// two source deltas applied separately.
    #[test]
    fn apply_associates(tapes in tapes(3)) {
        // Left: B absorbs C, then A absorbs the merged B.
        let mut b_with_c = build(2, &tapes[1]);
        b_with_c.apply(&full(&build(3, &tapes[2])));
        let mut left = build(1, &tapes[0]);
        left.apply(&full(&b_with_c));
        // Right: A absorbs B, then absorbs C.
        let mut right = build(1, &tapes[0]);
        right.apply(&full(&build(2, &tapes[1])));
        right.apply(&full(&build(3, &tapes[2])));
        prop_assert_eq!(left.fingerprint(), right.fingerprint(), "grouping changed content");
    }

    /// Convergence: run pairwise digest→delta exchanges in a random order
    /// until quiescent; every journal ends with the same fingerprint, the
    /// same per-object answer, and the same answer any other exchange
    /// order produces.
    #[test]
    fn random_exchange_orders_converge(
        tapes in tapes(4),
        order_seed in any::<u64>(),
    ) {
        let n = tapes.len();
        // Reference: everyone absorbs everyone's full state directly.
        let mut reference = build(1, &tapes[0]);
        for (i, tape) in tapes.iter().enumerate().skip(1) {
            reference.apply(&full(&build(i as u64 + 1, tape)));
        }

        let mut nodes: Vec<Journal> =
            tapes.iter().enumerate().map(|(i, t)| build(i as u64 + 1, t)).collect();
        // Deterministic pseudo-random pair schedule from the drawn seed.
        let mut state = order_seed | 1;
        let mut next = move |m: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m
        };
        // Bounded pump: stop at the first fully-converged sweep. The
        // bound is generous — random pairs cover the 4-clique fast.
        for _ in 0..4 * n * n {
            let i = next(n);
            let j = (i + 1 + next(n - 1)) % n;
            let (lo, hi) = (i.min(j), i.max(j));
            let (a, b) = nodes.split_at_mut(hi);
            let (a, b) = (&mut a[lo], &mut b[0]);
            // Both directions, like the sync engine's 3-leg round.
            push(a, b);
            push(b, a);
            let fp = nodes[0].fingerprint();
            if nodes.iter().all(|x| x.fingerprint() == fp) {
                break;
            }
        }

        let fp = reference.fingerprint();
        for (i, node) in nodes.iter().enumerate() {
            prop_assert_eq!(
                node.fingerprint(), fp,
                "node {} diverged from the direct-merge reference", i
            );
            // The convergence oracle is honest: equal fingerprints must
            // mean equal answers to every lookup the repair path asks.
            for obj in 0u128..6 {
                prop_assert_eq!(node.lookup(ObjId(obj)), reference.lookup(ObjId(obj)));
            }
            for inbox in 0u128..5 {
                prop_assert_eq!(
                    node.is_member(ObjId(0x100 + inbox)),
                    reference.is_member(ObjId(0x100 + inbox))
                );
            }
        }
        // Quiescence: no one is ahead of anyone, and the delta a digest
        // provokes is empty — anti-entropy has nothing left to ship.
        for a in &nodes {
            for b in &nodes {
                prop_assert!(!a.is_ahead_of(&b.digest()));
                let d = a.delta_since(&b.digest(), false);
                prop_assert!(d.entries.is_empty() && d.members.is_none());
            }
        }
    }

    /// Deltas are minimal: after one full exchange, the reverse digest
    /// provokes only what the other side is genuinely missing — never a
    /// re-send of entries it already incorporated.
    #[test]
    fn no_redundant_resend(tapes in tapes(2)) {
        let mut a = build(1, &tapes[0]);
        let mut b = build(2, &tapes[1]);
        push(&a, &mut b);
        // B now supersets A's content; what B ships back must exclude
        // every entry whose origin A already covers.
        let back = b.delta_since(&a.digest(), false);
        let a_digest = a.digest();
        for (_, _, (replica, seq)) in &back.entries {
            let seen = a_digest.vv.iter().find(|(r, _)| r == replica).map_or(0, |(_, s)| *s);
            prop_assert!(*seq > seen, "entry {replica}:{seq} was already covered (seen {seen})");
        }
        a.apply(&back);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
