//! Journal-synchronized descriptor propagation (DESIGN.md §12).
//!
//! Replaces flood rediscovery in `rdv-discovery`: host descriptors and
//! holder facts are CRDT envelopes (`rdv-crdt` LWW registers + OR-set
//! membership) in a per-node [`Journal`], kept convergent by
//! seed-deterministic neighbor anti-entropy ([`GossipSync`]: digest
//! exchange → delta sync, paced on sim-time timers). A churn event costs
//! O(1) gossip messages per round instead of an O(hosts) broadcast, and a
//! stale destination-cache entry is repaired from the local journal
//! without touching the network. Gossip frames travel relay-first with
//! priority fallback to the direct route when a partition cuts the relay
//! off ([`path::PeerPath`]).

pub mod journal;
pub mod path;
pub mod sync;

pub use journal::{Delta, Digest, HolderFact, Journal, Origin};
pub use path::{PeerPath, Route};
pub use sync::{ctr, GossipConfig, GossipCtr, GossipSync};

/// Every `gossip.*` counter name the subsystem emits, in slot order of
/// [`sync::GossipCtr`]. `rdv-lint` (rule D3) parses this table and flags
/// any `gossip.*` counter used in workspace code but not registered here.
pub const GOSSIP_COUNTERS: [&str; 8] = [
    "gossip.rounds",
    "gossip.digests_sent",
    "gossip.deltas_sent",
    "gossip.entries_applied",
    "gossip.relay_fallbacks",
    "gossip.relayed",
    "gossip.repair_hits",
    "gossip.facts_expired",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_registry_matches_interned_set() {
        use rdv_netsim::stats::Counters;
        let mut counters = Counters::new();
        let c = sync::ctr();
        for id in [
            c.rounds,
            c.digests_sent,
            c.deltas_sent,
            c.entries_applied,
            c.relay_fallbacks,
            c.relayed,
            c.repair_hits,
            c.facts_expired,
        ] {
            counters.inc_id(id);
        }
        for name in GOSSIP_COUNTERS {
            assert_eq!(counters.get(name), 1, "{name} must be interned under its registry name");
        }
    }
}
