//! The sans-IO anti-entropy round machine.
//!
//! One [`GossipSync`] lives inside each participating node. The owner
//! arms a sim-time timer at `cfg.period`; on each firing it calls
//! [`GossipSync::on_round`] and transmits the returned digests, and for
//! every received gossip packet it calls [`GossipSync::on_msg`] and
//! transmits whatever comes back. The machine never touches a clock or an
//! RNG: peer selection rotates deterministically with the round counter,
//! so a seeded simulation replays the exact same exchange sequence at any
//! shard count.
//!
//! Exchange shape (bounded three-leg ping-pong):
//!
//! 1. A sends its [`Digest`] to a rotation-selected peer (relay-first).
//! 2. B replies with a [`Delta`] of what A lacks — always, even when
//!    empty, because the reply doubles as the liveness ack that keeps the
//!    relay path trusted.
//! 3. A applies, and answers with a reciprocal delta only if B's version
//!    vector shows B behind (`want_reply` stops the ping-pong there).

use rdv_memproto::msg::{Msg, MsgBody};
use rdv_netsim::stats::{CounterId, Counters};
use rdv_netsim::SimTime;
use rdv_objspace::ObjId;

use crate::journal::{orset_fingerprint, Delta, Digest, Journal};
use crate::path::{PeerPath, Route};

/// Pacing and fallback knobs for the round machine.
#[derive(Debug, Clone, Copy)]
pub struct GossipConfig {
    /// Sim-time between anti-entropy rounds.
    pub period: SimTime,
    /// Peers contacted per round.
    pub fanout: usize,
    /// Unanswered digests on the relay path before falling back direct.
    pub suspect_after: u32,
    /// Drop nil-holder tombstones older than this sim-time horizon at the
    /// start of each round (`None` keeps them forever). Pick a horizon
    /// comfortably past anti-entropy convergence time, or a peer that
    /// missed the tombstone keeps its stale fact.
    pub expire_after: Option<SimTime>,
}

impl Default for GossipConfig {
    fn default() -> GossipConfig {
        GossipConfig {
            period: SimTime::from_micros(40),
            fanout: 1,
            suspect_after: 2,
            expire_after: None,
        }
    }
}

/// Interned `gossip.*` counter IDs (names in [`crate::GOSSIP_COUNTERS`]).
pub struct GossipCtr {
    /// `gossip.rounds`
    pub rounds: CounterId,
    /// `gossip.digests_sent`
    pub digests_sent: CounterId,
    /// `gossip.deltas_sent`
    pub deltas_sent: CounterId,
    /// `gossip.entries_applied`
    pub entries_applied: CounterId,
    /// `gossip.relay_fallbacks`
    pub relay_fallbacks: CounterId,
    /// `gossip.relayed`
    pub relayed: CounterId,
    /// `gossip.repair_hits`
    pub repair_hits: CounterId,
    /// `gossip.facts_expired`
    pub facts_expired: CounterId,
}

/// The interned gossip counter set (process-wide, intern-once).
pub fn ctr() -> &'static GossipCtr {
    use std::sync::OnceLock;
    static CTRS: OnceLock<GossipCtr> = OnceLock::new();
    CTRS.get_or_init(|| GossipCtr {
        rounds: CounterId::intern("gossip.rounds"),
        digests_sent: CounterId::intern("gossip.digests_sent"),
        deltas_sent: CounterId::intern("gossip.deltas_sent"),
        entries_applied: CounterId::intern("gossip.entries_applied"),
        relay_fallbacks: CounterId::intern("gossip.relay_fallbacks"),
        relayed: CounterId::intern("gossip.relayed"),
        repair_hits: CounterId::intern("gossip.repair_hits"),
        facts_expired: CounterId::intern("gossip.facts_expired"),
    })
}

/// Per-node anti-entropy state: the journal, the peer set with path
/// preferences, and the round counter driving deterministic rotation.
#[derive(Debug)]
pub struct GossipSync {
    inbox: ObjId,
    /// The descriptor journal this node gossips.
    pub journal: Journal,
    cfg: GossipConfig,
    peers: Vec<PeerPath>,
    round: u64,
}

impl GossipSync {
    /// A round machine for `inbox`, journaling as `replica`.
    pub fn new(inbox: ObjId, replica: u64, cfg: GossipConfig) -> GossipSync {
        GossipSync { inbox, journal: Journal::new(replica), cfg, peers: Vec::new(), round: 0 }
    }

    /// Register a peer, optionally reached relay-first through `relay`.
    pub fn add_peer(&mut self, peer: ObjId, relay: Option<ObjId>) {
        self.peers.push(PeerPath::new(peer, relay));
    }

    /// Registered peer count.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// The configured round period (owners arm their timer with this).
    pub fn period(&self) -> SimTime {
        self.cfg.period
    }

    /// Rounds fired so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Run one anti-entropy round at sim time `now_ns`: expire aged
    /// tombstones when configured, then pick `fanout` peers by
    /// deterministic rotation and emit a digest to each along its
    /// preferred path.
    pub fn on_round(&mut self, now_ns: u64, counters: &mut Counters) -> Vec<Msg> {
        if let Some(horizon) = self.cfg.expire_after {
            let expired = self.journal.expire_tombstones(now_ns, horizon.as_nanos());
            if expired > 0 {
                counters.add_id(ctr().facts_expired, expired as u64);
            }
        }
        if self.peers.is_empty() {
            return Vec::new();
        }
        counters.inc_id(ctr().rounds);
        let round = self.round;
        self.round += 1;
        let digest = rdv_wire::encode_to_vec(&self.journal.digest());
        let mut out = Vec::new();
        for k in 0..self.cfg.fanout.min(self.peers.len()) {
            let idx = ((round as usize) * self.cfg.fanout + k) % self.peers.len();
            let path = &mut self.peers[idx];
            let (route, fell_back) = path.choose(self.cfg.suspect_after);
            if fell_back {
                counters.inc_id(ctr().relay_fallbacks);
            }
            let wire_dst = match route {
                Route::Relay(relay) => relay,
                Route::Direct => path.peer,
            };
            path.on_sent();
            counters.inc_id(ctr().digests_sent);
            out.push(Msg::new(
                wire_dst,
                self.inbox,
                MsgBody::GossipDigest { round, target: path.peer, data: digest.clone() },
            ));
        }
        out
    }

    /// Handle a received gossip packet; returns the packets to transmit
    /// in response (forwarded frame, delta reply, or reciprocal delta).
    pub fn on_msg(&mut self, msg: &Msg, counters: &mut Counters) -> Vec<Msg> {
        match &msg.body {
            MsgBody::GossipDigest { round, target, data } => {
                if *target != self.inbox {
                    if msg.header.dst != self.inbox {
                        // Flood-delivered overhear (the frame was addressed
                        // past us, not to us): not our relay duty. Only a
                        // frame addressed to our inbox carries a relay leg.
                        return Vec::new();
                    }
                    // Relay leg: forward toward the target, preserving the
                    // originator as source so the reply returns directly.
                    counters.inc_id(ctr().relayed);
                    return vec![Msg::new(
                        *target,
                        msg.header.src,
                        MsgBody::GossipDigest {
                            round: *round,
                            target: *target,
                            data: data.clone(),
                        },
                    )];
                }
                let Ok(theirs) = rdv_wire::decode_from_slice::<Digest>(data) else {
                    return Vec::new();
                };
                // Always answer — an empty delta is still the liveness ack
                // that keeps the initiator's relay path trusted.
                let delta = self.journal.delta_since(&theirs, true);
                counters.inc_id(ctr().deltas_sent);
                vec![Msg::new(
                    msg.header.src,
                    self.inbox,
                    MsgBody::GossipDelta {
                        round: *round,
                        target: msg.header.src,
                        data: rdv_wire::encode_to_vec(&delta),
                    },
                )]
            }
            MsgBody::GossipDelta { round, target, data } => {
                if *target != self.inbox {
                    if msg.header.dst != self.inbox {
                        return Vec::new(); // flood overhear, as above
                    }
                    counters.inc_id(ctr().relayed);
                    return vec![Msg::new(
                        *target,
                        msg.header.src,
                        MsgBody::GossipDelta { round: *round, target: *target, data: data.clone() },
                    )];
                }
                let Ok(delta) = rdv_wire::decode_from_slice::<Delta>(data) else {
                    return Vec::new();
                };
                let their_members_fp = delta.members.as_ref().map(orset_fingerprint);
                let applied = self.journal.apply(&delta);
                counters.add_id(ctr().entries_applied, applied as u64);
                if let Some(path) = self.peers.iter_mut().find(|p| p.peer == msg.header.src) {
                    path.on_answered();
                }
                if !delta.want_reply {
                    return Vec::new();
                }
                // Reciprocate only if their version vector shows them
                // behind. Their membership fingerprint is the one of the
                // set they shipped (their full state); if they shipped
                // none, the fingerprints matched at digest time.
                let theirs = Digest {
                    vv: delta.vv.clone(),
                    members_fp: their_members_fp
                        .unwrap_or_else(|| self.journal.members_fingerprint()),
                };
                if !self.journal.is_ahead_of(&theirs) {
                    return Vec::new();
                }
                let reply = self.journal.delta_since(&theirs, false);
                counters.inc_id(ctr().deltas_sent);
                vec![Msg::new(
                    msg.header.src,
                    self.inbox,
                    MsgBody::GossipDelta {
                        round: *round,
                        target: msg.header.src,
                        data: rdv_wire::encode_to_vec(&reply),
                    },
                )]
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pump(
        nodes: &mut [GossipSync],
        counters: &mut Counters,
        mut inflight: Vec<Msg>,
    ) -> (usize, usize) {
        // Deliver until quiescent; returns (packets delivered, hops).
        let (mut delivered, mut hops) = (0, 0);
        while let Some(msg) = inflight.pop() {
            delivered += 1;
            hops += 1;
            assert!(hops < 10_000, "gossip exchange must terminate");
            let Some(node) = nodes.iter_mut().find(|n| n.inbox == msg.header.dst) else {
                continue;
            };
            inflight.extend(node.on_msg(&msg, counters));
        }
        (delivered, hops)
    }

    #[test]
    fn one_round_converges_two_peers() {
        let mut counters = Counters::new();
        let mut a = GossipSync::new(ObjId(0xA), 1, GossipConfig::default());
        let mut b = GossipSync::new(ObjId(0xB), 2, GossipConfig::default());
        a.add_peer(ObjId(0xB), None);
        b.add_peer(ObjId(0xA), None);
        a.journal.record_holder(ObjId(1), ObjId(0xA), 100);
        b.journal.record_holder(ObjId(2), ObjId(0xB), 120);

        let first = a.on_round(200, &mut counters);
        assert_eq!(first.len(), 1);
        let mut nodes = [a, b];
        pump(&mut nodes, &mut counters, first);
        assert_eq!(nodes[0].journal.fingerprint(), nodes[1].journal.fingerprint());
        assert_eq!(counters.get_id(ctr().entries_applied), 2, "one entry each way");
    }

    #[test]
    fn relay_leg_forwards_and_partition_falls_back() {
        let mut counters = Counters::new();
        let cfg = GossipConfig { suspect_after: 2, ..GossipConfig::default() };
        let mut a = GossipSync::new(ObjId(0xA), 1, cfg);
        let mut r = GossipSync::new(ObjId(0xE), 3, cfg);
        a.add_peer(ObjId(0xB), Some(ObjId(0xE)));
        a.journal.record_holder(ObjId(1), ObjId(0xA), 100);

        // Healthy: the digest goes to the relay, which forwards it.
        let out = a.on_round(200, &mut counters);
        assert_eq!(out[0].header.dst, ObjId(0xE));
        let fwd = r.on_msg(&out[0], &mut counters);
        assert_eq!(fwd.len(), 1);
        assert_eq!(fwd[0].header.dst, ObjId(0xB));
        assert_eq!(fwd[0].header.src, ObjId(0xA), "origin preserved through the relay");
        assert_eq!(counters.get_id(ctr().relayed), 1);

        // Partitioned relay: two more unanswered rounds demote to direct.
        let out = a.on_round(300, &mut counters);
        assert_eq!(out[0].header.dst, ObjId(0xE), "still relay-first");
        let out = a.on_round(400, &mut counters);
        assert_eq!(out[0].header.dst, ObjId(0xB), "fallback to the direct route");
        assert_eq!(counters.get_id(ctr().relay_fallbacks), 1);
    }

    #[test]
    fn rounds_expire_aged_tombstones_when_configured() {
        let mut counters = Counters::new();
        let cfg = GossipConfig {
            expire_after: Some(SimTime::from_nanos(500)),
            ..GossipConfig::default()
        };
        let mut a = GossipSync::new(ObjId(0xA), 1, cfg);
        a.add_peer(ObjId(0xB), None);
        a.journal.record_holder(ObjId(1), ObjId(0xA), 100);
        a.journal.retire_holder(ObjId(1), 200);

        // Inside the horizon: the tombstone stays.
        a.on_round(400, &mut counters);
        assert_eq!(a.journal.len(), 1);
        assert_eq!(counters.get_id(ctr().facts_expired), 0);

        // Past it: expired at the next round, tallied once.
        a.on_round(900, &mut counters);
        assert_eq!(a.journal.len(), 0, "aged tombstone dropped");
        assert_eq!(counters.get_id(ctr().facts_expired), 1);
        a.on_round(1_300, &mut counters);
        assert_eq!(counters.get_id(ctr().facts_expired), 1, "no double count");
    }
}
