//! Relay-first path selection with priority fallback to the direct route.
//!
//! Aura's transport strategy: prefer the configured relay (a rack
//! aggregator or well-connected neighbor) for gossip exchanges, and fall
//! back to the direct route only after the relay path has gone
//! unanswered for `suspect_after` consecutive digests — the signature of
//! a partition cutting the relay off. A healthy exchange on any path
//! restores relay preference, so the fallback is a priority order, not a
//! permanent demotion.

use rdv_objspace::ObjId;

/// Which wire destination an exchange should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Forward through the relay's inbox.
    Relay(ObjId),
    /// Straight to the peer's inbox.
    Direct,
}

/// Per-peer path state: the peer, its optional relay, and how many
/// digests have gone unanswered on the current preference.
#[derive(Debug, Clone)]
pub struct PeerPath {
    /// The peer's inbox (final gossip target).
    pub peer: ObjId,
    /// Preferred first hop, if any.
    pub relay: Option<ObjId>,
    unanswered: u32,
    fallback: bool,
}

impl PeerPath {
    /// A peer reached relay-first through `relay` (or always direct when
    /// `None`).
    pub fn new(peer: ObjId, relay: Option<ObjId>) -> PeerPath {
        PeerPath { peer, relay, unanswered: 0, fallback: false }
    }

    /// Route for the next digest. Returns `(route, fell_back)` where
    /// `fell_back` is true exactly when this call demoted the relay — the
    /// caller counts it once per demotion.
    pub fn choose(&mut self, suspect_after: u32) -> (Route, bool) {
        let Some(relay) = self.relay else { return (Route::Direct, false) };
        let mut fell_back = false;
        if !self.fallback && self.unanswered >= suspect_after {
            self.fallback = true;
            fell_back = true;
        }
        if self.fallback {
            (Route::Direct, fell_back)
        } else {
            (Route::Relay(relay), false)
        }
    }

    /// A digest left on the chosen route.
    pub fn on_sent(&mut self) {
        self.unanswered = self.unanswered.saturating_add(1);
    }

    /// An exchange with this peer completed: restore relay preference.
    pub fn on_answered(&mut self) {
        self.unanswered = 0;
        self.fallback = false;
    }

    /// Whether the path is currently demoted to direct.
    pub fn fallen_back(&self) -> bool {
        self.fallback
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relayless_peers_are_always_direct() {
        let mut p = PeerPath::new(ObjId(1), None);
        for _ in 0..5 {
            assert_eq!(p.choose(2), (Route::Direct, false));
            p.on_sent();
        }
    }

    #[test]
    fn unanswered_relay_demotes_then_recovers() {
        let mut p = PeerPath::new(ObjId(1), Some(ObjId(9)));
        assert_eq!(p.choose(2), (Route::Relay(ObjId(9)), false));
        p.on_sent();
        assert_eq!(p.choose(2), (Route::Relay(ObjId(9)), false));
        p.on_sent();
        // Two unanswered digests: the third choice demotes, once.
        assert_eq!(p.choose(2), (Route::Direct, true));
        p.on_sent();
        assert_eq!(p.choose(2), (Route::Direct, false), "demotion counts once");
        // An answer restores relay preference.
        p.on_answered();
        assert!(!p.fallen_back());
        assert_eq!(p.choose(2), (Route::Relay(ObjId(9)), false));
    }
}
