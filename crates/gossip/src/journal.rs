//! The per-node descriptor journal: CRDT holder-fact envelopes plus
//! replica membership, with version-vector digests and content deltas.
//!
//! Every fact is a [`LwwRegister`] over a [`HolderFact`] keyed by object
//! ID; membership is an [`OrSet`] of host inboxes. Both merge by CRDT
//! join, so any exchange order converges to the same content — the
//! property `tests/convergence.rs` proptests and the chaos soak re-checks
//! under partitions. A digest is the journal's version vector (max origin
//! sequence incorporated per replica) plus a membership fingerprint; a
//! delta carries exactly the entries the digest shows missing. Superseded
//! writes are never shipped: an entry overwritten by a newer stamp travels
//! as its final value under the winner's origin, and merging the sender's
//! version vector records the dominated sequences as covered.

use rdv_crdt::{LwwRegister, Merge, OrSet};
use rdv_det::DetMap;
use rdv_objspace::ObjId;
use rdv_wire::{Decode, Encode, WireReader, WireResult, WireWriter};

/// Upper bound on decoded delta collections (corruption guard).
const MAX_ENTRIES: u64 = 1 << 24;

/// One descriptor fact: "the object lives at `holder`, written in that
/// holder's restart `epoch`". A nil `holder` is a tombstone — the previous
/// location is known dead and must not be repaired from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HolderFact {
    /// Inbox of the holding host (nil = tombstone).
    pub holder: ObjId,
    /// The writer's restart epoch; bumped on crash/restart so facts from
    /// a dead incarnation are distinguishable.
    pub epoch: u64,
}

impl Encode for HolderFact {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u128(self.holder.as_u128());
        w.put_uvarint(self.epoch);
    }
}

impl Decode for HolderFact {
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(HolderFact { holder: ObjId(r.get_u128()?), epoch: r.get_uvarint()? })
    }
}

/// Origin stamp of a journal write: `(replica, per-replica sequence)`.
pub type Origin = (u64, u64);

#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    fact: LwwRegister<HolderFact>,
    origin: Origin,
}

/// Version-vector summary of a journal, exchanged as the first leg of an
/// anti-entropy round.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Digest {
    /// `(replica, max origin sequence incorporated)`, sorted by replica.
    pub vv: Vec<(u64, u64)>,
    /// Fingerprint of the membership OR-set (full state ships only on
    /// mismatch — membership churn is rare next to holder churn).
    pub members_fp: u64,
}

impl Digest {
    fn seen(&self, replica: u64) -> u64 {
        self.vv.iter().find(|(r, _)| *r == replica).map(|(_, s)| *s).unwrap_or(0)
    }
}

impl Encode for Digest {
    fn encode(&self, w: &mut WireWriter) {
        w.put_uvarint(self.vv.len() as u64);
        for (r, s) in &self.vv {
            w.put_uvarint(*r);
            w.put_uvarint(*s);
        }
        w.put_u64(self.members_fp);
    }
}

impl Decode for Digest {
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let n = r.get_uvarint()?.min(MAX_ENTRIES);
        let mut vv = Vec::with_capacity(n as usize);
        for _ in 0..n {
            vv.push((r.get_uvarint()?, r.get_uvarint()?));
        }
        Ok(Digest { vv, members_fp: r.get_u64()? })
    }
}

/// The second (and optional third) leg: entries the digest showed missing,
/// the sender's own version vector, and — on membership-fingerprint
/// mismatch — the full membership OR-set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// Sender's version vector (merged by pointwise max on apply).
    pub vv: Vec<(u64, u64)>,
    /// `(object, fact, origin)` triples, sorted by object ID.
    pub entries: Vec<(u128, LwwRegister<HolderFact>, Origin)>,
    /// Full membership state, present only when fingerprints differed.
    pub members: Option<OrSet<u128>>,
    /// Whether the receiver should answer with its own delta (bounded
    /// ping-pong: a digest asks with `true`, the reply ships `false`).
    pub want_reply: bool,
}

impl Encode for Delta {
    fn encode(&self, w: &mut WireWriter) {
        w.put_uvarint(self.vv.len() as u64);
        for (r, s) in &self.vv {
            w.put_uvarint(*r);
            w.put_uvarint(*s);
        }
        w.put_uvarint(self.entries.len() as u64);
        for (obj, fact, origin) in &self.entries {
            w.put_u128(*obj);
            fact.encode(w);
            w.put_uvarint(origin.0);
            w.put_uvarint(origin.1);
        }
        match &self.members {
            Some(m) => {
                w.put_u8(1);
                m.encode(w);
            }
            None => w.put_u8(0),
        }
        w.put_u8(self.want_reply as u8);
    }
}

impl Decode for Delta {
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let n = r.get_uvarint()?.min(MAX_ENTRIES);
        let mut vv = Vec::with_capacity(n as usize);
        for _ in 0..n {
            vv.push((r.get_uvarint()?, r.get_uvarint()?));
        }
        let n = r.get_uvarint()?.min(MAX_ENTRIES);
        let mut entries = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let obj = r.get_u128()?;
            let fact = LwwRegister::<HolderFact>::decode(r)?;
            entries.push((obj, fact, (r.get_uvarint()?, r.get_uvarint()?)));
        }
        let members = match r.get_u8()? {
            0 => None,
            _ => Some(OrSet::<u128>::decode(r)?),
        };
        Ok(Delta { vv, entries, members, want_reply: r.get_u8()? != 0 })
    }
}

/// The journal proper: holder facts + membership + the version vector of
/// incorporated origins.
#[derive(Debug, Clone)]
pub struct Journal {
    replica: u64,
    epoch: u64,
    next_seq: u64,
    last_stamp: u64,
    holders: DetMap<u128, Entry>,
    members: OrSet<u128>,
    vv: DetMap<u64, u64>,
}

impl Journal {
    /// Empty journal owned by `replica`.
    pub fn new(replica: u64) -> Journal {
        Journal {
            replica,
            epoch: 0,
            next_seq: 0,
            last_stamp: 0,
            holders: DetMap::new(),
            members: OrSet::new(),
            vv: DetMap::new(),
        }
    }

    /// This journal's replica ID.
    pub fn replica(&self) -> u64 {
        self.replica
    }

    /// The writer's current restart epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Bump the restart epoch (call from `on_restart`): facts written
    /// before the crash are distinguishable from re-recorded ones.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Number of holder facts (tombstones included).
    pub fn len(&self) -> usize {
        self.holders.len()
    }

    /// Whether the journal holds no facts.
    pub fn is_empty(&self) -> bool {
        self.holders.is_empty()
    }

    fn stamp(&mut self, now_ns: u64) -> u64 {
        // Per-replica monotone stamps keep the LWW uniqueness invariant
        // even for same-tick writes.
        self.last_stamp = now_ns.max(self.last_stamp + 1);
        self.last_stamp
    }

    /// Record "`obj` lives at `holder`" as a local write stamped from
    /// `now_ns` (per-replica monotone; ties across replicas break on
    /// replica ID inside the LWW register).
    pub fn record_holder(&mut self, obj: ObjId, holder: ObjId, now_ns: u64) {
        let time = self.stamp(now_ns);
        let seq = self.next_seq + 1;
        self.next_seq = seq;
        let fact = HolderFact { holder, epoch: self.epoch };
        match self.holders.get_mut(&obj.as_u128()) {
            Some(e) => {
                e.fact.set(self.replica, time, fact);
                e.origin = (self.replica, seq);
            }
            None => {
                let mut reg = LwwRegister::new(HolderFact { holder: ObjId(0), epoch: 0 });
                reg.set(self.replica, time, fact);
                self.holders
                    .insert(obj.as_u128(), Entry { fact: reg, origin: (self.replica, seq) });
            }
        }
        let seen = self.vv.entry(self.replica).or_insert(0);
        *seen = (*seen).max(seq);
    }

    /// Tombstone `obj`'s location: its last known holder is dead and must
    /// not be repaired from.
    pub fn retire_holder(&mut self, obj: ObjId, now_ns: u64) {
        self.record_holder(obj, ObjId(0), now_ns);
    }

    /// The live holder of `obj`, if the journal knows one (tombstones and
    /// unknown objects are `None`).
    pub fn lookup(&self, obj: ObjId) -> Option<ObjId> {
        let fact = self.holders.get(&obj.as_u128())?.fact.get();
        (!fact.holder.is_nil()).then_some(fact.holder)
    }

    /// The raw fact for `obj`, tombstones included.
    pub fn fact(&self, obj: ObjId) -> Option<HolderFact> {
        self.holders.get(&obj.as_u128()).map(|e| *e.fact.get())
    }

    /// Add `inbox` to the membership OR-set.
    pub fn join_member(&mut self, inbox: ObjId) {
        self.members.add(self.replica, inbox.as_u128());
    }

    /// Remove `inbox` from the membership OR-set (add-wins on races).
    pub fn leave_member(&mut self, inbox: ObjId) {
        self.members.remove(&inbox.as_u128());
    }

    /// Whether `inbox` is a current member.
    pub fn is_member(&self, inbox: ObjId) -> bool {
        self.members.contains(&inbox.as_u128())
    }

    /// Number of current members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Fingerprint of the membership OR-set alone (the digest field).
    pub fn members_fingerprint(&self) -> u64 {
        orset_fingerprint(&self.members)
    }

    /// The digest (version vector + membership fingerprint) for the first
    /// leg of an anti-entropy exchange.
    pub fn digest(&self) -> Digest {
        let mut vv: Vec<(u64, u64)> = self.vv.iter().map(|(r, s)| (*r, *s)).collect();
        vv.sort_unstable();
        Digest { vv, members_fp: self.members_fingerprint() }
    }

    /// Whether this journal holds anything `theirs` is missing.
    pub fn is_ahead_of(&self, theirs: &Digest) -> bool {
        self.holders.values().any(|e| e.origin.1 > theirs.seen(e.origin.0))
            || self.members_fingerprint() != theirs.members_fp
    }

    /// The entries `theirs` is missing, as a delta ready to ship.
    pub fn delta_since(&self, theirs: &Digest, want_reply: bool) -> Delta {
        let mut entries: Vec<(u128, LwwRegister<HolderFact>, Origin)> = self
            .holders
            .iter()
            .filter(|(_, e)| e.origin.1 > theirs.seen(e.origin.0))
            .map(|(obj, e)| (*obj, e.fact.clone(), e.origin))
            .collect();
        entries.sort_unstable_by_key(|(obj, _, _)| *obj);
        let members =
            (self.members_fingerprint() != theirs.members_fp).then(|| self.members.clone());
        let mut vv: Vec<(u64, u64)> = self.vv.iter().map(|(r, s)| (*r, *s)).collect();
        vv.sort_unstable();
        Delta { vv, entries, members, want_reply }
    }

    /// Drop nil-holder tombstones whose LWW write time is older than
    /// `now_ns - horizon`. The version vector is untouched — the expired
    /// origins stay covered, so peers never re-request the dominated
    /// writes; a peer that missed the tombstone entirely keeps its stale
    /// fact, which is the standard tombstone-GC trade: pick a horizon
    /// comfortably past anti-entropy convergence time. Returns how many
    /// facts were dropped.
    pub fn expire_tombstones(&mut self, now_ns: u64, horizon: u64) -> usize {
        let cutoff = now_ns.saturating_sub(horizon);
        let before = self.holders.len();
        self.holders.retain(|_, e| !(e.fact.get().holder.is_nil() && e.fact.stamp().0 < cutoff));
        before - self.holders.len()
    }

    /// Merge a delta: LWW-join each entry, join membership if present,
    /// pointwise-max the version vector. Returns how many entries changed
    /// this journal's content.
    pub fn apply(&mut self, delta: &Delta) -> usize {
        let mut applied = 0;
        for (obj, fact, origin) in &delta.entries {
            match self.holders.get_mut(obj) {
                Some(e) => {
                    let before = e.fact.stamp();
                    e.fact.merge(fact);
                    if e.fact.stamp() != before {
                        e.origin = *origin;
                        applied += 1;
                    }
                }
                None => {
                    self.holders.insert(*obj, Entry { fact: fact.clone(), origin: *origin });
                    applied += 1;
                }
            }
        }
        if let Some(members) = &delta.members {
            self.members.merge(members);
        }
        for (replica, seq) in &delta.vv {
            let seen = self.vv.entry(*replica).or_insert(0);
            *seen = (*seen).max(*seq);
        }
        applied
    }

    /// Content fingerprint: FNV-1a over the sorted canonical encoding of
    /// every holder fact and member. Two journals with equal fingerprints
    /// hold the same facts regardless of write or merge order — the
    /// convergence oracle for the proptests and the chaos soak.
    pub fn fingerprint(&self) -> u64 {
        let mut keys: Vec<u128> = self.holders.keys().copied().collect();
        keys.sort_unstable();
        let mut w = WireWriter::new();
        for k in keys {
            let e = &self.holders[&k];
            w.put_u128(k);
            e.fact.encode(&mut w);
        }
        let mut elems: Vec<u128> = self.members.elements().into_iter().copied().collect();
        elems.sort_unstable();
        for m in elems {
            w.put_u128(m);
        }
        fnv1a(&w.into_vec())
    }
}

impl std::ops::Index<&u128> for Journal {
    type Output = LwwRegister<HolderFact>;
    fn index(&self, key: &u128) -> &Self::Output {
        &self.holders[key].fact
    }
}

/// Canonical fingerprint of an OR-set of inboxes (sorted elements).
pub fn orset_fingerprint(set: &OrSet<u128>) -> u64 {
    let mut elems: Vec<u128> = set.elements().into_iter().copied().collect();
    elems.sort_unstable();
    let mut w = WireWriter::new();
    for e in elems {
        w.put_u128(e);
    }
    fnv1a(&w.into_vec())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_lookup() {
        let mut j = Journal::new(1);
        let (obj, holder) = (ObjId(0xAB), ObjId(0x10));
        assert_eq!(j.lookup(obj), None);
        j.record_holder(obj, holder, 100);
        assert_eq!(j.lookup(obj), Some(holder));
        j.retire_holder(obj, 200);
        assert_eq!(j.lookup(obj), None, "tombstone hides the holder");
        assert_eq!(j.fact(obj).unwrap().holder, ObjId(0));
    }

    #[test]
    fn same_tick_writes_stay_monotone() {
        let mut j = Journal::new(1);
        j.record_holder(ObjId(1), ObjId(0x10), 50);
        j.record_holder(ObjId(1), ObjId(0x20), 50);
        assert_eq!(j.lookup(ObjId(1)), Some(ObjId(0x20)), "second same-tick write wins");
    }

    #[test]
    fn digest_delta_sync_converges() {
        let mut a = Journal::new(1);
        let mut b = Journal::new(2);
        a.record_holder(ObjId(1), ObjId(0x10), 100);
        a.join_member(ObjId(0x10));
        b.record_holder(ObjId(2), ObjId(0x20), 150);
        b.join_member(ObjId(0x20));

        // A asks, B answers, A reciprocates.
        let delta_for_a = b.delta_since(&a.digest(), true);
        assert_eq!(a.apply(&delta_for_a), 1);
        let delta_for_b = a.delta_since(&b.digest(), false);
        assert_eq!(b.apply(&delta_for_b), 1);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.lookup(ObjId(2)), Some(ObjId(0x20)));
        assert_eq!(b.lookup(ObjId(1)), Some(ObjId(0x10)));
        assert!(a.is_member(ObjId(0x20)) && b.is_member(ObjId(0x10)));

        // In-sync peers exchange empty deltas and nothing changes.
        assert!(!a.is_ahead_of(&b.digest()));
        let empty = a.delta_since(&b.digest(), false);
        assert!(empty.entries.is_empty() && empty.members.is_none());
        assert_eq!(b.apply(&empty), 0);
    }

    #[test]
    fn superseded_writes_never_resurface() {
        let mut a = Journal::new(1);
        let mut b = Journal::new(2);
        let mut c = Journal::new(3);
        a.record_holder(ObjId(7), ObjId(0x10), 100);
        // B learns A's fact, then overwrites it with a newer one.
        b.apply(&a.delta_since(&b.digest(), false));
        b.record_holder(ObjId(7), ObjId(0x20), 200);
        // C syncs from B only: it must land on the final value and its
        // digest must not keep asking for A's dominated write.
        c.apply(&b.delta_since(&c.digest(), false));
        assert_eq!(c.lookup(ObjId(7)), Some(ObjId(0x20)));
        assert!(!a.is_ahead_of(&c.digest()), "dominated origin reads as covered");
        assert_eq!(c.fingerprint(), b.fingerprint());
    }

    #[test]
    fn wire_roundtrip() {
        let mut j = Journal::new(9);
        j.record_holder(ObjId(1), ObjId(0x10), 10);
        j.join_member(ObjId(0x10));
        let digest = j.digest();
        let bytes = rdv_wire::encode_to_vec(&digest);
        assert_eq!(rdv_wire::decode_from_slice::<Digest>(&bytes).unwrap(), digest);
        let delta = j.delta_since(&Digest::default(), true);
        let bytes = rdv_wire::encode_to_vec(&delta);
        assert_eq!(rdv_wire::decode_from_slice::<Delta>(&bytes).unwrap(), delta);
    }

    #[test]
    fn tombstones_expire_past_the_horizon_and_stay_covered() {
        let mut a = Journal::new(1);
        a.record_holder(ObjId(1), ObjId(0x10), 100);
        a.retire_holder(ObjId(1), 200);
        a.record_holder(ObjId(2), ObjId(0x20), 250); // live fact, never expires
        a.retire_holder(ObjId(3), 900); // young tombstone, inside horizon

        assert_eq!(a.expire_tombstones(1_000, 500), 1, "only the old tombstone goes");
        assert_eq!(a.len(), 2);
        assert_eq!(a.fact(ObjId(1)), None, "expired fact is gone entirely");
        assert_eq!(a.lookup(ObjId(2)), Some(ObjId(0x20)));
        assert!(a.fact(ObjId(3)).unwrap().holder.is_nil(), "young tombstone survives");

        // The expired origin stays covered: a fresh journal syncing from A
        // never sees obj 1, and A's digest still claims those sequences, so
        // nobody re-requests the dominated write.
        let mut b = Journal::new(2);
        b.apply(&a.delta_since(&b.digest(), false));
        assert_eq!(b.fact(ObjId(1)), None);
        assert!(!a.is_ahead_of(&b.digest()), "expiry leaves nothing left to ship");

        // Idempotent: nothing else crosses the cutoff.
        assert_eq!(a.expire_tombstones(1_000, 500), 0);
    }

    #[test]
    fn epoch_bumps_are_visible_in_facts() {
        let mut j = Journal::new(1);
        j.record_holder(ObjId(1), ObjId(0x10), 10);
        assert_eq!(j.fact(ObjId(1)).unwrap().epoch, 0);
        j.bump_epoch();
        j.record_holder(ObjId(1), ObjId(0x10), 20);
        assert_eq!(j.fact(ObjId(1)).unwrap().epoch, 1);
    }
}
