//! Scale test: E2E discovery across a 12-host leaf–spine fabric — well
//! beyond the paper's 3-host testbed — exercising flooding with dedup,
//! source-route learning, and unicast convergence on a multipath topology.

use rendezvous::discovery::host::{DiscoveryMode, HostConfig, HostNode, StalenessMode};
use rendezvous::netsim::topo::wire_leaf_spine;
use rendezvous::netsim::{LinkSpec, NodeId, Sim, SimConfig, SimTime};
use rendezvous::objspace::{ObjId, ObjectKind};
use rendezvous::p4rt::capacity::SramBudget;
use rendezvous::p4rt::header::{objnet_format, OBJNET_DST_OBJ};
use rendezvous::p4rt::pipeline::{Pipeline, SwitchConfig, SwitchNode};
use rendezvous::p4rt::table::{Action, MatchKind, Table};

fn e2e_switch(label: String) -> SwitchNode {
    let mut pl = Pipeline::new(objnet_format(), Action::Flood);
    pl.add_table(Table::new(
        "objroute",
        vec![OBJNET_DST_OBJ],
        MatchKind::Exact,
        128,
        SramBudget::tofino(),
    ));
    SwitchNode::new(
        label,
        pl,
        SwitchConfig { learn_src_routes: true, dedup_floods: true, ..Default::default() },
    )
}

#[test]
fn e2e_discovery_works_on_a_twelve_host_leaf_spine() {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(77);
    let host_cfg = HostConfig {
        mode: DiscoveryMode::E2E,
        staleness: StalenessMode::InvalidateOnMove,
        ..Default::default()
    };

    let mut sim = Sim::new(SimConfig::default());
    // 12 hosts: host 0 drives; 1..12 each hold 4 objects.
    let mut host_nodes: Vec<HostNode> = (0..12)
        .map(|i| HostNode::new(format!("h{i}"), ObjId(0xA0 + i as u128), host_cfg))
        .collect();
    let mut targets = Vec::new();
    for h in host_nodes.iter_mut().skip(1) {
        for _ in 0..4 {
            let id = h.store.create(&mut rng, ObjectKind::Data);
            h.store.get_mut(id).unwrap().alloc(64).unwrap();
            targets.push(id);
        }
    }
    // Driver accesses every object once (all discoveries), then everything
    // again (all cache hits).
    let mut plan = targets.clone();
    plan.extend(targets.iter().copied());
    host_nodes[0].plan = plan.clone();

    let host_ids: Vec<NodeId> = host_nodes.into_iter().map(|h| sim.add_node(Box::new(h))).collect();
    let spines: Vec<NodeId> =
        (0..2).map(|i| sim.add_node(Box::new(e2e_switch(format!("spine{i}"))))).collect();
    let leaves: Vec<NodeId> =
        (0..4).map(|i| sim.add_node(Box::new(e2e_switch(format!("leaf{i}"))))).collect();
    let host_groups: Vec<Vec<NodeId>> = host_ids.chunks(3).map(<[NodeId]>::to_vec).collect();
    wire_leaf_spine(&mut sim, &spines, &leaves, &host_groups, LinkSpec::rack(), LinkSpec::rack());

    let mut t = SimTime::from_millis(1);
    for i in 0..plan.len() as u64 {
        sim.schedule(t, host_ids[0], i);
        t += SimTime::from_micros(150);
    }
    sim.run_until_idle();

    let driver = sim.node_as::<HostNode>(host_ids[0]).unwrap();
    assert_eq!(driver.records.len(), plan.len(), "every access must complete");
    let (first, second) = driver.records.split_at(targets.len());
    let first_bcasts: u64 = first.iter().map(|r| r.broadcasts).sum();
    let second_bcasts: u64 = second.iter().map(|r| r.broadcasts).sum();
    assert_eq!(first_bcasts, targets.len() as u64, "one discovery per new object");
    assert_eq!(second_bcasts, 0, "warm accesses are pure unicast");
    // Warm accesses must be strictly faster on average.
    let mean = |rs: &[rendezvous::discovery::AccessRecord]| {
        rs.iter().map(|r| r.latency().as_nanos()).sum::<u64>() / rs.len() as u64
    };
    assert!(mean(second) < mean(first), "{} vs {}", mean(second), mean(first));
}
