//! Cross-crate movement integrity: pointer-rich structures, in-object
//! sparse models, code objects, and CRDT state must all survive arbitrary
//! chains of byte-copy moves bit-exactly.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rendezvous::core::code::{make_code_object, read_code_desc, CodeDesc};
use rendezvous::core::modelobj::{infer_in_place, model_to_object};
use rendezvous::crdt::{GCounter, ProgressiveObject};
use rendezvous::objspace::{structures, ObjId, Object, ObjectStore};
use rendezvous::wire::sparsemodel::{SparseModel, SparseModelSpec};

/// Move an object through `hops` stores, byte-copy each time.
fn bounce(obj: Object, hops: usize) -> Object {
    let mut cur = obj;
    for _ in 0..hops {
        cur = Object::from_image(&cur.to_image()).expect("image roundtrip");
    }
    cur
}

#[test]
fn tree_survives_scattering_across_stores() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut origin = ObjectStore::new();
    let values: Vec<u64> = (0..63).map(|i| i * 3).collect();
    let (root, ids) = structures::build_tree(&mut origin, &mut rng, &values).unwrap();

    // Scatter: every node object bounces through a different number of
    // hosts, then all land in one destination store.
    let mut dest = ObjectStore::new();
    for (i, id) in ids.iter().enumerate() {
        let obj = origin.remove(*id).unwrap();
        dest.insert(bounce(obj, i % 5 + 1)).unwrap();
    }
    for v in &values {
        assert!(structures::tree_search(&dest, root, *v, |_| {}).unwrap(), "lost {v}");
    }
    assert!(!structures::tree_search(&dest, root, 1, |_| {}).unwrap());
}

#[test]
fn model_inference_is_bit_identical_after_moves() {
    let spec =
        SparseModelSpec { layers: 3, rows: 96, cols: 96, nnz_per_row: 6, vocab: 32, seed: 2 };
    let model = SparseModel::generate(&spec);
    let obj = model_to_object(ObjId(0x77), &model).unwrap();
    let activation: Vec<f32> = (0..96).map(|i| (i as f32).sin()).collect();
    let (before, flops_before) = infer_in_place(&obj, &activation).unwrap();
    let moved = bounce(obj, 7);
    let (after, flops_after) = infer_in_place(&moved, &activation).unwrap();
    assert_eq!(before, after, "f32 outputs must be bit-identical");
    assert_eq!(flops_before, flops_after);
}

#[test]
fn code_objects_carry_their_descriptors_anywhere() {
    let desc = CodeDesc { fn_id: 0xFEED, base_ns: 12_345, ps_per_byte: 678 };
    let obj = make_code_object(ObjId(0xC0DE), desc);
    let moved = bounce(obj, 10);
    assert_eq!(read_code_desc(&moved).unwrap(), desc);
}

#[test]
fn crdt_replicas_merge_after_independent_journeys() {
    let id = ObjId(0x5EED);
    let mut a = ProgressiveObject::create(id, &GCounter::new()).unwrap();
    // Replica B forks from A's image and travels.
    let mut b = ProgressiveObject::<GCounter>::from_object(bounce(
        Object::from_image(&a.object().to_image()).unwrap(),
        3,
    ));
    a.update(|c| c.add(1, 100)).unwrap();
    b.update(|c| c.add(2, 200)).unwrap();
    // B travels some more before coming home.
    let b_obj = bounce(b.into_object(), 4);
    let merged = a.absorb(&b_obj.to_image()).unwrap();
    assert_eq!(merged.value(), 300);
}

#[test]
fn fot_indices_stay_stable_across_moves() {
    // Interning order defines pointer encodings; movement must not
    // renumber them (that would silently retarget pointers).
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ObjectStore::new();
    let hub = store.create(&mut rng, rendezvous::objspace::ObjectKind::Data);
    let targets: Vec<ObjId> =
        (0..20).map(|_| store.create(&mut rng, rendezvous::objspace::ObjectKind::Data)).collect();
    let mut cells = Vec::new();
    for t in &targets {
        let obj = store.get_mut(hub).unwrap();
        let cell = obj.alloc(8).unwrap();
        let ptr = obj.make_ptr(*t, 8, rendezvous::objspace::FotFlags::RO).unwrap();
        obj.write_ptr(cell, ptr).unwrap();
        cells.push(cell);
    }
    let moved = bounce(store.remove(hub).unwrap(), 6);
    for (cell, expect) in cells.iter().zip(&targets) {
        let ptr = moved.read_ptr(*cell).unwrap();
        let (resolved, off) = moved.resolve_ptr(ptr).unwrap();
        assert_eq!(resolved, *expect);
        assert_eq!(off, 8);
    }
}
