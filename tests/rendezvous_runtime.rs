//! Integration tests of the rendezvous runtime: invoke-by-reference across
//! the fabric, placement adaptivity, prefetch-driven traversal, and the
//! serialization comparison — the paper's contribution exercised through
//! the public umbrella API.

use rendezvous::core::runtime::PrefetchPolicy;
use rendezvous::core::scenarios::{
    run_a1, run_fig1, run_s1, A1Config, F1Config, F1Strategy, S1Path,
};
use rendezvous::wire::sparsemodel::SparseModelSpec;

fn model(rows: usize) -> SparseModelSpec {
    SparseModelSpec { layers: 2, rows, cols: rows, nnz_per_row: 16, vocab: 32, seed: 13 }
}

#[test]
fn figure1_hierarchy_holds_across_model_sizes() {
    for rows in [256usize, 1024] {
        let copy =
            run_fig1(&F1Config { strategy: F1Strategy::ManualCopy, model: model(rows), seed: 1 });
        let pull =
            run_fig1(&F1Config { strategy: F1Strategy::ManualPull, model: model(rows), seed: 1 });
        let auto =
            run_fig1(&F1Config { strategy: F1Strategy::Automatic, model: model(rows), seed: 1 });
        assert!(copy.latency > pull.latency, "rows={rows}");
        assert!(copy.alice_bytes > pull.alice_bytes * 5, "rows={rows}");
        // Automatic must find the same rendezvous as the hand-written pull.
        assert_eq!(auto.executor, "carol", "rows={rows}");
        assert_eq!(auto.fabric_bytes, pull.fabric_bytes, "identical data paths, rows={rows}");
    }
}

#[test]
fn manual_copy_grows_linearly_with_model_size_on_the_edge_link() {
    let small =
        run_fig1(&F1Config { strategy: F1Strategy::ManualCopy, model: model(256), seed: 1 });
    let big = run_fig1(&F1Config { strategy: F1Strategy::ManualCopy, model: model(1024), seed: 1 });
    let byte_ratio = big.alice_bytes as f64 / small.alice_bytes as f64;
    // Model bytes scale ~4x (rows and nnz rows both 4×): expect ~4x.
    assert!((3.0..5.5).contains(&byte_ratio), "{byte_ratio}");
}

#[test]
fn s1_gas_latency_is_flat_while_rpc_grows_with_model() {
    let spec_small =
        SparseModelSpec { layers: 4, rows: 128, cols: 128, nnz_per_row: 8, vocab: 128, seed: 3 };
    let spec_big =
        SparseModelSpec { layers: 4, rows: 1024, cols: 1024, nnz_per_row: 8, vocab: 1024, seed: 3 };
    let rpc_small = run_s1(S1Path::RpcName, &spec_small, 1);
    let rpc_big = run_s1(S1Path::RpcName, &spec_big, 1);
    let gas_small = run_s1(S1Path::Gas, &spec_small, 1);
    let gas_big = run_s1(S1Path::Gas, &spec_big, 1);
    let rpc_growth = rpc_big.latency.as_nanos() as f64 / rpc_small.latency.as_nanos() as f64;
    let gas_growth = gas_big.latency.as_nanos() as f64 / gas_small.latency.as_nanos() as f64;
    assert!(
        rpc_growth > gas_growth * 1.5,
        "request-time loading makes RPC scale worse: rpc {rpc_growth:.2}x vs gas {gas_growth:.2}x"
    );
    // The 70% claim at the big end.
    assert!(rpc_big.deser_load_fraction > 0.7, "{}", rpc_big.deser_load_fraction);
}

#[test]
fn prefetch_policies_agree_on_traversal_results() {
    let base = A1Config { nodes: 32, decoys: 96, ..Default::default() };
    let none = run_a1(&base);
    let adj = run_a1(&A1Config { policy: PrefetchPolicy::Adjacency { window: 3 }, ..base });
    let reach = run_a1(&A1Config { policy: PrefetchPolicy::Reachability, ..base });
    assert_eq!(none.values, adj.values);
    assert_eq!(none.values, reach.values);
    assert_eq!(none.values, (0..32).collect::<Vec<u64>>());
    // And the performance hierarchy from the paper's argument.
    assert!(reach.latency < none.latency);
    assert!(reach.demand_fetches < none.demand_fetches);
}

#[test]
fn everything_is_deterministic_per_seed() {
    let cfg = F1Config { strategy: F1Strategy::Automatic, model: model(256), seed: 9 };
    let (a, b) = (run_fig1(&cfg), run_fig1(&cfg));
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.alice_bytes, b.alice_bytes);

    let a1 = A1Config {
        nodes: 24,
        decoys: 48,
        policy: PrefetchPolicy::Reachability,
        ..Default::default()
    };
    let (x, y) = (run_a1(&a1), run_a1(&a1));
    assert_eq!(x.latency, y.latency);
    assert_eq!(x.values, y.values);
}
