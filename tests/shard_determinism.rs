//! Shard-count determinism regression: the sharded engine must be an
//! *invisible* optimisation. Every committed artifact — figure series
//! JSON, causal-trace exports, telemetry JSON, chaos fingerprints — must
//! come out byte-identical for `--shards 1`, `2`, and `8`.
//!
//! One `#[test]` in its own binary, deliberately: the experiments under
//! test build their simulations internally and pick up the engine's
//! process-wide default shard count, so the sweep flips that default with
//! [`rdv_netsim::set_default_shards`] — safe only while no other test in
//! the process is constructing simulations.

use rdv_bench::experiments;
use rdv_core::scenarios::{run_lossy_invoke, LossyConfig};
use rdv_netsim::{set_default_shard_audit, set_default_shards};

/// Everything a full artifact regeneration produces, as one big byte
/// bundle: F3 and F4 figure series, their telemetry-plane exports, the F3
/// causal-trace export, and two chaos scenarios (lossy invoke-by-reference
/// with watchdog retries) fingerprinted via their `Debug` outcomes.
fn regenerate_artifacts() -> Vec<(&'static str, String)> {
    let mut out = Vec::new();
    out.push(("f3.json", experiments::fig3::run(true).to_json()));
    out.push(("f4.json", experiments::f4::run(true).to_json()));
    for exp in ["F3", "F4"] {
        let report = experiments::metrics::run(exp, true).expect("metricable");
        out.push(("metrics.json", report.json));
        out.push(("metrics.summary", report.summary));
    }
    let trace = experiments::trace::run("F3", true).expect("traceable");
    out.push(("trace_f3.json", trace.json));
    let chaos_a =
        run_lossy_invoke(&LossyConfig { loss_permille: 150, seed: 97, ..Default::default() });
    out.push(("chaos_lossy_a", format!("{chaos_a:?}")));
    let chaos_b = run_lossy_invoke(&LossyConfig {
        loss_permille: 250,
        invokes: 6,
        seed: 1234,
        ..Default::default()
    });
    out.push(("chaos_lossy_b", format!("{chaos_b:?}")));
    out
}

#[test]
fn every_artifact_is_byte_identical_across_shard_counts() {
    // Ride the whole sweep with the shard-ownership race detector armed:
    // it reads state only, so artifacts must still come out identical —
    // and any ownership bug the sweep would otherwise surface as an
    // opaque byte diff aborts with a located diagnostic instead.
    set_default_shard_audit(true);
    set_default_shards(1);
    let flat = regenerate_artifacts();
    for shards in [2usize, 8] {
        set_default_shards(shards);
        let sharded = regenerate_artifacts();
        set_default_shards(1);
        assert_eq!(sharded.len(), flat.len());
        for ((name, a), (_, b)) in sharded.iter().zip(&flat) {
            assert_eq!(a, b, "artifact {name} diverged at --shards {shards}");
        }
    }
    set_default_shard_audit(false);
}
