//! Chaos soak: seeded random scenarios (topology × workload × fault plan)
//! run to quiescence, checking the fabric's end-to-end invariants.
//!
//! The invariants (see DESIGN.md, "Fault model"):
//!
//! 1. **No committed write lost** — a message the reliable transport acked
//!    is present at the receiver, across crashes and outages.
//! 2. **No stale-after-invalidate reads** — a copy the coherence directory
//!    still registers always holds the current value; invalidated copies
//!    are gone.
//! 3. **Completion or typed error** — every issued rendezvous/access ends
//!    in a completion record or a typed failure; nothing wedges in flight.
//! 4. **Determinism** — identical seeds produce byte-identical stats.
//!
//! Every scenario is derived from a single `u64` seed, so any failure
//! reproduces exactly by re-running the named seed.

use rdv_det::DetMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdv_core::scenarios::{build_star_fabric_sharded, host_link_rack};
use rdv_discovery::{AccessFailure, DiscoveryMode, HostConfig, HostNode};
use rdv_load::{
    Blip, ChurnSpec, LoadCurve, LoadFabricSpec, LoadRun, OpenLoopSpec, ReplogSpec, Spike,
};
use rdv_memproto::coherence::{DirAction, Directory};
use rdv_memproto::msg::Msg;
use rdv_memproto::transport::{ReliableEndpoint, TransportConfig};
use rdv_netsim::metrics::{AuditScope, MetricSample, MetricsConfig};
use rdv_netsim::{
    FaultPlan, LinkSpec, Node, NodeCtx, NodeId, Packet, PortId, Sim, SimConfig, SimTime,
};
use rdv_objspace::{ObjId, ObjectKind};

// ---------------------------------------------------------------------------
// Shared: stats fingerprinting (invariant 4)
// ---------------------------------------------------------------------------

/// Render engine counters to a canonical string: `Counters::iter` is
/// name-sorted, so equal fabrics render byte-identically.
fn render_counters(c: &rdv_netsim::Counters) -> String {
    let mut out = String::new();
    for (name, value) in c.iter() {
        out.push_str(&format!("{name}={value};"));
    }
    out
}

// ---------------------------------------------------------------------------
// Family 1: reliable transport over a faulty wire
// ---------------------------------------------------------------------------

/// Minimal host pushing `messages` reliably to a peer over port 0.
struct PipeNode {
    ep: ReliableEndpoint,
    peer: ObjId,
    to_send: u64,
    delivered: Vec<Vec<u8>>,
    trace: u64,
}

impl PipeNode {
    fn new(local: ObjId, peer: ObjId, to_send: u64, cfg: TransportConfig) -> PipeNode {
        PipeNode {
            ep: ReliableEndpoint::new(local, cfg),
            peer,
            to_send,
            delivered: Vec::new(),
            trace: 0,
        }
    }

    fn push(&mut self, ctx: &mut NodeCtx<'_>, msg: Msg) {
        self.trace += 1;
        ctx.send(PortId(0), Packet::new(msg.encode(), self.trace));
    }

    fn pump(&mut self, ctx: &mut NodeCtx<'_>) {
        for msg in self.ep.poll_retransmits(ctx.now) {
            self.push(ctx, msg);
        }
        if self.ep.in_flight() > 0 {
            ctx.set_timer(SimTime::from_micros(100), 1);
        }
    }
}

impl Node for PipeNode {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        for i in 0..self.to_send {
            let msg = self.ep.send(ctx.now, self.peer, i.to_le_bytes().to_vec());
            self.push(ctx, msg);
        }
        if self.ep.in_flight() > 0 {
            ctx.set_timer(SimTime::from_micros(100), 1);
        }
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _port: PortId, packet: Packet) {
        let Ok(msg) = Msg::decode(&packet.payload) else { return };
        let (delivered, ack) = self.ep.on_receive(&msg);
        self.delivered.extend(delivered);
        if let Some(ack) = ack {
            self.push(ctx, ack);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _tag: u64) {
        self.pump(ctx);
    }

    fn on_restart(&mut self, ctx: &mut NodeCtx<'_>) {
        self.pump(ctx);
    }

    fn sample_metrics(&self, m: &mut MetricSample<'_>) {
        m.gauge("transport.inflight", self.ep.in_flight() as u64);
        m.gauge("transport.flows", self.ep.flow_count() as u64);
    }

    fn audit(&self, a: &mut AuditScope<'_>) {
        let local = self.ep.local().as_u128();
        a.declare_inbox(local);
        for peer in self.ep.peers() {
            a.claim_acked(local, peer.as_u128(), self.ep.acked_hi(peer));
            a.claim_delivered(peer.as_u128(), local, self.ep.delivered_hi(peer));
        }
    }
}

struct TransportScenario {
    loss_permille: u16,
    messages: u64,
    plan: FaultPlan,
    receiver_stays_dead: bool,
}

/// Derive one transport scenario from a seed: random loss rate, message
/// count, and a fault plan that may include a link-down window and a
/// receiver crash (with or without restart).
fn gen_transport_scenario(seed: u64) -> TransportScenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7a05);
    let loss_permille = rng.gen_range(0..250) as u16;
    let messages = rng.gen_range(20..50);
    let mut plan = FaultPlan::new();
    if rng.gen_bool(0.5) {
        let at = rng.gen_range(1..100);
        let dur = rng.gen_range(100..1500);
        plan = plan.link_down(SimTime::from_micros(at), NodeId(0), NodeId(1)).link_up(
            SimTime::from_micros(at + dur),
            NodeId(0),
            NodeId(1),
        );
    }
    let mut receiver_stays_dead = false;
    if rng.gen_bool(0.6) {
        let at = rng.gen_range(1..200);
        plan = plan.crash(SimTime::from_micros(at), NodeId(1));
        if rng.gen_bool(0.66) {
            let back = at + rng.gen_range(100..2000);
            plan = plan.restart(SimTime::from_micros(back), NodeId(1));
        } else {
            receiver_stays_dead = true;
        }
    }
    TransportScenario { loss_permille, messages, plan, receiver_stays_dead }
}

/// Run a transport scenario to quiescence and check invariants 1 and 3.
/// Returns the stats fingerprint for invariant 4. `shards` picks the
/// engine's parallel shard count; every value must produce the same bytes.
fn run_transport_scenario(seed: u64, sc: &TransportScenario, shards: usize) -> String {
    let cfg = TransportConfig { rto: SimTime::from_micros(200), max_retries: 12, backoff_cap: 3 };
    let mut sim = Sim::new(SimConfig { seed, shards, ..Default::default() });
    let a = sim.add_node(Box::new(PipeNode::new(ObjId(0xA), ObjId(0xB), sc.messages, cfg)));
    let b = sim.add_node(Box::new(PipeNode::new(ObjId(0xB), ObjId(0xA), 0, cfg)));
    sim.connect(a, b, LinkSpec::rack().with_loss(sc.loss_permille));
    // The live invariant monitor audits every tick and panics on any
    // violation, so the soak doubles as its acceptance run — and the
    // shard-ownership race detector and the
    // flight recorder ride along on every scenario — any abort carries a
    // postmortem, and clean runs stay byte-identical either way
    // (tests/flight_recorder.rs).
    sim.enable_metrics(MetricsConfig::default());
    sim.enable_shard_audit();
    sim.enable_flight_recorder(1 << 12);
    sim.install_fault_plan(&sc.plan);
    sim.run_until_idle();

    let receiver = sim.node_as::<PipeNode>(b).unwrap();
    let delivered: Vec<u64> = receiver
        .delivered
        .iter()
        .map(|d| u64::from_le_bytes(d.as_slice().try_into().expect("8-byte payload")))
        .collect();
    let sender = sim.node_as::<PipeNode>(a).unwrap();

    // Invariant 3: nothing wedges — every segment is acked or typed-failed.
    assert_eq!(sender.ep.in_flight(), 0, "seed {seed}: segments left in limbo");

    // In-order exactly-once delivery means the receiver saw exactly the
    // prefix 0..len of the message stream, each message once.
    let prefix: Vec<u64> = (0..delivered.len() as u64).collect();
    assert_eq!(delivered, prefix, "seed {seed}: delivery must be the exact in-order prefix");

    // Invariant 1: a committed (acked, i.e. not typed-failed) write is
    // never lost. Message i is transport seq i+1.
    for i in 0..sc.messages {
        let failed = sender.ep.failed.iter().any(|&(peer, seq)| peer == ObjId(0xB) && seq == i + 1);
        if !failed {
            assert!(
                (i as usize) < delivered.len(),
                "seed {seed}: message {i} was acked but never delivered"
            );
        }
    }
    if !sc.receiver_stays_dead {
        assert!(
            sender.ep.failed.is_empty(),
            "seed {seed}: every outage heals, so nothing may fail (failed: {:?})",
            sender.ep.failed
        );
        assert_eq!(delivered.len() as u64, sc.messages, "seed {seed}");
    }

    format!(
        "{}|delivered={}|failed={:?}|retx={}",
        render_counters(&sim.counters),
        delivered.len(),
        sender.ep.failed,
        sender.ep.retransmits,
    )
}

#[test]
fn transport_soak_under_loss_crash_and_outage() {
    let mut fingerprints = Vec::new();
    for seed in 0..12u64 {
        let sc = gen_transport_scenario(seed);
        let fp = run_transport_scenario(seed, &sc, 1);
        // Invariant 4: same seed, byte-identical stats — at every engine
        // shard count (shards > 1 takes the parallel windowed path).
        for shards in [1, 2, 8] {
            let again = run_transport_scenario(seed, &sc, shards);
            assert_eq!(fp, again, "seed {seed}: shards={shards} diverged");
        }
        fingerprints.push(fp);
    }
    fingerprints.dedup();
    assert!(fingerprints.len() > 1, "distinct seeds must explore distinct behaviour");
}

// ---------------------------------------------------------------------------
// Family 2: rendezvous fabric under combined loss + partition + crash
// ---------------------------------------------------------------------------

struct FabricScenario {
    holders: usize,
    accesses: usize,
    link_loss: u16,
    burst: (u64, u64, u16),
    partition_window: (u64, u64),
    partition_victim: usize,
    crash_at: u64,
    restart_at: Option<u64>,
    crash_victim: usize,
}

/// Derive one fabric scenario: every scenario combines all three fault
/// categories — a loss burst on the driver's uplink, a partition cutting
/// one holder off the switch, and a holder crash (sometimes permanent).
fn gen_fabric_scenario(seed: u64) -> FabricScenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFAB);
    let holders = rng.gen_range(2..4);
    let crash_victim = rng.gen_range(0..holders);
    // Partition a holder the crash does not target, so the two faults
    // compose rather than shadow each other.
    let partition_victim = (crash_victim + 1) % holders;
    FabricScenario {
        holders,
        accesses: rng.gen_range(12..20),
        link_loss: rng.gen_range(0..50) as u16,
        burst: (rng.gen_range(1..400), rng.gen_range(50..150), rng.gen_range(300..700) as u16),
        partition_window: (rng.gen_range(1..500), rng.gen_range(50..300)),
        partition_victim,
        crash_at: rng.gen_range(1..500),
        restart_at: if rng.gen_bool(0.75) { Some(rng.gen_range(100..500)) } else { None },
        crash_victim,
    }
}

struct FabricOutcome {
    failed: Vec<(ObjId, AccessFailure)>,
    fingerprint: String,
}

fn run_fabric_scenario(seed: u64, sc: &FabricScenario, shards: usize) -> FabricOutcome {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0B7);
    let host_cfg = HostConfig {
        mode: DiscoveryMode::Controller,
        access_timeout: SimTime::from_micros(200),
        max_access_retries: 6,
        ..HostConfig::default()
    };

    // Topology: driver + `holders` responders behind one object-routed
    // switch. Each holder owns two objects.
    let mut nodes: Vec<(Box<dyn Node>, ObjId, LinkSpec)> = Vec::new();
    let link = host_link_rack().with_loss(sc.link_loss);
    let driver_inbox = ObjId(0xD0);
    let mut obj_routes = Vec::new();
    let mut objects_of: Vec<Vec<ObjId>> = Vec::new();
    let mut driver = HostNode::new("driver", driver_inbox, host_cfg);
    for h in 0..sc.holders {
        let inbox = ObjId(0xB0 + h as u128);
        let mut holder = HostNode::new(format!("h{h}"), inbox, host_cfg);
        let mut owned = Vec::new();
        for _ in 0..2 {
            let obj = holder.store.create(&mut rng, ObjectKind::Data);
            let off = holder.store.get_mut(obj).unwrap().alloc(128).unwrap();
            holder.store.get_mut(obj).unwrap().write_u64(off, obj.as_u128() as u64).unwrap();
            // Star-fabric port numbering: driver is host 0, holder h is 1+h.
            obj_routes.push((obj, 1 + h));
            owned.push(obj);
        }
        objects_of.push(owned);
        nodes.push((Box::new(holder), inbox, link));
    }
    // The driver's access plan mixes all holders' objects.
    for _ in 0..sc.accesses {
        let h = rng.gen_range(0..sc.holders);
        let i = rng.gen_range(0..2);
        driver.plan.push(objects_of[h][i]);
    }
    let plan_len = driver.plan.len();
    nodes.insert(0, (Box::new(driver), driver_inbox, link));

    let (mut sim, ids) = build_star_fabric_sharded(seed, shards, nodes, &obj_routes);
    let switch = NodeId(ids.len());
    sim.enable_metrics(MetricsConfig::default());
    sim.enable_shard_audit();
    sim.enable_flight_recorder(1 << 12);

    // Faults: loss burst on the driver's uplink, partition around one
    // holder, crash (± restart) of another.
    let (burst_at, burst_dur, burst_loss) = sc.burst;
    let (part_at, part_dur) = sc.partition_window;
    let crash_node = ids[1 + sc.crash_victim];
    let mut fault_plan = FaultPlan::new()
        .loss_burst(
            SimTime::from_micros(burst_at),
            SimTime::from_micros(burst_at + burst_dur),
            ids[0],
            switch,
            burst_loss,
        )
        .partition(
            SimTime::from_micros(part_at),
            SimTime::from_micros(part_at + part_dur),
            &[switch],
            &[ids[1 + sc.partition_victim]],
        )
        .crash(SimTime::from_micros(sc.crash_at), crash_node);
    if let Some(back) = sc.restart_at {
        fault_plan = fault_plan.restart(SimTime::from_micros(sc.crash_at + back), crash_node);
    }
    sim.install_fault_plan(&fault_plan);

    for i in 0..plan_len as u64 {
        sim.schedule(SimTime::from_micros(10 + 50 * i), ids[0], i);
    }
    sim.run_until_idle();

    let drv = sim.node_as::<HostNode>(ids[0]).unwrap();
    // Invariant 3: every access either completed or failed with a type.
    assert_eq!(drv.outstanding(), 0, "seed {seed}: accesses wedged in flight");
    assert_eq!(
        drv.records.len() + drv.failed.len(),
        plan_len,
        "seed {seed}: every access must be accounted for"
    );
    for rec in &drv.records {
        assert!(rec.latency() > SimTime::ZERO, "seed {seed}");
    }
    // Healed faults must not cost completions: with the crash victim
    // restarted, the retry budget covers every outage window, so all
    // accesses complete. With a permanent crash, only accesses to the dead
    // holder's objects may fail — and then only as TimedOut.
    if sc.restart_at.is_some() {
        assert_eq!(
            drv.records.len(),
            plan_len,
            "seed {seed}: healed faults may not lose accesses ({:?})",
            drv.failed
        );
    } else {
        for f in &drv.failed {
            assert_eq!(f.reason, AccessFailure::TimedOut, "seed {seed}");
            assert!(
                objects_of[sc.crash_victim].contains(&f.target),
                "seed {seed}: only the dead holder's objects may fail"
            );
        }
    }

    let mut fingerprint = render_counters(&sim.counters);
    fingerprint.push('#');
    fingerprint.push_str(&render_counters(&drv.counters));
    for r in &drv.records {
        fingerprint.push_str(&format!(
            "r:{:x}:{}:{}:{}:{};",
            r.target.as_u128(),
            r.issued.as_nanos(),
            r.completed.as_nanos(),
            r.broadcasts,
            r.nacks
        ));
    }
    for f in &drv.failed {
        fingerprint.push_str(&format!("f:{:x}:{}:{:?};", f.target.as_u128(), f.retries, f.reason));
    }
    FabricOutcome { failed: drv.failed.iter().map(|f| (f.target, f.reason)).collect(), fingerprint }
}

#[test]
fn fabric_soak_combines_loss_partition_and_crash() {
    let mut fingerprints = Vec::new();
    let mut total_failed = 0usize;
    for seed in 0..25u64 {
        let sc = gen_fabric_scenario(seed);
        let out = run_fabric_scenario(seed, &sc, 1);
        if sc.restart_at.is_none() {
            total_failed += out.failed.len();
        }

        // Invariant 4: byte-identical stats on an identical re-run — at
        // every engine shard count (the star fabric spreads its hosts and
        // switch across shards, so shards > 1 exercises cross-shard merge).
        for shards in [1, 2, 8] {
            let again = run_fabric_scenario(seed, &sc, shards);
            assert_eq!(out.fingerprint, again.fingerprint, "seed {seed}: shards={shards} diverged");
        }
        fingerprints.push(out.fingerprint);
    }
    fingerprints.dedup();
    assert!(fingerprints.len() > 1, "distinct seeds must explore distinct behaviour");
    assert!(total_failed > 0, "some permanent-crash scenario must exercise typed failure");
}

// ---------------------------------------------------------------------------
// Family 3: coherence directory under random traffic and crashes
// ---------------------------------------------------------------------------

/// Replay directory actions against a model of per-host cached copies.
/// A copy exists iff the directory granted it and has not invalidated it
/// since; its value is the home value at grant time.
fn apply_actions(
    copies: &mut DetMap<(u128, u128), u64>,
    home_val: &DetMap<u128, u64>,
    obj: ObjId,
    actions: &[DirAction],
) {
    for a in actions {
        match a {
            DirAction::Invalidate { to, obj } => {
                copies.remove(&(to.as_u128(), obj.as_u128()));
            }
            DirAction::GrantShared { to } | DirAction::GrantExclusive { to } => {
                copies.insert((to.as_u128(), obj.as_u128()), home_val[&obj.as_u128()]);
            }
        }
    }
}

#[test]
fn directory_soak_never_leaves_a_stale_copy_registered() {
    let hosts: Vec<ObjId> = (0..4).map(|i| ObjId(0x100 + i)).collect();
    let objs: Vec<ObjId> = (0..3).map(|i| ObjId(0x200 + i)).collect();
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1);
        let mut d = Directory::new();
        let mut copies: DetMap<(u128, u128), u64> = DetMap::new();
        let mut home_val: DetMap<u128, u64> = objs.iter().map(|o| (o.as_u128(), 0u64)).collect();
        for step in 0..300 {
            let obj = objs[rng.gen_range(0..objs.len())];
            let host = hosts[rng.gen_range(0..hosts.len())];
            match rng.gen_range(0..10) {
                0..=3 => {
                    let actions = d.request_shared(obj, host);
                    apply_actions(&mut copies, &home_val, obj, &actions);
                }
                4..=5 => {
                    let actions = d.request_exclusive(obj, host);
                    apply_actions(&mut copies, &home_val, obj, &actions);
                }
                6..=7 => {
                    // A write at the home invalidates every cached copy,
                    // then bumps the authoritative value.
                    let actions = d.write_at_home(obj);
                    apply_actions(&mut copies, &home_val, obj, &actions);
                    *home_val.get_mut(&obj.as_u128()).unwrap() += 1;
                }
                8 => {
                    d.evict(obj, host);
                    copies.remove(&(host.as_u128(), obj.as_u128()));
                }
                _ => {
                    // Crash: the host's copies die with it; the directory
                    // must forget it everywhere, or later writes would
                    // wait forever on invalidating a dead host.
                    let affected = d.drop_host(host);
                    copies.retain(|&(h, _), _| h != host.as_u128());
                    for obj in affected {
                        assert!(
                            !d.sharers(obj).contains(&host) && d.exclusive(obj) != Some(host),
                            "seed {seed} step {step}: dead host still registered"
                        );
                    }
                }
            }
            assert!(d.invariant_holds(), "seed {seed} step {step}");
            // Invariant 2, both directions: every copy the directory
            // registers exists and holds the *current* home value (no
            // stale-after-invalidate survivor); every modelled copy is
            // still registered (no silently forgotten grant).
            for &obj in &objs {
                let mut registered: Vec<ObjId> = d.sharers(obj);
                registered.extend(d.exclusive(obj));
                for h in &registered {
                    let val = copies.get(&(h.as_u128(), obj.as_u128())).unwrap_or_else(|| {
                        panic!("seed {seed} step {step}: registered copy missing")
                    });
                    assert_eq!(
                        *val,
                        home_val[&obj.as_u128()],
                        "seed {seed} step {step}: stale copy served"
                    );
                }
                for &(h, _) in copies.keys().filter(|&&(_, o)| o == obj.as_u128()) {
                    assert!(
                        registered.iter().any(|r| r.as_u128() == h),
                        "seed {seed} step {step}: live copy unregistered"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Family 4: load plane under flash crowds, churn, and fault windows
// ---------------------------------------------------------------------------

/// One randomized load-plane scenario: an open-loop replicated-log
/// workload driven through the star fabric while a fault blip lands
/// mid-run (invariants 3 and 4, at traffic-plane scale).
struct LoadScenario {
    fabric: LoadFabricSpec,
    open: OpenLoopSpec,
    replog: ReplogSpec,
    blip: Blip,
}

/// Flash-crowd variant: a steep spike in the load curve with a holder
/// crash-restart window opening inside the crowd.
fn gen_flash_crowd_scenario(seed: u64) -> LoadScenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF1A5);
    let mut fabric = LoadFabricSpec::small();
    fabric.holders = rng.gen_range(2..5);
    fabric.link_loss_permille = rng.gen_range(0..20);
    let replog = ReplogSpec {
        writers: rng.gen_range(2..5),
        heads: rng.gen_range(4..13),
        entry_bytes: 64,
        batch_window: SimTime::from_micros(rng.gen_range(10..40)),
    };
    let mut open = OpenLoopSpec::flat(
        rng.gen_range(2_000..20_000),
        replog.heads,
        rng.gen_range(150_000..500_000),
        SimTime::from_micros(rng.gen_range(600..1_200)),
    );
    open.zipf_skew_permille = rng.gen_range(600..1_400);
    // The crowd: load doubles-to-quadruples for ~a fifth of the run.
    open.curve = LoadCurve::flat().with_spike(Spike {
        at_permille: rng.gen_range(200..500),
        dur_permille: rng.gen_range(150..300),
        add_permille: rng.gen_range(1_000..3_000),
    });
    // The blip lands inside (or shouldering) the crowd window.
    let blip = Blip {
        at: SimTime::from_micros(rng.gen_range(150..400)),
        dur: SimTime::from_micros(rng.gen_range(100..250)),
        partition_holder: None,
        crash_holder: Some(rng.gen_range(0..fabric.holders)),
    };
    LoadScenario { fabric, open, replog, blip }
}

/// Churn variant: clients join and leave throughout while one holder is
/// partitioned off the switch for a window mid-run.
fn gen_churn_partition_scenario(seed: u64) -> LoadScenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A2);
    let mut fabric = LoadFabricSpec::small();
    fabric.holders = rng.gen_range(2..5);
    fabric.link_loss_permille = rng.gen_range(0..20);
    let replog = ReplogSpec {
        writers: rng.gen_range(2..5),
        heads: rng.gen_range(4..13),
        entry_bytes: 64,
        batch_window: SimTime::from_micros(rng.gen_range(10..40)),
    };
    let mut open = OpenLoopSpec::flat(
        rng.gen_range(2_000..20_000),
        replog.heads,
        rng.gen_range(150_000..500_000),
        SimTime::from_micros(rng.gen_range(600..1_200)),
    );
    open.zipf_skew_permille = rng.gen_range(600..1_400);
    open.churn = Some(ChurnSpec {
        initial_active: rng.gen_range(500..5_000),
        join_per_s: rng.gen_range(1_000_000..20_000_000),
        leave_per_s: rng.gen_range(1_000_000..20_000_000),
    });
    let blip = Blip {
        at: SimTime::from_micros(rng.gen_range(150..400)),
        dur: SimTime::from_micros(rng.gen_range(100..250)),
        partition_holder: Some(rng.gen_range(0..fabric.holders)),
        crash_holder: None,
    };
    LoadScenario { fabric, open, replog, blip }
}

/// Run one load scenario at the given shard count and distill it to the
/// canonical fingerprint. Invariant 3 (completion or typed error) is
/// asserted inside `LoadRun::execute` per writer; the cross-check here
/// confirms the aggregate tallies agree with it.
fn run_load_scenario(seed: u64, sc: &LoadScenario, shards: usize) -> String {
    let mut fabric = sc.fabric;
    fabric.shards = shards;
    fabric.shard_audit = true;
    fabric.flight_recorder = true;
    let run = LoadRun::execute(&fabric, &sc.open, &sc.replog, Some(&sc.blip), seed, false);
    assert!(run.scheduled_batches > 0, "seed {seed}: scenario offered no load");
    assert_eq!(
        run.completions.len() + run.failed,
        run.scheduled_batches,
        "seed {seed}: a batch neither completed nor failed typed"
    );
    assert_eq!(run.issued_ns.len(), run.scheduled_batches, "seed {seed}: issue count drifted");
    assert_eq!(run.counters.get("load.batches"), run.scheduled_batches as u64);
    assert_eq!(run.counters.get("load.completions"), run.completions.len() as u64);
    assert_eq!(run.counters.get("load.failures"), run.failed as u64);
    run.fingerprint()
}

#[test]
fn load_soak_flash_crowd_rides_out_a_crash_window() {
    let mut fingerprints = Vec::new();
    let mut total_timeouts = 0u64;
    for seed in 0..8u64 {
        let sc = gen_flash_crowd_scenario(seed);
        let fp = run_load_scenario(seed, &sc, 1);
        for shards in [2usize, 8] {
            assert_eq!(
                fp,
                run_load_scenario(seed, &sc, shards),
                "seed {seed}: fingerprint diverged at {shards} shards"
            );
        }
        // The crash window forces watchdog work on at least some seeds.
        let run = {
            let mut fabric = sc.fabric;
            fabric.shards = 1;
            LoadRun::execute(&fabric, &sc.open, &sc.replog, Some(&sc.blip), seed, false)
        };
        total_timeouts += run.counters.get("access_timeouts");
        fingerprints.push(fp);
    }
    assert!(total_timeouts > 0, "no crash window ever bit — scenarios too tame");
    fingerprints.dedup();
    assert!(fingerprints.len() > 1, "seeds collapsed to one scenario");
}

#[test]
fn load_soak_churned_pool_survives_a_partition_window() {
    let mut fingerprints = Vec::new();
    let mut total_joins = 0u64;
    let mut total_timeouts = 0u64;
    for seed in 0..8u64 {
        let sc = gen_churn_partition_scenario(seed);
        let fp = run_load_scenario(seed, &sc, 1);
        for shards in [2usize, 8] {
            assert_eq!(
                fp,
                run_load_scenario(seed, &sc, shards),
                "seed {seed}: fingerprint diverged at {shards} shards"
            );
        }
        let run = {
            let mut fabric = sc.fabric;
            fabric.shards = 1;
            LoadRun::execute(&fabric, &sc.open, &sc.replog, Some(&sc.blip), seed, false)
        };
        total_joins += run.counters.get("load.churn_joins");
        total_timeouts += run.counters.get("access_timeouts");
        fingerprints.push(fp);
    }
    assert!(total_joins > 0, "churn never materialized — rates too low");
    assert!(total_timeouts > 0, "no partition window ever bit — scenarios too tame");
    fingerprints.dedup();
    assert!(fingerprints.len() > 1, "seeds collapsed to one scenario");
}

// ---------------------------------------------------------------------------
// Family 5: journal-gossip discovery under churn + partition (ISSUE 9)
// ---------------------------------------------------------------------------

/// One gossip-discovery scenario: E2E hosts with anti-entropy enabled, a
/// mid-plan migration burst (churn), and a partition window around the
/// gossip relay so the relay-first path must demote to direct.
struct GossipScenario {
    objects_per_holder: usize,
    accesses: usize,
    link_loss: u16,
    migrations: usize,
    part_at: u64,
    part_dur: u64,
    access_at: u64,
    access_gap: u64,
}

fn gen_gossip_scenario(seed: u64) -> GossipScenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x605);
    let objects_per_holder = rng.gen_range(2..4);
    GossipScenario {
        objects_per_holder,
        accesses: rng.gen_range(12..20),
        link_loss: rng.gen_range(0..30) as u16,
        migrations: rng.gen_range(1..=objects_per_holder),
        part_at: rng.gen_range(100..700),
        part_dur: rng.gen_range(150..450),
        access_at: rng.gen_range(300..500),
        access_gap: rng.gen_range(40..80),
    }
}

struct GossipOutcome {
    fingerprint: String,
    relay_fallbacks: u64,
    repair_hits: u64,
    nacks: u64,
}

fn run_gossip_scenario(seed: u64, sc: &GossipScenario, shards: usize) -> GossipOutcome {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x605B);
    let host_cfg = HostConfig {
        mode: DiscoveryMode::E2E,
        access_timeout: SimTime::from_micros(200),
        max_access_retries: 8,
        ..HostConfig::default()
    };
    const D0: ObjId = ObjId(0xD0);
    const B0: ObjId = ObjId(0xB0);
    const B1: ObjId = ObjId(0xB1);
    const B2: ObjId = ObjId(0xB2);

    let mut driver = HostNode::new("driver", D0, host_cfg);
    let mut h0 = HostNode::new("h0", B0, host_cfg);
    let mut h1 = HostNode::new("h1", B1, host_cfg);
    // h2 holds no objects: it exists as the driver's gossip relay towards
    // h0, and as the partition victim — cutting it off must demote the
    // relay-first path to direct without stalling anti-entropy.
    let mut h2 = HostNode::new("h2", B2, host_cfg);

    for (host, replica) in [(&mut driver, 1u64), (&mut h0, 2), (&mut h1, 3), (&mut h2, 4)] {
        host.enable_gossip(replica, rdv_gossip::GossipConfig::default());
    }
    driver.add_gossip_peer(B0, Some(B2));
    driver.add_gossip_peer(B1, None);
    h0.add_gossip_peer(D0, None);
    h0.add_gossip_peer(B1, None);
    h1.add_gossip_peer(B2, None);
    h1.add_gossip_peer(D0, None);
    h2.add_gossip_peer(B0, None);
    h2.add_gossip_peer(B1, None);

    // h0 and h1 each hold objects; routes point at the *initial* holders,
    // so post-migration broadcasts land on the stale port and only the
    // journal can repair the path (star switch default is drop, not flood).
    // Loss rides the driver's uplink only: access traffic must survive
    // drops via the retry budget, but the holder-to-holder migration push
    // is a single unacked image transfer — losing it would orphan the
    // object and (correctly) fail the all-accesses-complete invariant.
    let driver_link = host_link_rack().with_loss(sc.link_loss);
    let link = host_link_rack();
    let mut obj_routes = Vec::new();
    let mut owned0 = Vec::new();
    let mut owned1 = Vec::new();
    {
        let mut seed_objects =
            |host: &mut HostNode, port: usize, owned: &mut Vec<ObjId>, rng: &mut StdRng| {
                for _ in 0..sc.objects_per_holder {
                    let obj = host.store.create(rng, ObjectKind::Data);
                    let off = host.store.get_mut(obj).unwrap().alloc(128).unwrap();
                    host.store.get_mut(obj).unwrap().write_u64(off, obj.as_u128() as u64).unwrap();
                    obj_routes.push((obj, port));
                    owned.push(obj);
                }
            };
        seed_objects(&mut h0, 1, &mut owned0, &mut rng);
        seed_objects(&mut h1, 2, &mut owned1, &mut rng);
    }

    // Churn: a subset of h0's objects migrates to h1 mid-plan, after the
    // driver has already cached their old location.
    for &obj in owned0.iter().take(sc.migrations) {
        h0.migrations.push((obj, B1));
    }
    for _ in 0..sc.accesses {
        let pick = if rng.gen_bool(0.5) { &owned0 } else { &owned1 };
        driver.plan.push(pick[rng.gen_range(0..pick.len())]);
    }
    let plan_len = driver.plan.len();

    let nodes: Vec<(Box<dyn Node>, ObjId, LinkSpec)> = vec![
        (Box::new(driver), D0, driver_link),
        (Box::new(h0), B0, link),
        (Box::new(h1), B1, link),
        (Box::new(h2), B2, link),
    ];
    let (mut sim, ids) = build_star_fabric_sharded(seed, shards, nodes, &obj_routes);
    let switch = NodeId(ids.len());
    sim.enable_metrics(MetricsConfig::default());
    sim.enable_shard_audit();
    sim.enable_flight_recorder(1 << 12);

    sim.install_fault_plan(&FaultPlan::new().partition(
        SimTime::from_micros(sc.part_at),
        SimTime::from_micros(sc.part_at + sc.part_dur),
        &[switch],
        &[ids[3]],
    ));

    // Accesses straddle the migration burst: the first half trains the
    // destcache on the old holders, then the churn lands, then the stale
    // second half must repair via Nack + local journal.
    let migrate_at = sc.access_at + sc.access_gap * (sc.accesses as u64 / 2);
    for m in 0..sc.migrations as u64 {
        sim.schedule(
            SimTime::from_micros(migrate_at + 10 * m),
            ids[1],
            rdv_discovery::host::tags::MIGRATE | m,
        );
    }
    for i in 0..plan_len as u64 {
        sim.schedule(SimTime::from_micros(sc.access_at + sc.access_gap * i), ids[0], i);
    }
    // Anti-entropy re-arms its timer forever, so the sim never idles:
    // bound the run past the last access plus the full retry budget.
    let last = sc.access_at + sc.access_gap * plan_len as u64;
    sim.run_until(SimTime::from_micros(last + 3000));

    let gctr = rdv_gossip::sync::ctr();
    let mut relay_fallbacks = 0u64;
    let mut repair_hits = 0u64;
    let mut fingerprint = render_counters(&sim.counters);
    fingerprint.push('#');
    for (k, &id) in ids.iter().enumerate() {
        let h = sim.node_as::<HostNode>(id).unwrap();
        relay_fallbacks += h.counters.get_id(gctr.relay_fallbacks);
        repair_hits += h.counters.get_id(gctr.repair_hits);
        fingerprint.push_str(&render_counters(&h.counters));
        if let Some(g) = &h.gossip {
            fingerprint.push_str(&format!("J{k}:{:x};", g.journal.fingerprint()));
        }
    }

    let drv = sim.node_as::<HostNode>(ids[0]).unwrap();
    // Invariant 3: nothing wedges; and with no crash and the partition
    // only around the object-free relay, every access must complete.
    assert_eq!(drv.outstanding(), 0, "seed {seed}: accesses wedged in flight");
    assert_eq!(
        drv.records.len(),
        plan_len,
        "seed {seed}: churn + partition may not lose accesses ({:?})",
        drv.failed
    );
    let mut nacks = 0u64;
    for r in &drv.records {
        assert!(r.latency() > SimTime::ZERO, "seed {seed}");
        nacks += r.nacks;
        fingerprint.push_str(&format!(
            "r:{:x}:{}:{}:{}:{};",
            r.target.as_u128(),
            r.issued.as_nanos(),
            r.completed.as_nanos(),
            r.broadcasts,
            r.nacks
        ));
    }
    GossipOutcome { fingerprint, relay_fallbacks, repair_hits, nacks }
}

#[test]
fn gossip_soak_churn_and_partition_under_journal_discovery() {
    let mut fingerprints = Vec::new();
    let (mut fallbacks, mut repairs, mut nacks) = (0u64, 0u64, 0u64);
    for seed in 0..15u64 {
        let sc = gen_gossip_scenario(seed);
        let out = run_gossip_scenario(seed, &sc, 1);

        // Invariant 4: byte-identical at every engine shard count, with
        // the shard-ownership race detector armed (enable_shard_audit).
        for shards in [2usize, 8] {
            let again = run_gossip_scenario(seed, &sc, shards);
            assert_eq!(out.fingerprint, again.fingerprint, "seed {seed}: shards={shards} diverged");
        }
        fallbacks += out.relay_fallbacks;
        repairs += out.repair_hits;
        nacks += out.nacks;
        fingerprints.push(out.fingerprint);
    }
    assert!(fallbacks > 0, "no partition window ever demoted the relay path to direct");
    assert!(repairs > 0, "journal repair never fired — gossip facts went unused");
    assert!(nacks > 0, "no stale unicast ever hit the old holder — churn never bit");
    fingerprints.dedup();
    assert!(fingerprints.len() > 1, "seeds collapsed to one scenario");
}
