//! Seeded-violation tests for the shard-ownership race detector
//! (`Sim::enable_shard_audit`, the dynamic half of rdv-audit — see
//! DESIGN.md §11).
//!
//! Mirrors the invariant-monitor playbook in `rdv_metrics`: first prove
//! an armed detector changes nothing on a clean run (results stay
//! byte-identical to an unarmed run, for every shard count), then seed
//! each class of engine bug through the `debug_audit_*` hooks and prove
//! the detector catches it with a typed, located diagnostic.

use rdv_netsim::{
    LinkSpec, Node, NodeCtx, NodeId, Packet, PortId, ShardAuditKind, ShardAuditViolation, Sim,
    SimConfig, SimTime,
};

/// A ping-pong endpoint: the initiator serves, each receipt is echoed
/// back until the hop budget runs out. Traffic crosses the link every
/// `latency`, so a two-region layout exercises cross-shard windows
/// continuously.
struct EchoNode {
    initiator: bool,
    hops_left: u64,
    received: u64,
}

impl EchoNode {
    fn new(initiator: bool, hops: u64) -> EchoNode {
        EchoNode { initiator, hops_left: hops, received: 0 }
    }
}

impl Node for EchoNode {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.initiator {
            ctx.send(PortId(0), Packet::new(vec![0], 0));
        }
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _port: PortId, packet: Packet) {
        self.received += 1;
        if self.hops_left > 0 {
            self.hops_left -= 1;
            ctx.send(PortId(0), packet);
        }
    }

    fn name(&self) -> &str {
        "echo"
    }
}

/// Two echo nodes in different regions (different shards when
/// `shards > 1`) over a 10 µs link — the minimal fabric with real
/// cross-shard windows.
fn build_pair(shards: usize, hops: u64) -> (Sim, NodeId, NodeId) {
    let mut sim = Sim::new(SimConfig { seed: 7, shards, ..Default::default() });
    let a = sim.add_node_in_region(Box::new(EchoNode::new(true, hops)), 0);
    let b = sim.add_node_in_region(Box::new(EchoNode::new(false, hops)), 1);
    sim.connect(a, b, LinkSpec { latency: SimTime::from_micros(10), ..LinkSpec::rack() });
    (sim, a, b)
}

/// Canonical result string: counters plus per-node receipt counts.
fn fingerprint(sim: &Sim, a: NodeId, b: NodeId) -> String {
    let mut out = String::new();
    for (name, value) in sim.counters.iter() {
        out.push_str(&format!("{name}={value};"));
    }
    let ra = sim.node_as::<EchoNode>(a).unwrap().received;
    let rb = sim.node_as::<EchoNode>(b).unwrap().received;
    out.push_str(&format!("a={ra};b={rb}"));
    out
}

/// Run the pair to quiescence and return the violation the armed
/// detector aborted with. `seed_fault` runs after `warmup` of simulated
/// traffic, so the violating access happens mid-run, inside real
/// windows, with an event in flight.
fn run_seeded(
    shards: usize,
    warmup: SimTime,
    seed_fault: impl FnOnce(&mut Sim),
) -> ShardAuditViolation {
    let (mut sim, _, _) = build_pair(shards, 1_000);
    sim.enable_shard_audit();
    sim.run_until(warmup);
    seed_fault(&mut sim);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run_until_idle()))
        .expect_err("the seeded violation must abort the run");
    *err.downcast::<ShardAuditViolation>().expect("panic payload must be the typed violation")
}

#[test]
fn armed_detector_leaves_clean_runs_byte_identical() {
    let mut baseline = None;
    for shards in [1, 2, 8] {
        for armed in [false, true] {
            let (mut sim, a, b) = build_pair(shards, 200);
            if armed {
                sim.enable_shard_audit();
                assert!(sim.shard_audit_enabled());
            }
            sim.run_until_idle();
            let fp = fingerprint(&sim, a, b);
            match &baseline {
                None => baseline = Some(fp),
                Some(base) => assert_eq!(
                    *base, fp,
                    "shards={shards} armed={armed} diverged from the unarmed serial run"
                ),
            }
        }
    }
}

#[test]
fn outbox_bypass_is_caught_with_a_located_diagnostic() {
    let v = run_seeded(2, SimTime::from_micros(55), |sim| sim.debug_audit_bypass_outbox());
    assert_eq!(v.kind, ShardAuditKind::OutboxBypass);
    // The diagnostic points at the engine access site, stamped with the
    // sim time and the canonical key of the event being executed.
    assert!(v.file.ends_with("engine.rs"), "file was {}", v.file);
    assert!(v.line > 0);
    assert!(v.at_ns >= SimTime::from_micros(55).as_nanos());
    assert!(v.event.is_some(), "a queue event was in flight");
    assert_ne!(v.shard, v.owner, "the push crossed an ownership boundary");
    let msg = v.to_string();
    assert!(msg.contains("shard-audit[outbox-bypass]"), "rendered: {msg}");
    assert!(msg.contains("engine.rs:"), "rendered: {msg}");
}

#[test]
fn lookahead_violation_is_caught_inside_the_window() {
    let v = run_seeded(2, SimTime::from_micros(55), |sim| sim.debug_audit_violate_lookahead());
    assert_eq!(v.kind, ShardAuditKind::LookaheadViolation);
    assert!(v.file.ends_with("engine.rs"), "file was {}", v.file);
    // The lookahead bound only binds inside a parallel window, so the
    // violation must carry the window it was checked against — and the
    // offending due time must fall short of that window's end.
    assert_ne!(v.window_end_ns, u64::MAX, "violation must be tagged with its window");
    assert!(v.at_ns < v.window_end_ns);
    assert!(v.event.is_some(), "a queue event was in flight");
    assert!(v.to_string().contains("shard-audit[lookahead-violation]"));
}

#[test]
fn shared_rng_stream_is_caught_at_dispatch() {
    // Co-locate both nodes so the seeded alias can point one node's
    // dispatches at the other's stream (streams are per-shard arenas).
    let mut sim = Sim::new(SimConfig { seed: 7, shards: 2, ..Default::default() });
    let a = sim.add_node_in_region(Box::new(EchoNode::new(true, 100)), 0);
    let b = sim.add_node_in_region(Box::new(EchoNode::new(false, 100)), 0);
    sim.connect(a, b, LinkSpec { latency: SimTime::from_micros(10), ..LinkSpec::rack() });
    sim.enable_shard_audit();
    sim.debug_audit_share_rng(a, b);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run_until_idle()))
        .expect_err("the shared stream must abort the run");
    let v = *err.downcast::<ShardAuditViolation>().expect("typed violation");
    assert_eq!(v.kind, ShardAuditKind::RngStreamShared);
    assert!(v.file.ends_with("engine.rs"), "file was {}", v.file);
    let msg = v.to_string();
    assert!(msg.contains("shard-audit[rng-stream-shared]"), "rendered: {msg}");
    assert!(msg.contains(&format!("node {}", b.0)), "names the offender: {msg}");
}

#[test]
fn debug_hooks_require_an_armed_detector() {
    let (mut sim, _, _) = build_pair(2, 10);
    let err =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.debug_audit_bypass_outbox()))
            .expect_err("seeding a fault without arming must be refused");
    let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
    assert!(msg.contains("enable_shard_audit"), "got: {msg}");
}
