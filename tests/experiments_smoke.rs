//! Smoke test: the analytic/fast experiment harnesses keep producing
//! well-formed tables (the simulation-heavy ones are covered by their own
//! module tests in `rdv-bench`).

use rendezvous::objspace::ObjId;

#[test]
fn fast_experiment_tables_are_well_formed() {
    for series in [rdv_bench_t1(), rdv_bench_t2(), rdv_bench_a3(), rdv_bench_a4()] {
        assert!(!series.rows.is_empty(), "{}", series.id);
        for row in &series.rows {
            assert_eq!(row.len(), series.columns.len(), "{}", series.id);
        }
        let json = series.to_json();
        assert!(json.contains(&format!("\"id\":\"{}\"", series.id)));
    }
    let _ = ObjId(0); // anchor the umbrella crate import
}

fn rdv_bench_t1() -> rdv_bench::Series {
    rdv_bench::experiments::t1::run(true)
}
fn rdv_bench_t2() -> rdv_bench::Series {
    rdv_bench::experiments::t2::run(true)
}
fn rdv_bench_a3() -> rdv_bench::Series {
    rdv_bench::experiments::a3::run(true)
}
fn rdv_bench_a4() -> rdv_bench::Series {
    rdv_bench::experiments::a4::run(true)
}
