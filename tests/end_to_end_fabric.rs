//! End-to-end integration: the full stack from object creation through
//! discovery, ID-routed access, migration, and invalidation — exercising
//! objspace + p4rt + memproto + discovery + netsim together.

use rendezvous::discovery::scenario::run_discovery;
use rendezvous::discovery::{DiscoveryMode, ScenarioConfig, ScenarioKind, StalenessMode};

fn base(kind: ScenarioKind, mode: DiscoveryMode) -> ScenarioConfig {
    ScenarioConfig {
        kind,
        mode,
        staleness: StalenessMode::InvalidateOnMove,
        accesses: 120,
        num_objects: 48,
        ..Default::default()
    }
}

#[test]
fn controller_scheme_serves_every_access_in_one_rtt() {
    let out = run_discovery(&base(
        ScenarioKind::Fig2NewObjects { pct_new: 50 },
        DiscoveryMode::Controller,
    ));
    assert_eq!(out.incomplete, 0);
    assert_eq!(out.completed, 120);
    assert_eq!(out.broadcasts_per_100, 0.0, "controller mode never broadcasts");
    // Uniform latency: p99 within 30% of mean.
    let mut rtt = out.rtt;
    let (mean, p99) = (rtt.mean(), rtt.percentile(99.0) as f64);
    assert!(p99 < mean * 1.3, "controller latency must be uniform: mean {mean}, p99 {p99}");
}

#[test]
fn e2e_scheme_pays_discovery_once_then_hits_cache() {
    // 100% new objects: every access discovers (2 legs)…
    let cold =
        run_discovery(&base(ScenarioKind::Fig2NewObjects { pct_new: 90 }, DiscoveryMode::E2E));
    // …0% new: every access unicasts (1 leg).
    let warm =
        run_discovery(&base(ScenarioKind::Fig2NewObjects { pct_new: 0 }, DiscoveryMode::E2E));
    assert_eq!(cold.incomplete, 0);
    assert_eq!(warm.incomplete, 0);
    assert!(cold.rtt.mean() > warm.rtt.mean() * 1.5);
    assert!(warm.broadcasts_per_100 < 1.0);
    assert!((cold.broadcasts_per_100 - 90.0).abs() < 5.0);
}

#[test]
fn migration_invalidation_and_rediscovery_work_together() {
    let moved =
        run_discovery(&base(ScenarioKind::Fig3Staleness { pct_moved: 50 }, DiscoveryMode::E2E));
    assert_eq!(moved.incomplete, 0, "every access must complete despite migrations");
    // Half the accesses rediscover: broadcasts ≈ 50 per 100.
    assert!((moved.broadcasts_per_100 - 50.0).abs() < 10.0, "{}", moved.broadcasts_per_100);
    // No NACKs in invalidate-on-move mode: staleness is learned up front.
    assert_eq!(moved.nacks, 0);
}

#[test]
fn nack_path_recovers_without_invalidations() {
    let out = run_discovery(&ScenarioConfig {
        staleness: StalenessMode::NackRediscover,
        ..base(ScenarioKind::Fig3Staleness { pct_moved: 50 }, DiscoveryMode::E2E)
    });
    assert_eq!(out.incomplete, 0, "NACK → rediscover → access must converge");
    assert!(out.nacks > 20, "half the accesses should hit stale routes: {}", out.nacks);
}

#[test]
fn seeds_change_numbers_but_not_shape() {
    let a = run_discovery(&ScenarioConfig {
        seed: 1,
        ..base(ScenarioKind::Fig2NewObjects { pct_new: 50 }, DiscoveryMode::E2E)
    });
    let b = run_discovery(&ScenarioConfig {
        seed: 2,
        ..base(ScenarioKind::Fig2NewObjects { pct_new: 50 }, DiscoveryMode::E2E)
    });
    // Different seeds draw different access orders…
    assert_ne!(a.rtt.samples(), b.rtt.samples());
    // …but the aggregate shape is stable.
    assert!((a.broadcasts_per_100 - b.broadcasts_per_100).abs() < 10.0);
    assert!((a.rtt.mean() - b.rtt.mean()).abs() / a.rtt.mean() < 0.15);
}
