//! Integration tests for the crash flight recorder (DESIGN.md §13).
//!
//! Mirrors the seeded-violation playbook of `shard_audit.rs` at fabric
//! scale: first prove the armed recorder is free on healthy runs — a
//! full load-plane soak stays byte-identical at every shard count,
//! armed or not — then seed each failure class (an invariant-monitor
//! violation and a shard-ownership race) through the engine's debug
//! hooks and prove the panic carries a postmortem whose causal ancestry
//! actually walks the fabric's event history across shard rings.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdv_core::scenarios::{build_star_fabric_sharded, host_link_rack};
use rdv_discovery::{DiscoveryMode, HostConfig, HostNode};
use rdv_load::{Blip, LoadCurve, LoadFabricSpec, LoadRun, OpenLoopSpec, ReplogSpec, Spike};
use rdv_netsim::metrics::MetricsConfig;
use rdv_netsim::{LinkSpec, Node, NodeId, ShardAuditViolation, Sim, SimTime};
use rdv_objspace::{ObjId, ObjectKind};

// ---------------------------------------------------------------------------
// Shared: a small rendezvous fabric with real traffic
// ---------------------------------------------------------------------------

/// Driver + two holders (two objects each) behind the object-routed star
/// switch, with an eight-access plan scheduled — the smallest fabric
/// whose packet history has real cross-shard causal chains (request →
/// switch route → holder serve → reply).
fn build_fabric(seed: u64, shards: usize) -> (Sim, Vec<NodeId>, usize) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF11);
    let host_cfg = HostConfig {
        mode: DiscoveryMode::Controller,
        access_timeout: SimTime::from_micros(200),
        max_access_retries: 6,
        ..HostConfig::default()
    };
    let link = host_link_rack();
    let mut driver = HostNode::new("driver", ObjId(0xD0), host_cfg);
    let mut nodes: Vec<(Box<dyn Node>, ObjId, LinkSpec)> = Vec::new();
    let mut obj_routes = Vec::new();
    let mut objects: Vec<ObjId> = Vec::new();
    for h in 0..2usize {
        let inbox = ObjId(0xB0 + h as u128);
        let mut holder = HostNode::new(format!("h{h}"), inbox, host_cfg);
        for _ in 0..2 {
            let obj = holder.store.create(&mut rng, ObjectKind::Data);
            let off = holder.store.get_mut(obj).unwrap().alloc(128).unwrap();
            holder.store.get_mut(obj).unwrap().write_u64(off, obj.as_u128() as u64).unwrap();
            obj_routes.push((obj, 1 + h));
            objects.push(obj);
        }
        nodes.push((Box::new(holder), inbox, link));
    }
    for _ in 0..8 {
        driver.plan.push(objects[rng.gen_range(0..objects.len())]);
    }
    let plan_len = driver.plan.len();
    nodes.insert(0, (Box::new(driver), ObjId(0xD0), link));
    let (mut sim, ids) = build_star_fabric_sharded(seed, shards, nodes, &obj_routes);
    for i in 0..plan_len as u64 {
        sim.schedule(SimTime::from_micros(10 + 30 * i), ids[0], i);
    }
    (sim, ids, plan_len)
}

// ---------------------------------------------------------------------------
// Seeded invariant violation → postmortem with fabric ancestry
// ---------------------------------------------------------------------------

#[test]
fn invariant_violation_dump_walks_the_fabric_ancestry() {
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let (mut sim, _, _) = build_fabric(7, 2);
        sim.enable_metrics(MetricsConfig::default());
        sim.enable_flight_recorder(512);
        // Let real access traffic flow first, so the rings hold fabric
        // history, then unbalance the packet account mid-run: the
        // invariant monitor must abort at its next audit tick.
        sim.run_until(SimTime::from_micros(50));
        sim.debug_leak_inflight();
        sim.run_until_idle();
    }))
    .expect_err("the seeded leak must abort the run");
    let msg = payload.downcast_ref::<String>().expect("panic message is a String");
    assert!(
        msg.starts_with("invariant `packet_conservation` violated"),
        "typed prefix must survive the postmortem attachment: {msg}"
    );
    assert!(msg.contains("==== flight-recorder postmortem ===="), "{msg}");
    assert!(msg.contains("causal ancestry (most recent first):"), "{msg}");
    // The ancestry is fabric history: ring-qualified ids with causal
    // edges, not just the failing event alone.
    assert!(msg.contains("cause=s"), "ancestry must carry ring-qualified edges: {msg}");
    assert!(msg.contains("packet."), "ancestry must name packet lifecycle events: {msg}");
    assert!(msg.contains("gauge snapshot:"), "{msg}");
    assert!(msg.contains("engine.inflight_packets"), "snapshot carries the failing gauge: {msg}");
}

// ---------------------------------------------------------------------------
// Seeded shard-audit violation → typed violation carries the postmortem
// ---------------------------------------------------------------------------

#[test]
fn shard_audit_violation_carries_a_postmortem() {
    let (mut sim, _, _) = build_fabric(9, 2);
    sim.enable_shard_audit();
    sim.enable_flight_recorder(512);
    sim.run_until(SimTime::from_micros(55));
    sim.debug_audit_bypass_outbox();
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run_until_idle()))
        .expect_err("the seeded race must abort the run");
    let v = *err.downcast::<ShardAuditViolation>().expect("panic payload is the typed violation");
    let pm = v.postmortem.as_deref().expect("armed recorder must attach a postmortem");
    assert!(pm.starts_with("==== flight-recorder postmortem ===="), "{pm}");
    assert!(pm.contains("causal ancestry (most recent first):"), "{pm}");
    assert!(pm.contains("shard state:"), "{pm}");
    // The violation's own rendering embeds the dump after the located
    // diagnostic, so a bare panic log is a complete crash report.
    let rendered = v.to_string();
    assert!(rendered.contains("shard-audit[outbox-bypass]"), "{rendered}");
    assert!(rendered.contains("engine.rs:"), "{rendered}");
    assert!(rendered.contains("==== flight-recorder postmortem ===="), "{rendered}");
}

// ---------------------------------------------------------------------------
// Clean armed soak: zero observable bytes, at every shard count
// ---------------------------------------------------------------------------

/// A fixed flash-crowd load scenario with a crash-restart blip mid-run —
/// the chaos-soak shape, pinned so the sweep below compares one
/// scenario's bytes across shard counts and recorder arming.
fn soak_scenario() -> (LoadFabricSpec, OpenLoopSpec, ReplogSpec, Blip) {
    let mut fabric = LoadFabricSpec::small();
    fabric.holders = 3;
    fabric.link_loss_permille = 10;
    let replog = ReplogSpec {
        writers: 3,
        heads: 8,
        entry_bytes: 64,
        batch_window: SimTime::from_micros(20),
    };
    let mut open = OpenLoopSpec::flat(6_000, replog.heads, 250_000, SimTime::from_micros(800));
    open.curve = LoadCurve::flat().with_spike(Spike {
        at_permille: 300,
        dur_permille: 200,
        add_permille: 1_500,
    });
    let blip = Blip {
        at: SimTime::from_micros(250),
        dur: SimTime::from_micros(150),
        partition_holder: None,
        crash_holder: Some(1),
    };
    (fabric, open, replog, blip)
}

#[test]
fn armed_recorder_keeps_a_clean_load_soak_byte_identical() {
    let (base, open, replog, blip) = soak_scenario();
    let mut baseline = None;
    for shards in [1usize, 2, 8] {
        for armed in [false, true] {
            let mut fabric = base;
            fabric.shards = shards;
            fabric.flight_recorder = armed;
            let run = LoadRun::execute(&fabric, &open, &replog, Some(&blip), 11, false);
            assert!(run.scheduled_batches > 0, "scenario offered no load");
            let fp = run.fingerprint();
            match &baseline {
                None => baseline = Some(fp),
                Some(base) => assert_eq!(
                    *base, fp,
                    "shards={shards} armed={armed} diverged from the unarmed serial run"
                ),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// On-demand postmortems: deterministic, and observably free until rendered
// ---------------------------------------------------------------------------

#[test]
fn on_demand_postmortem_is_byte_deterministic() {
    fn dump(seed: u64) -> String {
        let (mut sim, _, _) = build_fabric(seed, 2);
        sim.enable_flight_recorder(512);
        sim.run_until_idle();
        // Nothing failed: the rings recorded passively and no dump was
        // rendered, so the flight counters stayed at zero.
        assert_eq!(sim.counters.get("flight.dumps"), 0);
        assert_eq!(sim.counters.get("flight.events"), 0);
        let pm = sim.flight_postmortem(None).expect("recorder is armed");
        assert_eq!(sim.counters.get("flight.dumps"), 1, "rendering is what counts a dump");
        assert!(sim.counters.get("flight.events") > 0);
        pm
    }
    let pm = dump(13);
    // The idle-time anchor is the driver's last watchdog chain: the
    // ancestry must walk real causal hops, and both shard rings must
    // have recorded fabric history even though nothing was dumped until
    // now.
    assert!(pm.contains("cause=s"), "ancestry must walk causal hops: {pm}");
    for ring in ["s0:", "s1:"] {
        let line = pm.lines().find(|l| l.trim_start().starts_with(ring)).expect("ring line");
        assert!(!line.contains("recorded=0"), "ring recorded nothing: {line}");
    }
    assert_eq!(pm, dump(13), "same seed, same shard count — byte-identical dump");
    assert_ne!(pm, dump(14), "distinct seeds explore distinct histories");
}
